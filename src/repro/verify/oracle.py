"""Differential oracle: ``eval(G, Q, f)`` vs ``eval_Ont(G, Q, f)``.

Lemma 4.1 / Prop. 5.1-5.2 promise that hierarchical evaluation is *exact*:
for any plugged algorithm ``f``, any layer ``m`` and any answer-generation
mode, the answers coming out of the BiG-index equal the answers a direct
search on the data graph returns.  The oracle checks that promise by
running both sides and diffing the results.

What "equal" means depends on the generation mode, because the modes
enumerate different supersets of the same logical answers:

* ``root-verify`` re-derives each candidate root's best answer exactly on
  the data graph, so for distinct-root semantics the answer *signatures
  and scores* must match the direct run one-for-one (tie-breaking is
  canonical across the code base — see ``nearest_labeled_forward``).
* ``vertex`` / ``path`` on *distinct-root* semantics enumerate concrete
  assignments of the summary answer's particular keyword supernodes — the
  nearest generalized matches, which legitimately constrain the
  enumeration (Sec. 4.3 keeps completeness through root verification, not
  through assignment enumeration).  The sound invariant is one-sided:
  every reported root must also qualify directly, and no reported score
  may beat the direct optimum for its root (exact verification can only
  rediscover or dominate the true best).
* root-free semantics (r-clique) enumerate every keyword-supernode
  combination, so the signature -> best-score maps must agree exactly in
  both directions (the Exp-2 boost-dkws equivalence).

With a top-k cutoff answer *sets* may legitimately differ under score
ties, so the oracle compares the sorted score lists instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.evaluator import HierarchicalEvaluator, eval_direct
from repro.core.index import BiGIndex
from repro.search.base import (
    Answer,
    KeywordQuery,
    KeywordSearchAlgorithm,
    top_k,
)
from repro.utils.errors import BigIndexError, QueryError

#: Builds the evaluator under test; tests inject buggy subclasses here to
#: prove the oracle catches them.
EvaluatorFactory = Callable[
    [BiGIndex, KeywordSearchAlgorithm, str], HierarchicalEvaluator
]


def default_evaluator_factory(
    index: BiGIndex, algorithm: KeywordSearchAlgorithm, generation: str
) -> HierarchicalEvaluator:
    return HierarchicalEvaluator(index, algorithm, generation=generation)


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between direct and hierarchical evaluation."""

    algorithm: str
    query: Tuple[str, ...]
    layer: int
    generation: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return (
            f"{self.algorithm} Q={list(self.query)} layer={self.layer} "
            f"mode={self.generation} [{self.kind}]: {self.detail}"
        )


@dataclass
class OracleReport:
    """Aggregated outcome of oracle runs."""

    checks: int = 0
    skipped: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def merge(self, other: "OracleReport") -> None:
        self.checks += other.checks
        self.skipped += other.skipped
        self.divergences.extend(other.divergences)

    def format(self) -> str:
        if self.ok:
            return (
                f"oracle: OK ({self.checks} comparisons, "
                f"{self.skipped} skipped)"
            )
        lines = [
            f"oracle: {len(self.divergences)} divergence(s) in "
            f"{self.checks} comparisons ({self.skipped} skipped)"
        ]
        lines.extend(f"  {d}" for d in self.divergences)
        return "\n".join(lines)


def _signature_scores(answers: Sequence[Answer]) -> Dict[Tuple, float]:
    """Map each answer signature to its best (lowest) score."""
    result: Dict[Tuple, float] = {}
    for a in answers:
        sig = a.signature()
        if sig not in result or a.score < result[sig]:
            result[sig] = a.score
    return result


def _root_projection(answers: Sequence[Answer]) -> Dict[Optional[int], float]:
    """Distinct-root projection: root -> minimum score over its answers."""
    result: Dict[Optional[int], float] = {}
    for a in answers:
        if a.root not in result or a.score < result[a.root]:
            result[a.root] = a.score
    return result


def _diff_maps(expected: Dict, actual: Dict, label: str) -> List[Tuple[str, str]]:
    """Compare best-score maps; returns (kind, detail) pairs."""
    problems: List[Tuple[str, str]] = []
    missing = sorted(set(expected) - set(actual), key=repr)
    extra = sorted(set(actual) - set(expected), key=repr)
    if missing:
        problems.append(
            (
                f"missing-{label}",
                f"direct finds {len(missing)} {label}(s) the hierarchy "
                f"misses, e.g. {missing[:3]}",
            )
        )
    if extra:
        problems.append(
            (
                f"extra-{label}",
                f"hierarchy reports {len(extra)} {label}(s) absent from "
                f"the direct run, e.g. {extra[:3]}",
            )
        )
    mismatched = [
        (key, expected[key], actual[key])
        for key in expected
        if key in actual and expected[key] != actual[key]
    ]
    if mismatched:
        examples = mismatched[:3]
        problems.append(
            (
                "score-mismatch",
                f"{len(mismatched)} {label}(s) score differently "
                f"(key, direct, hierarchical): {examples}",
            )
        )
    return problems


def _diff_soundness(
    expected: Dict[Optional[int], float], actual: Dict[Optional[int], float]
) -> List[Tuple[str, str]]:
    """One-sided check for assignment-mode enumeration on rooted semantics.

    The hierarchy may legitimately report fewer roots (the summary answer's
    supernodes constrain the enumeration; completeness comes from
    root-verify), but every root it does report must qualify directly, and
    no score may beat the direct optimum for its root.
    """
    problems: List[Tuple[str, str]] = []
    extra = sorted((r for r in actual if r not in expected), key=repr)
    if extra:
        problems.append(
            (
                "extra-root",
                f"hierarchy reports {len(extra)} root(s) the direct run "
                f"rejects, e.g. {extra[:3]}",
            )
        )
    too_good = [
        (root, expected[root], actual[root])
        for root in actual
        if root in expected and actual[root] < expected[root]
    ]
    if too_good:
        problems.append(
            (
                "score-too-good",
                f"{len(too_good)} root(s) score better than the direct "
                f"optimum (root, direct, hierarchical): {too_good[:3]}",
            )
        )
    return problems


class DifferentialOracle:
    """Cross-checks one index against direct evaluation, per algorithm.

    Parameters
    ----------
    index:
        The BiG-index under test.
    evaluator_factory:
        Builds the :class:`HierarchicalEvaluator` per (algorithm, mode);
        override to test instrumented/buggy evaluators.
    """

    def __init__(
        self,
        index: BiGIndex,
        evaluator_factory: EvaluatorFactory = default_evaluator_factory,
    ) -> None:
        self.index = index
        self.evaluator_factory = evaluator_factory
        self._direct_cache: Dict[Tuple[str, Tuple[str, ...]], List[Answer]] = {}
        # Evaluators are reused across queries (searchers and their
        # per-layer algorithm indexes are expensive to rebuild, and the
        # evaluator's own epoch sync keeps reuse safe across maintenance).
        self._evaluators: Dict[Tuple[int, str], HierarchicalEvaluator] = {}

    # ------------------------------------------------------------------
    def _evaluator_for(
        self, algorithm: KeywordSearchAlgorithm, generation: str
    ) -> HierarchicalEvaluator:
        """One evaluator per (algorithm, generation), built lazily."""
        key = (id(algorithm), generation)
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = self.evaluator_factory(
                self.index, algorithm, generation
            )
            self._evaluators[key] = evaluator
        return evaluator

    # ------------------------------------------------------------------
    def direct_answers(
        self, algorithm: KeywordSearchAlgorithm, query: KeywordQuery
    ) -> List[Answer]:
        """All answers of the direct run (cached per algorithm + query)."""
        key = (algorithm.name, query.keywords)
        cached = self._direct_cache.get(key)
        if cached is None:
            cached, _ = eval_direct(self.index.base_graph, algorithm, query)
            cached = top_k(cached, None)
            self._direct_cache[key] = cached
        return cached

    def check(
        self,
        algorithm: KeywordSearchAlgorithm,
        query: KeywordQuery,
        generations: Sequence[str] = ("root-verify", "vertex", "path"),
        layers: Optional[Sequence[int]] = None,
        k: Optional[int] = None,
    ) -> OracleReport:
        """Diff direct vs hierarchical evaluation for one query.

        Every applicable (layer, generation) pair is compared; layers where
        the generalized keywords collide (Def. 4.1 would reject them) are
        counted as skipped, not as divergences.
        """
        report = OracleReport()
        direct_all = self.direct_answers(algorithm, query)
        direct = top_k(direct_all, k)
        rooted = hasattr(algorithm, "best_answer_for_root")
        # An algorithm-internal cutoff truncates both runs just like an
        # explicit k: answer sets may differ on ties, so compare scores.
        effective_k = k if k is not None else getattr(algorithm, "k", None)
        if layers is None:
            layers = range(1, self.index.num_layers + 1)
        for layer in layers:
            if not self.index.query_distinct_at(query, layer):
                report.skipped += 1
                continue
            for generation in generations:
                if generation == "root-verify" and not rooted:
                    continue
                report.checks += 1
                try:
                    evaluator = self._evaluator_for(algorithm, generation)
                    result = evaluator.evaluate(query, layer=layer, k=k)
                except (QueryError, BigIndexError) as exc:
                    report.divergences.append(
                        Divergence(
                            algorithm=algorithm.name,
                            query=query.keywords,
                            layer=layer,
                            generation=generation,
                            kind="error",
                            detail=f"hierarchical evaluation raised: {exc}",
                        )
                    )
                    continue
                for kind, detail in self._compare(
                    direct, result.answers, rooted, generation, effective_k
                ):
                    report.divergences.append(
                        Divergence(
                            algorithm=algorithm.name,
                            query=query.keywords,
                            layer=layer,
                            generation=generation,
                            kind=kind,
                            detail=detail,
                        )
                    )
        return report

    def run(
        self,
        algorithms: Sequence[KeywordSearchAlgorithm],
        queries: Sequence[KeywordQuery],
        generations_for: Optional[
            Callable[[KeywordSearchAlgorithm], Sequence[str]]
        ] = None,
        k: Optional[int] = None,
    ) -> OracleReport:
        """Cross-check every algorithm against every query."""
        report = OracleReport()
        for algorithm in algorithms:
            if generations_for is not None:
                generations = generations_for(algorithm)
            elif hasattr(algorithm, "best_answer_for_root"):
                generations = ("root-verify", "vertex", "path")
            else:
                generations = ("vertex",)
            for query in queries:
                report.merge(
                    self.check(algorithm, query, generations=generations, k=k)
                )
        return report

    # ------------------------------------------------------------------
    def _compare(
        self,
        direct: Sequence[Answer],
        hierarchical: Sequence[Answer],
        rooted: bool,
        generation: str,
        k: Optional[int],
    ) -> List[Tuple[str, str]]:
        if k is not None:
            # Under a top-k cutoff the answer sets may differ on ties; the
            # ranked score lists must still agree (Prop. 5.3).
            expected = [a.score for a in direct]
            actual = sorted(a.score for a in hierarchical)[: len(expected)]
            if rooted and generation != "root-verify":
                # Assignment modes may return fewer answers (see the module
                # docstring); each rank they do fill must not beat the true
                # rank-i optimum, which any valid answer subset dominates.
                too_good = [
                    (rank, expected[rank], actual[rank])
                    for rank in range(min(len(expected), len(actual)))
                    if actual[rank] < expected[rank]
                ]
                if too_good:
                    return [
                        (
                            "topk-too-good",
                            f"hierarchical rank beats the direct optimum "
                            f"(rank, direct, hierarchical): {too_good[:3]}",
                        )
                    ]
                return []
            if expected != actual:
                return [
                    (
                        "topk-scores",
                        f"direct top-{k} scores {expected} vs hierarchical "
                        f"{actual}",
                    )
                ]
            return []
        if rooted and generation == "root-verify":
            return _diff_maps(
                _signature_scores(direct),
                _signature_scores(hierarchical),
                "answer",
            )
        if rooted:
            return _diff_soundness(
                _root_projection(direct),
                _root_projection(hierarchical),
            )
        return _diff_maps(
            _signature_scores(direct),
            _signature_scores(hierarchical),
            "answer",
        )
