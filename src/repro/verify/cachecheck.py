"""Cache-identity drill: cached and uncached evaluation never diverge.

PR 5's query-path caches (the evaluator's LRU result cache, the index's
``Gen``/``Spec`` memos, per-graph keyword postings) are only admissible
if they are *invisible*: a cached evaluation must return byte-identical
rankings — every answer's score, signature, vertices and edges — to a
fresh evaluator with caching disabled, before and after incremental
maintenance.  This drill enforces that contract directly:

1. **Served-from-cache identity** — each probe query runs twice on a
   long-lived caching evaluator; the second run is required to be an
   actual result-cache hit (checked via the ``cache.hit.result``
   counter, so a silently dead cache fails the drill too) and both
   outcomes must equal the uncached evaluator's.
2. **Invalidation under maintenance** — an edge is deleted through
   :meth:`~repro.core.index.BiGIndex.delete_edge` and later re-inserted;
   after each mutation the same comparisons rerun against a fresh
   uncached evaluator on the *current* index state, so a stale epoch
   (cache serving pre-mutation answers) is caught immediately.

The maintenance fuzzer runs the same cached==uncached assertion
interleaved with *random* op sequences; this drill is the deterministic,
always-on leg wired into every ``repro-bigindex verify`` case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.core.evaluator import HierarchicalEvaluator
from repro.core.index import BiGIndex
from repro.obs.runtime import instrumented
from repro.search.base import KeywordQuery, KeywordSearchAlgorithm
from repro.verify.fuzzer import _eval_outcome

#: Builds a fresh, deterministic index the drill may mutate freely.
IndexFactory = Callable[[], BiGIndex]


@dataclass
class CacheReport:
    """Outcome of one :func:`run_cache_drill`."""

    checks: int = 0
    #: Result-cache hits that were served and verified identical.
    hits: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def format(self) -> str:
        if self.ok:
            return (
                f"cache: OK ({self.checks} cached==uncached comparisons, "
                f"{self.hits} cache hit(s) served identically)"
            )
        lines = [
            f"cache: {len(self.problems)} problem(s) in "
            f"{self.checks} comparisons"
        ]
        lines.extend(f"  {p}" for p in self.problems)
        return "\n".join(lines)


def _compare_queries(
    report: CacheReport,
    cached: HierarchicalEvaluator,
    uncached: HierarchicalEvaluator,
    queries: Sequence[KeywordQuery],
    algorithm_name: str,
    context: str,
) -> None:
    """Run every query cold + warm on ``cached`` and diff vs ``uncached``."""
    for query in queries:
        expected = _eval_outcome(uncached, query)
        with instrumented(trace=False) as inst:
            outcomes = (
                ("cold", _eval_outcome(cached, query)),
                ("warm", _eval_outcome(cached, query)),
            )
        report.checks += len(outcomes)
        for label, actual in outcomes:
            if actual != expected:
                report.problems.append(
                    f"{algorithm_name} Q={list(query.keywords)} "
                    f"({context}, {label}): cached outcome {actual!r} "
                    f"!= uncached {expected!r}"
                )
        hits = inst.metrics.counters().get("cache.hit.result", 0)
        if expected[0] == "ok":
            if hits < 1:
                report.problems.append(
                    f"{algorithm_name} Q={list(query.keywords)} "
                    f"({context}): result cache never hit — the warm run "
                    "recomputed instead of serving the cached ranking"
                )
            else:
                report.hits += hits


def run_cache_drill(
    index_factory: IndexFactory,
    algorithms: Sequence[KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
) -> CacheReport:
    """Prove cached and uncached evaluation are byte-identical.

    Builds a fresh index (the drill mutates it, so it must not share one
    with other harness legs), then for each algorithm compares a caching
    evaluator against an uncached one on every query — on the fresh
    index, after an incremental edge deletion, and after re-inserting
    the edge (exercising two epoch bumps end to end).
    """
    report = CacheReport()
    index = index_factory()
    for algorithm in algorithms:
        cached = HierarchicalEvaluator(index, algorithm, cache_size=64)
        uncached = HierarchicalEvaluator(index, algorithm, cache_size=0)
        _compare_queries(
            report, cached, uncached, queries, algorithm.name, "fresh"
        )
        edges = sorted(index.base_graph.edges())
        if not edges:
            continue
        u, v = edges[0]
        index.delete_edge(u, v)
        _compare_queries(
            report, cached, uncached, queries, algorithm.name,
            f"after delete_edge({u}, {v})",
        )
        index.insert_edge(u, v)
        _compare_queries(
            report, cached, uncached, queries, algorithm.name,
            f"after insert_edge({u}, {v})",
        )
    return report
