"""Process-level crash-recovery chaos drill for ``repro-bigindex serve``.

The in-process legs (:mod:`repro.verify.servecheck`) prove the runtime's
concurrency story; this drill proves the *durability* story the only way
it can be proved — by actually killing the process.  One round:

1. a real ``repro-bigindex serve --admin`` subprocess serves a persisted
   index,
2. the drill streams admin mutations over HTTP, tracking exactly which
   ops were **acked** (HTTP 200 received),
3. at a seeded random point mid-stream the drill captures the server's
   ``/admin/flight`` ring (the pre-kill request timeline, checked
   against the ack ledger and later diffed against the recovered WAL
   prefix so a durability failure names lost request IDs, not just a
   digest), then sends one more op and ``SIGKILL``\\ s the server a few
   milliseconds later — before, during, or after that op's WAL commit,
4. optionally (seeded) the drill then appends garbage to the WAL,
   simulating a write torn mid-``fsync``,
5. the server restarts; its ``/admin/digest`` must equal an in-process
   oracle that applied **exactly the acked prefix** — or, when the kill
   raced the final ack, the acked prefix plus that one in-flight op
   (durable-but-unacked is allowed; acked-but-lost never is).

The last round ends with ``SIGTERM`` instead: the server must drain,
fsync, and exit 0 (the graceful path), and a final restart must still
agree with the oracle.  Every decision derives from one seed, so a
failure reproduces exactly.  ``repro-bigindex verify --serve`` runs this
after the in-process battery; CI's ``chaos-smoke`` job runs it through
``scripts/chaos_drill.py``.
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import repro
from repro.core.cost import CostParams
from repro.core.index import BiGIndex
from repro.core.persistence import load_index, save_index
from repro.core.wal import WAL_NAME, apply_wal_op
from repro.datasets.knowledge import dataset_registry
from repro.serve.client import ServeClient

#: Dataset the drill serves; small enough to build in well under a
#: second with exact costs, real enough to have ontology layers.
_DATASET = "yago-like"
_SCALE = 0.05
_NUM_LAYERS = 2


@dataclass
class ChaosEvent:
    """One kill/restart cycle's outcome (one line of the JSON report)."""

    round: int
    kill: str  # "sigkill" | "sigkill+torn-tail" | "sigterm"
    acked_before_kill: int
    inflight_resolution: str  # "acked" | "lost" | "durable-unacked" | "none"
    wal_records_after: int
    digest_matched: bool
    #: Flight-recorder dump captured from the process just before the
    #: kill: total ring records, how many were acked state-changing
    #: mutations, whether that count matched the oracle's ack ledger,
    #: and the request timeline itself (-1/empty on sigterm rounds,
    #: where the process exits gracefully instead of being killed).
    flight_records: int = -1
    flight_acked_mutations: int = -1
    flight_matched: bool = True
    flight_timeline: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos_drill` campaign."""

    seed: int = 0
    rounds: int = 0
    ops_sent: int = 0
    ops_acked: int = 0
    kills: int = 0
    torn_tails: int = 0
    restarts: int = 0
    checks: int = 0
    events: List[ChaosEvent] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} failure(s)"
        lines = [
            f"chaos: {status} ({self.rounds} round(s), {self.kills} "
            f"SIGKILL(s), {self.torn_tails} torn tail(s), "
            f"{self.ops_acked}/{self.ops_sent} op(s) acked, "
            f"{self.restarts} recovery restart(s), {self.checks} check(s), "
            f"seed={self.seed})"
        ]
        lines.extend("  " + failure for failure in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "rounds": self.rounds,
            "ops_sent": self.ops_sent,
            "ops_acked": self.ops_acked,
            "kills": self.kills,
            "torn_tails": self.torn_tails,
            "restarts": self.restarts,
            "checks": self.checks,
            "events": [event.to_dict() for event in self.events],
            "failures": list(self.failures),
        }


class _ServerProcess:
    """One ``repro-bigindex serve`` subprocess with a captured log."""

    def __init__(self, index_dir: str, log_path: str) -> None:
        self.index_dir = index_dir
        self.log_path = log_path
        self.proc: Optional[subprocess.Popen] = None
        self.url: Optional[str] = None
        self._log_offset = 0

    def start(self, deadline: float = 60.0) -> str:
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else os.pathsep.join([src_root, existing])
        )
        cmd = [
            sys.executable, "-u", "-m", "repro.cli", "serve",
            self.index_dir,
            "--admin",
            "--ontology-from", _DATASET,
            "--scale", str(_SCALE),
            "--port", "0",
            "--drain-deadline", "5",
        ]
        log = open(self.log_path, "ab")
        try:
            self._log_offset = log.tell()
            self.proc = subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()
        self.url = self._await_url(deadline)
        return self.url

    def _await_url(self, deadline: float) -> str:
        """Parse ``on http://...`` from the startup line as it appears."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            if self.proc is not None and self.proc.poll() is not None:
                raise RuntimeError(
                    f"server exited during startup (rc "
                    f"{self.proc.returncode}): {self.log_tail()}"
                )
            for line in self.new_log_lines(consume=False):
                if " on http://" in line:
                    return line.split(" on ", 1)[1].split()[0]
            time.sleep(0.02)
        raise RuntimeError(f"server startup timed out: {self.log_tail()}")

    def new_log_lines(self, consume: bool = True) -> List[str]:
        """Log lines written since the last consumed read."""
        try:
            with open(self.log_path, "rb") as f:
                f.seek(self._log_offset)
                data = f.read()
        except FileNotFoundError:
            return []
        if consume:
            self._log_offset += len(data)
        return data.decode("utf-8", errors="replace").splitlines()

    def log_tail(self, lines: int = 5) -> str:
        try:
            with open(self.log_path, "rb") as f:
                data = f.read()
        except FileNotFoundError:
            return "<no log>"
        return " | ".join(
            data.decode("utf-8", errors="replace").splitlines()[-lines:]
        )

    def sigkill(self) -> None:
        assert self.proc is not None
        self.proc.kill()
        self.proc.wait()

    def sigterm(self, timeout: float = 30.0) -> int:
        assert self.proc is not None
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


def _tear_wal_tail(index_dir: str, rng: random.Random) -> None:
    """Append a partial record, as a crash mid-append would leave it."""
    garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 7)))
    with open(os.path.join(index_dir, WAL_NAME), "ab") as f:
        f.write(garbage)


def _format_timeline(timeline: List[Dict[str, object]]) -> str:
    """Render a flight dump as one compact attribution line."""
    if not timeline:
        return "<empty flight ring>"
    parts = []
    for rec in timeline:
        desc = (
            f"#{rec.get('seq', '?')} {rec.get('request_id', '?')} "
            f"{rec.get('method', '?')} {rec.get('path', '?')} "
            f"-> {rec.get('status', '?')}"
        )
        if rec.get("path") == "/admin/mutate":
            desc += (
                f" {rec.get('op', '?')}({rec.get('u', '?')},"
                f"{rec.get('v', '?')})"
                + (" applied" if rec.get("applied") else " no-op")
            )
        parts.append(desc)
    return " | ".join(parts)


def _next_op(rng: random.Random, oracle: BiGIndex) -> Dict[str, int]:
    """A mutation biased to actually apply (so the WAL sees traffic)."""
    edges = sorted(oracle.base_graph.edges())
    n = oracle.base_graph.num_vertices
    if edges and rng.random() < 0.5:
        u, v = edges[rng.randrange(len(edges))]
        return {"op": "delete", "u": u, "v": v}
    return {
        "op": "insert",
        "u": rng.randrange(n),
        "v": rng.randrange(n),
    }


def run_chaos_drill(
    rounds: int = 3,
    ops_per_round: int = 6,
    seed: int = 0,
    workdir: Optional[str] = None,
    index_format: int = 4,
) -> ChaosReport:
    """Kill ``repro-bigindex serve`` mid-mutation-stream; recovery must
    restore exactly the acked prefix (see the module docstring).

    ``index_format`` picks the on-disk layout the server recovers from
    (4 = the default mmap container — WAL replay then mutates an
    mmap-backed graph, exercising copy-on-write detach under crash
    recovery; 3 = the legacy text files)."""
    report = ChaosReport(seed=seed, rounds=rounds)
    rng = random.Random(f"chaos:{seed}")
    own_workdir = workdir is None
    if own_workdir:
        workdir = tempfile.mkdtemp(prefix="bigindex-chaos-")
    index_dir = os.path.join(workdir, "idx")
    log_path = os.path.join(workdir, "serve.log")
    server = _ServerProcess(index_dir, log_path)
    try:
        dataset = dataset_registry(scale=_SCALE)[_DATASET]()
        built = BiGIndex.build(
            dataset.graph.copy(share_label_table=True),
            dataset.ontology,
            num_layers=_NUM_LAYERS,
            cost_params=CostParams(exact=True),
        )
        save_index(built, index_dir, format=index_format)
        # The oracle loads from the same persisted files the server
        # does, so base-state digests agree byte-for-byte.
        oracle = load_index(index_dir, dataset.ontology)
        applied_acked = 0  # applied ops known durable (acked or matched)

        server.start()
        for round_index in range(rounds):
            final_round = round_index == rounds - 1
            # max_retries=0: every mutate is exactly one HTTP exchange,
            # so "acked" is unambiguous when the kill races the stream.
            client = ServeClient.for_url(
                server.url, timeout=10.0, max_retries=0
            )
            kill_at = rng.randrange(1, ops_per_round)
            # The process serving this round started at the previous
            # restart, so its flight ring holds exactly this round's
            # mutations — track them for the pre-kill capture diff.
            applied_at_round_start = applied_acked
            acked_this_round = 0
            applied_this_round = 0

            # Stream the pre-kill prefix synchronously: every one of
            # these is acked before the kill, so recovery MUST keep it.
            for _ in range(kill_at):
                op = _next_op(rng, oracle)
                report.ops_sent += 1
                response = client.mutate(op["op"], op["u"], op["v"])
                if response.status != 200:
                    report.failures.append(
                        f"round {round_index}: mutate returned HTTP "
                        f"{response.status}: {response.payload}"
                    )
                    continue
                report.ops_acked += 1
                acked_this_round += 1
                if apply_wal_op(oracle, op):
                    applied_acked += 1
                    applied_this_round += 1

            inflight_resolution = "none"
            flight_records_seen = -1
            flight_acked_mutations = -1
            flight_matched = True
            flight_timeline: List[Dict[str, object]] = []
            if final_round:
                # Graceful path: SIGTERM must drain, fsync, and exit 0.
                kill_kind = "sigterm"
                client.close()
                report.checks += 1
                returncode = server.sigterm()
                if returncode != 0:
                    report.failures.append(
                        f"round {round_index}: SIGTERM exit code "
                        f"{returncode} (want 0): {server.log_tail()}"
                    )
                report.checks += 1
                if not any(
                    "shut down cleanly" in line
                    for line in server.new_log_lines()
                ):
                    report.failures.append(
                        f"round {round_index}: no clean-shutdown notice "
                        f"after SIGTERM: {server.log_tail()}"
                    )
            else:
                # Crash path: race one more op against SIGKILL.  The op
                # may die pre-commit (lost, allowed), post-commit but
                # pre-ack (durable-unacked, allowed), or get fully
                # acked — in which case it is durable or the drill
                # fails.
                kill_kind = "sigkill"
                # Pre-kill flight capture: the last-requests ring is
                # the only per-request record of what the process was
                # doing when it died, so a recovery mismatch below can
                # name the request IDs it lost instead of just a
                # digest.  The dump must show every acked mutation of
                # this round (the ring capacity far exceeds a round).
                report.checks += 1
                flight_response = client.flight()
                if flight_response.status != 200:
                    flight_matched = False
                    report.failures.append(
                        f"round {round_index}: /admin/flight HTTP "
                        f"{flight_response.status} before kill"
                    )
                else:
                    flight_timeline = [
                        dict(rec)
                        for rec in flight_response.payload.get(
                            "records", []
                        )
                        if isinstance(rec, dict)
                    ]
                    flight_records_seen = len(flight_timeline)
                    acked_mutation_recs = [
                        rec for rec in flight_timeline
                        if rec.get("path") == "/admin/mutate"
                        and rec.get("status") == 200
                    ]
                    flight_acked_mutations = len(acked_mutation_recs)
                    applied_in_flight = sum(
                        1 for rec in acked_mutation_recs
                        if rec.get("applied")
                    )
                    flight_matched = (
                        flight_acked_mutations == acked_this_round
                        and applied_in_flight == applied_this_round
                        and all(
                            rec.get("request_id")
                            for rec in acked_mutation_recs
                        )
                    )
                    report.checks += 1
                    if not flight_matched:
                        report.failures.append(
                            f"round {round_index}: flight recorder saw "
                            f"{flight_acked_mutations} acked mutation(s) "
                            f"({applied_in_flight} applied), expected "
                            f"{acked_this_round} ({applied_this_round} "
                            f"applied): "
                            f"{_format_timeline(flight_timeline)}"
                        )
                inflight_op = _next_op(rng, oracle)
                report.ops_sent += 1
                inflight_response: List[Optional[int]] = [None]

                def send_inflight(op=inflight_op, out=inflight_response):
                    try:
                        out[0] = client.mutate(
                            op["op"], op["u"], op["v"]
                        ).status
                    except Exception:  # noqa: BLE001 - kill races the ack
                        out[0] = None

                sender = threading.Thread(target=send_inflight)
                sender.start()
                time.sleep(rng.random() * 0.01)
                server.sigkill()
                report.kills += 1
                sender.join(timeout=10.0)
                client.close()
                inflight_acked = inflight_response[0] == 200

                if rng.random() < 0.5:
                    kill_kind = "sigkill+torn-tail"
                    _tear_wal_tail(index_dir, rng)
                    report.torn_tails += 1

            # Restart and compare against the oracle alternatives.
            server.start()
            report.restarts += 1
            with ServeClient.for_url(server.url, timeout=10.0) as probe:
                digest_response = probe.request("GET", "/admin/digest")
            report.checks += 1
            if digest_response.status != 200:
                report.failures.append(
                    f"round {round_index}: /admin/digest HTTP "
                    f"{digest_response.status} after restart"
                )
                report.events.append(ChaosEvent(
                    round=round_index, kill=kill_kind,
                    acked_before_kill=report.ops_acked,
                    inflight_resolution="unknown",
                    wal_records_after=-1, digest_matched=False,
                    flight_records=flight_records_seen,
                    flight_acked_mutations=flight_acked_mutations,
                    flight_matched=flight_matched,
                    flight_timeline=flight_timeline,
                ))
                continue
            served_digest = digest_response.payload.get("digest")
            wal_records = int(
                digest_response.payload.get("wal_records", -1)
            )

            matched = False
            mismatch = None
            if served_digest == oracle.state_digest():
                matched = True
                if kill_kind.startswith("sigkill"):
                    if inflight_acked:
                        # The in-flight op cannot both be applied (its
                        # digest would differ) and acked yet absent —
                        # unless it was a no-op, which acks without
                        # changing state.  Distinguish the two.
                        probe_clone = oracle.cow_clone()
                        if apply_wal_op(probe_clone, inflight_op):
                            # Acked, state-changing, gone: the one
                            # outcome durability forbids.
                            matched = False
                            mismatch = (
                                f"acked op {inflight_op} missing after "
                                f"recovery"
                            )
                        else:
                            # A no-op acks without touching the WAL.
                            inflight_resolution = "acked"
                            report.ops_acked += 1
                    else:
                        inflight_resolution = "lost"
            elif kill_kind.startswith("sigkill"):
                alt = oracle.cow_clone()
                inflight_applied = apply_wal_op(alt, inflight_op)
                if served_digest == alt.state_digest():
                    # Durable before the ack could leave: adopt it so
                    # the oracle tracks the server from here on.
                    matched = True
                    inflight_resolution = (
                        "acked" if inflight_acked else "durable-unacked"
                    )
                    oracle = alt
                    if inflight_applied:
                        applied_acked += 1
                    if inflight_acked:
                        report.ops_acked += 1
                else:
                    mismatch = (
                        f"recovered digest {served_digest!r} matches "
                        f"neither the acked prefix ({applied_acked} "
                        f"applied op(s)) nor acked+1"
                    )
            else:
                mismatch = (
                    f"digest diverged across a graceful restart "
                    f"({served_digest!r})"
                )
            if not matched:
                detail = (
                    f"round {round_index}: {mismatch}: "
                    f"{server.log_tail()}"
                )
                if flight_timeline:
                    detail += (
                        f" | pre-kill flight: "
                        f"{_format_timeline(flight_timeline)}"
                    )
                report.failures.append(detail)

            # The WAL must hold exactly the applied, durable ops.
            report.checks += 1
            if matched and wal_records != applied_acked:
                report.failures.append(
                    f"round {round_index}: WAL holds {wal_records} "
                    f"record(s), expected {applied_acked}"
                )
            # Diff the pre-kill flight timeline against the recovered
            # WAL prefix: every applied mutation the dying process had
            # acked must be durable, and a shortfall names the exact
            # request IDs that were lost.
            if kill_kind.startswith("sigkill") and flight_timeline:
                applied_recs = [
                    rec for rec in flight_timeline
                    if rec.get("path") == "/admin/mutate"
                    and rec.get("status") == 200
                    and rec.get("applied")
                ]
                expected_durable = (
                    applied_at_round_start + len(applied_recs)
                )
                report.checks += 1
                if matched and 0 <= wal_records < expected_durable:
                    lost_from = max(
                        0, wal_records - applied_at_round_start
                    )
                    lost_ids = ", ".join(
                        str(rec.get("request_id", "?"))
                        for rec in applied_recs[lost_from:]
                    )
                    report.failures.append(
                        f"round {round_index}: recovered WAL holds "
                        f"{wal_records} record(s) but the pre-kill "
                        f"flight timeline acked {expected_durable}; "
                        f"lost request(s): {lost_ids}: "
                        f"{_format_timeline(flight_timeline)}"
                    )
            if kill_kind == "sigkill+torn-tail":
                report.checks += 1
                if not any(
                    "truncated a damaged WAL tail" in line
                    for line in server.new_log_lines()
                ):
                    report.failures.append(
                        f"round {round_index}: torn tail was not "
                        f"reported on restart: {server.log_tail()}"
                    )
            report.events.append(ChaosEvent(
                round=round_index, kill=kill_kind,
                acked_before_kill=report.ops_acked,
                inflight_resolution=inflight_resolution,
                wal_records_after=wal_records,
                digest_matched=matched,
                flight_records=flight_records_seen,
                flight_acked_mutations=flight_acked_mutations,
                flight_matched=flight_matched,
                flight_timeline=flight_timeline,
            ))
        server.sigterm()
    except Exception as exc:  # noqa: BLE001 - the report is the contract
        report.failures.append(
            f"chaos drill aborted: {type(exc).__name__}: {exc}"
        )
    finally:
        server.stop()
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    return report
