"""Deterministic fault injection for the resilience contracts.

Where the oracle/auditor/fuzzer legs check the paper's *correctness*
claims, this leg checks the repository's *robustness* claims
(docs/ROBUSTNESS.md), by deliberately breaking things and asserting the
failure is the promised one:

* **Storage faults** — every file of a saved index is truncated and
  bit-flipped (seeded, reproducible); loading must raise
  :class:`~repro.utils.errors.IndexPersistenceError` — a corrupted index
  must never load as a silently wrong index.  Deeper parse paths are
  reached by re-blessing tampered files with
  :func:`~repro.core.persistence.write_manifest` so the checksum gate
  passes and the structural validation has to catch the damage itself.
* **Budget exhaustion** — queries are run through
  :meth:`~repro.core.evaluator.HierarchicalEvaluator.evaluate_resilient`
  under a sweep of expansion caps; every degraded result must be a
  *ranking prefix* of the direct oracle's answers (same score sequence
  below the reported ``lower_bound``), and every complete result must
  match the oracle exactly.
* **Clock skew** — a deadline budget driven by a fake clock that jumps
  backward must stay expired (sticky expiry, monotone elapsed).
* **Cancellation** — a tripped token must abort the next charge with
  reason ``"cancelled"``.

All faults derive from one master seed, so a failure report reproduces
exactly.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.cost import CostParams
from repro.core.evaluator import eval_direct
from repro.core.index import BiGIndex
from repro.core.persistence import (
    MANIFEST_NAME,
    load_index,
    save_index,
    write_manifest,
)
from repro.core.plugins import boost
from repro.datasets.synthetic import verification_corpus
from repro.obs.runtime import instrumented
from repro.search.banks import BackwardKeywordSearch
from repro.search.base import top_k
from repro.utils.budget import Budget, CancellationToken
from repro.utils.errors import (
    BudgetExceeded,
    IndexCorruptedError,
    IndexPersistenceError,
    IndexVersionError,
)

#: Distance bound for the budget-sweep probe algorithm.
_D_MAX = 3
#: Expansion caps swept per query (deterministic; Budget counting is
#: machine-independent).
_EXPANSION_CAPS = (1, 4, 16, 64, 256, 4096)


@dataclass
class FaultFinding:
    """One violated robustness contract."""

    drill: str
    case: str
    detail: str

    def format(self) -> str:
        return f"{self.drill} [{self.case}]: {self.detail}"


@dataclass
class FaultReport:
    """Outcome of one :func:`run_fault_injection` campaign."""

    quick: bool = True
    seed: int = 0
    #: Individual fault scenarios exercised (each one an assertion).
    checks: int = 0
    findings: List[FaultFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        status = "OK" if self.ok else f"{len(self.findings)} finding(s)"
        lines = [f"faults: {status} ({self.checks} fault scenario(s))"]
        lines.extend("  " + finding.format() for finding in self.findings)
        return "\n".join(lines)


class _FakeClock:
    """Scripted clock; repeats its last value once the script runs out."""

    def __init__(self, values: Sequence[float]) -> None:
        self._values = list(values)
        self._i = 0

    def __call__(self) -> float:
        value = self._values[min(self._i, len(self._values) - 1)]
        self._i += 1
        return value


# ----------------------------------------------------------------------
# Storage faults
# ----------------------------------------------------------------------
def _expect_load_failure(
    report: FaultReport,
    case: str,
    drill: str,
    directory: str,
    ontology,
    expected: type = IndexPersistenceError,
    must_mention: Optional[str] = None,
) -> None:
    report.checks += 1
    try:
        load_index(directory, ontology)
    except expected as exc:
        if must_mention is not None and must_mention not in str(exc):
            report.findings.append(
                FaultFinding(
                    drill,
                    case,
                    f"error did not mention {must_mention!r}: {exc}",
                )
            )
    except Exception as exc:  # noqa: BLE001 - classifying is the point
        report.findings.append(
            FaultFinding(
                drill,
                case,
                f"expected {expected.__name__}, got "
                f"{type(exc).__name__}: {exc}",
            )
        )
    else:
        report.findings.append(
            FaultFinding(
                drill, case, "corrupted index loaded without any error"
            )
        )


def _storage_drills(
    report: FaultReport, index: BiGIndex, ontology, rng: random.Random
) -> None:
    workdir = tempfile.mkdtemp(prefix="bigindex-faults-")
    try:
        pristine = os.path.join(workdir, "pristine")
        save_index(index, pristine)

        # Sanity: the pristine copy must load (otherwise every drill
        # below would "pass" vacuously).
        report.checks += 1
        try:
            load_index(pristine, ontology)
        except Exception as exc:  # noqa: BLE001
            report.findings.append(
                FaultFinding(
                    "storage/pristine",
                    "save-load",
                    f"pristine index failed to load: {exc}",
                )
            )
            return

        victims = sorted(
            name
            for name in os.listdir(pristine)
            if os.path.isfile(os.path.join(pristine, name))
        )

        def fresh_copy(tag: str) -> str:
            target = os.path.join(workdir, tag)
            if os.path.exists(target):
                shutil.rmtree(target)
            shutil.copytree(pristine, target)
            return target

        # Truncation and a seeded bit flip, per file.
        for name in victims:
            target = fresh_copy("truncate")
            path = os.path.join(target, name)
            size = os.path.getsize(path)
            with open(path, "r+b") as f:
                f.truncate(size // 2)
            _expect_load_failure(
                report, f"truncate:{name}", "storage/truncate", target,
                ontology,
            )

            if size == 0:
                continue
            target = fresh_copy("bitflip")
            path = os.path.join(target, name)
            offset = rng.randrange(size)
            bit = 1 << rng.randrange(8)
            with open(path, "r+b") as f:
                f.seek(offset)
                byte = f.read(1)[0]
                f.seek(offset)
                f.write(bytes([byte ^ bit]))
            _expect_load_failure(
                report, f"bitflip:{name}@{offset}", "storage/bitflip",
                target, ontology,
            )

        # Whole-file loss.
        for name in victims:
            target = fresh_copy("missing")
            os.remove(os.path.join(target, name))
            _expect_load_failure(
                report, f"missing:{name}", "storage/missing", target,
                ontology,
            )

        # Re-blessed tampering: write_manifest makes the checksum gate
        # pass, so the structural validators must catch the damage.
        target = fresh_copy("parents-noise")
        parents = os.path.join(target, "layer1.parents.txt")
        with open(parents, "a", encoding="utf-8") as f:
            f.write("notanint\n")
        write_manifest(target)
        _expect_load_failure(
            report, "reblessed:parents-noise", "storage/deep-parse",
            target, ontology,
            expected=IndexCorruptedError, must_mention="parents.txt:",
        )

        target = fresh_copy("parents-range")
        parents = os.path.join(target, "layer1.parents.txt")
        with open(parents, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
        lines[0] = "999999"
        with open(parents, "w", encoding="utf-8") as f:
            f.write("\n".join(lines) + "\n")
        write_manifest(target)
        _expect_load_failure(
            report, "reblessed:parents-range", "storage/deep-parse",
            target, ontology, expected=IndexCorruptedError,
        )

        # Foreign format version must classify as version, not corruption.
        target = fresh_copy("version")
        meta_path = os.path.join(target, "meta.json")
        with open(meta_path, "r", encoding="utf-8") as f:
            meta = json.load(f)
        meta["version"] = 99
        with open(meta_path, "w", encoding="utf-8") as f:
            json.dump(meta, f)
        _expect_load_failure(
            report, "version:99", "storage/version", target, ontology,
            expected=IndexVersionError,
        )

        # Manifest corruption is itself detected.
        target = fresh_copy("manifest")
        with open(
            os.path.join(target, MANIFEST_NAME), "w", encoding="utf-8"
        ) as f:
            f.write("{not json")
        _expect_load_failure(
            report, "manifest:garbage", "storage/manifest", target,
            ontology, expected=IndexCorruptedError,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
# Budget faults
# ----------------------------------------------------------------------
def _budget_drills(
    report: FaultReport,
    case: str,
    index: BiGIndex,
    graph,
    queries,
) -> None:
    algorithm = BackwardKeywordSearch(d_max=_D_MAX)
    boosted = boost(algorithm, index, allow_layer_zero=True)
    searcher = algorithm.bind(graph)
    for query in queries:
        oracle, _ = eval_direct(graph, algorithm, query, searcher=searcher)
        oracle_scores = [a.score for a in top_k(oracle, None)]
        for cap in _EXPANSION_CAPS:
            report.checks += 1
            result = boosted.evaluate_resilient(
                query, budget=Budget(max_expansions=cap)
            )
            got = [a.score for a in result.answers]
            if result.degraded:
                want = [s for s in oracle_scores if s < result.lower_bound]
                if got != want:
                    report.findings.append(
                        FaultFinding(
                            "budget/prefix",
                            f"{case} {list(query.keywords)} cap={cap}",
                            f"degraded scores {got} != oracle prefix "
                            f"{want} below {result.lower_bound}",
                        )
                    )
            elif got != oracle_scores:
                report.findings.append(
                    FaultFinding(
                        "budget/complete",
                        f"{case} {list(query.keywords)} cap={cap}",
                        f"complete result scores {got} != oracle "
                        f"{oracle_scores}",
                    )
                )


def _expansion_parity_drills(
    report: FaultReport,
    case: str,
    index: BiGIndex,
    queries,
) -> None:
    """Expansion accounting must be authoritative on every exit path.

    ``charge_expansions`` is the single tap through which searchers and
    the evaluator both debit the budget and bump the telemetry counter,
    so after any ``evaluate_resilient`` run — complete, degraded
    mid-layer, or degraded after retrying the whole ladder — the counter
    and the budget ledger must agree exactly.  Drift means some path
    charges one side and not the other.
    """
    algorithm = BackwardKeywordSearch(d_max=_D_MAX)
    boosted = boost(algorithm, index, allow_layer_zero=True)
    for query in queries:
        for cap in _EXPANSION_CAPS:
            report.checks += 1
            budget = Budget(max_expansions=cap)
            with instrumented(trace=False) as inst:
                boosted.evaluate_resilient(query, budget=budget)
            counted = inst.metrics.counter("search.expansions")
            if counted != budget.expansions:
                report.findings.append(
                    FaultFinding(
                        "budget/accounting",
                        f"{case} {list(query.keywords)} cap={cap}",
                        f"telemetry counted {counted} expansion(s), "
                        f"budget charged {budget.expansions}",
                    )
                )


def _clock_and_cancel_drills(report: FaultReport) -> None:
    # Clock skew: once expired, a backward-jumping clock must not revive
    # the budget, and elapsed() must stay monotone.
    report.checks += 1
    clock = _FakeClock([0.0, 10.0, 3.0, 1.0, 0.5])
    budget = Budget(deadline=5.0, clock=clock)
    try:
        budget.charge(1)  # clock reads 10.0 -> expired
    except BudgetExceeded as exc:
        if exc.reason != "deadline":
            report.findings.append(
                FaultFinding(
                    "clock/skew", "deadline",
                    f"expected reason 'deadline', got {exc.reason!r}",
                )
            )
        # Subsequent backward jumps (3.0, 1.0, 0.5) must keep it expired.
        if budget.exhausted_reason() != "deadline" or budget.elapsed() < 10.0:
            report.findings.append(
                FaultFinding(
                    "clock/skew", "stickiness",
                    "backward clock jump un-expired the budget "
                    f"(reason={budget.exhausted_reason()!r}, "
                    f"elapsed={budget.elapsed()})",
                )
            )
    else:
        report.findings.append(
            FaultFinding(
                "clock/skew", "deadline",
                "deadline budget did not trip past its deadline",
            )
        )

    # Cancellation: a tripped token aborts the next charge.
    report.checks += 1
    token = CancellationToken()
    budget = Budget(token=token)
    budget.charge(100)  # unlimited budget: charges freely
    token.cancel()
    try:
        budget.charge(1)
    except BudgetExceeded as exc:
        if exc.reason != "cancelled":
            report.findings.append(
                FaultFinding(
                    "cancel", "reason",
                    f"expected reason 'cancelled', got {exc.reason!r}",
                )
            )
    else:
        report.findings.append(
            FaultFinding(
                "cancel", "latch", "cancelled token did not abort the charge"
            )
        )


# ----------------------------------------------------------------------
def run_fault_injection(
    quick: bool = True,
    seed: int = 0,
    num_layers: int = 2,
    probe_queries: Optional[
        Callable[..., List]
    ] = None,
) -> FaultReport:
    """Run every fault drill over the deterministic corpus.

    Parameters mirror :func:`repro.verify.runner.run_verification`;
    ``probe_queries`` is injectable for tests (defaults to the runner's).
    """
    if probe_queries is None:
        from repro.verify.runner import probe_queries as probe_queries_fn
    else:
        probe_queries_fn = probe_queries
    report = FaultReport(quick=quick, seed=seed)
    rng = random.Random(seed)
    _clock_and_cancel_drills(report)
    for case_index, (name, graph, ontology) in enumerate(
        verification_corpus(quick=quick, seed=seed)
    ):
        index = BiGIndex.build(
            graph.copy(share_label_table=True),
            ontology,
            num_layers=num_layers,
            cost_params=CostParams(exact=True),
        )
        if case_index == 0:
            # Storage drills are O(files x copies); smallest case only.
            _storage_drills(report, index, ontology, rng)
        queries = probe_queries_fn(graph)
        if quick:
            queries = queries[:2]
        _budget_drills(report, name, index, graph, queries)
        _expansion_parity_drills(report, name, index, queries)
    return report
