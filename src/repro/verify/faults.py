"""Deterministic fault injection for the resilience contracts.

Where the oracle/auditor/fuzzer legs check the paper's *correctness*
claims, this leg checks the repository's *robustness* claims
(docs/ROBUSTNESS.md), by deliberately breaking things and asserting the
failure is the promised one:

* **Storage faults** — every file of a saved index is truncated and
  bit-flipped (seeded, reproducible); loading must raise
  :class:`~repro.utils.errors.IndexPersistenceError` — a corrupted index
  must never load as a silently wrong index.  Deeper parse paths are
  reached by re-blessing tampered files with
  :func:`~repro.core.persistence.write_manifest` so the checksum gate
  passes and the structural validation has to catch the damage itself.
* **WAL faults** — a committed mutation log is torn at sampled byte
  offsets, bit-flipped, and de-magicked; recovery must keep exactly the
  longest valid record prefix, classify the damage, stay appendable
  after truncating the tail, and replay idempotently to the same state
  as applying the ops directly (docs/ROBUSTNESS.md, "Durability & crash
  recovery").
* **Budget exhaustion** — queries are run through
  :meth:`~repro.core.evaluator.HierarchicalEvaluator.evaluate_resilient`
  under a sweep of expansion caps; every degraded result must be a
  *ranking prefix* of the direct oracle's answers (same score sequence
  below the reported ``lower_bound``), and every complete result must
  match the oracle exactly.
* **Clock skew** — a deadline budget driven by a fake clock that jumps
  backward must stay expired (sticky expiry, monotone elapsed).
* **Cancellation** — a tripped token must abort the next charge with
  reason ``"cancelled"``.

All faults derive from one master seed, so a failure report reproduces
exactly.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import struct
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.binfmt import SectionFile
from repro.core.cost import CostParams
from repro.core.evaluator import eval_direct
from repro.core.index import BiGIndex
from repro.core.persistence import (
    BINARY_NAME,
    MANIFEST_NAME,
    load_index,
    save_index,
    write_manifest,
)
from repro.core.plugins import boost
from repro.core.wal import (
    WAL_MAGIC,
    WAL_NAME,
    MutationWAL,
    apply_wal_op,
    read_wal,
    replay_wal,
    scan_wal_bytes,
)
from repro.datasets.synthetic import verification_corpus
from repro.obs.runtime import instrumented
from repro.search.banks import BackwardKeywordSearch
from repro.search.base import top_k
from repro.utils.budget import Budget, CancellationToken
from repro.utils.errors import (
    BudgetExceeded,
    IndexCorruptedError,
    IndexPersistenceError,
    IndexVersionError,
    WALCorruptedError,
)

#: Distance bound for the budget-sweep probe algorithm.
_D_MAX = 3
#: Expansion caps swept per query (deterministic; Budget counting is
#: machine-independent).
_EXPANSION_CAPS = (1, 4, 16, 64, 256, 4096)


@dataclass
class FaultFinding:
    """One violated robustness contract."""

    drill: str
    case: str
    detail: str

    def format(self) -> str:
        return f"{self.drill} [{self.case}]: {self.detail}"


@dataclass
class FaultReport:
    """Outcome of one :func:`run_fault_injection` campaign."""

    quick: bool = True
    seed: int = 0
    #: Individual fault scenarios exercised (each one an assertion).
    checks: int = 0
    findings: List[FaultFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        status = "OK" if self.ok else f"{len(self.findings)} finding(s)"
        lines = [f"faults: {status} ({self.checks} fault scenario(s))"]
        lines.extend("  " + finding.format() for finding in self.findings)
        return "\n".join(lines)


class _FakeClock:
    """Scripted clock; repeats its last value once the script runs out."""

    def __init__(self, values: Sequence[float]) -> None:
        self._values = list(values)
        self._i = 0

    def __call__(self) -> float:
        value = self._values[min(self._i, len(self._values) - 1)]
        self._i += 1
        return value


# ----------------------------------------------------------------------
# Storage faults
# ----------------------------------------------------------------------
def _expect_load_failure(
    report: FaultReport,
    case: str,
    drill: str,
    directory: str,
    ontology,
    expected: type = IndexPersistenceError,
    must_mention: Optional[str] = None,
) -> None:
    report.checks += 1
    try:
        load_index(directory, ontology)
    except expected as exc:
        if must_mention is not None and must_mention not in str(exc):
            report.findings.append(
                FaultFinding(
                    drill,
                    case,
                    f"error did not mention {must_mention!r}: {exc}",
                )
            )
    except Exception as exc:  # noqa: BLE001 - classifying is the point
        report.findings.append(
            FaultFinding(
                drill,
                case,
                f"expected {expected.__name__}, got "
                f"{type(exc).__name__}: {exc}",
            )
        )
    else:
        report.findings.append(
            FaultFinding(
                drill, case, "corrupted index loaded without any error"
            )
        )


def _storage_drills(
    report: FaultReport, index: BiGIndex, ontology, rng: random.Random
) -> None:
    workdir = tempfile.mkdtemp(prefix="bigindex-faults-")
    try:
        pristine = os.path.join(workdir, "pristine")
        save_index(index, pristine)

        # Sanity: the pristine copy must load (otherwise every drill
        # below would "pass" vacuously).
        report.checks += 1
        try:
            load_index(pristine, ontology)
        except Exception as exc:  # noqa: BLE001
            report.findings.append(
                FaultFinding(
                    "storage/pristine",
                    "save-load",
                    f"pristine index failed to load: {exc}",
                )
            )
            return

        victims = sorted(
            name
            for name in os.listdir(pristine)
            if os.path.isfile(os.path.join(pristine, name))
        )

        def fresh_copy(tag: str, source: str = pristine) -> str:
            target = os.path.join(workdir, tag)
            if os.path.exists(target):
                shutil.rmtree(target)
            shutil.copytree(source, target)
            return target

        # Truncation and a seeded bit flip, per file.
        for name in victims:
            target = fresh_copy("truncate")
            path = os.path.join(target, name)
            size = os.path.getsize(path)
            with open(path, "r+b") as f:
                f.truncate(size // 2)
            _expect_load_failure(
                report, f"truncate:{name}", "storage/truncate", target,
                ontology,
            )

            if size == 0:
                continue
            target = fresh_copy("bitflip")
            path = os.path.join(target, name)
            offset = rng.randrange(size)
            bit = 1 << rng.randrange(8)
            with open(path, "r+b") as f:
                f.seek(offset)
                byte = f.read(1)[0]
                f.seek(offset)
                f.write(bytes([byte ^ bit]))
            _expect_load_failure(
                report, f"bitflip:{name}@{offset}", "storage/bitflip",
                target, ontology,
            )

        # Whole-file loss.
        for name in victims:
            target = fresh_copy("missing")
            os.remove(os.path.join(target, name))
            _expect_load_failure(
                report, f"missing:{name}", "storage/missing", target,
                ontology,
            )

        # v4 binary container: corruption inside one section must be
        # reported *by section name*, never load as garbage.
        target = fresh_copy("section-flip")
        container_path = os.path.join(target, BINARY_NAME)
        container = SectionFile(container_path)
        entry = dict(container.sections["layer1.parent_of"])
        container.close()
        flip_at = entry["offset"] + rng.randrange(max(entry["length"], 1))
        with open(container_path, "r+b") as f:
            f.seek(flip_at)
            byte = f.read(1)[0]
            f.seek(flip_at)
            f.write(bytes([byte ^ 0x01]))
        _expect_load_failure(
            report, "binary:section-flip", "storage/binary-section",
            target, ontology,
            expected=IndexCorruptedError, must_mention="section",
        )

        # Re-blessed binary tampering: write_manifest makes the checksum
        # gate pass, so the loader's range validation must catch it.
        target = fresh_copy("binary-range")
        container_path = os.path.join(target, BINARY_NAME)
        container = SectionFile(container_path)
        entry = dict(container.sections["layer1.parent_of"])
        container.close()
        with open(container_path, "r+b") as f:
            f.seek(entry["offset"])
            f.write(struct.pack("<i", 999999))
        write_manifest(target)
        _expect_load_failure(
            report, "reblessed:binary-range", "storage/deep-parse",
            target, ontology,
            expected=IndexCorruptedError, must_mention="unknown supernode",
        )

        # Legacy v3 layout: re-blessed tampering of the text artifacts —
        # the structural validators must catch the damage themselves.
        pristine_v3 = os.path.join(workdir, "pristine-v3")
        save_index(index, pristine_v3, format=3)
        report.checks += 1
        try:
            load_index(pristine_v3, ontology)
        except Exception as exc:  # noqa: BLE001
            report.findings.append(
                FaultFinding(
                    "storage/pristine",
                    "save-load-v3",
                    f"pristine v3 index failed to load: {exc}",
                )
            )
            return

        target = fresh_copy("parents-noise", source=pristine_v3)
        parents = os.path.join(target, "layer1.parents.txt")
        with open(parents, "a", encoding="utf-8") as f:
            f.write("notanint\n")
        write_manifest(target)
        _expect_load_failure(
            report, "reblessed:parents-noise", "storage/deep-parse",
            target, ontology,
            expected=IndexCorruptedError, must_mention="parents.txt:",
        )

        target = fresh_copy("parents-range", source=pristine_v3)
        parents = os.path.join(target, "layer1.parents.txt")
        with open(parents, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
        lines[0] = "999999"
        with open(parents, "w", encoding="utf-8") as f:
            f.write("\n".join(lines) + "\n")
        write_manifest(target)
        _expect_load_failure(
            report, "reblessed:parents-range", "storage/deep-parse",
            target, ontology, expected=IndexCorruptedError,
        )

        # Foreign format version must classify as version, not corruption.
        target = fresh_copy("version")
        meta_path = os.path.join(target, "meta.json")
        with open(meta_path, "r", encoding="utf-8") as f:
            meta = json.load(f)
        meta["version"] = 99
        with open(meta_path, "w", encoding="utf-8") as f:
            json.dump(meta, f)
        _expect_load_failure(
            report, "version:99", "storage/version", target, ontology,
            expected=IndexVersionError,
        )

        # Manifest corruption is itself detected.
        target = fresh_copy("manifest")
        with open(
            os.path.join(target, MANIFEST_NAME), "w", encoding="utf-8"
        ) as f:
            f.write("{not json")
        _expect_load_failure(
            report, "manifest:garbage", "storage/manifest", target,
            ontology, expected=IndexCorruptedError,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
# WAL faults
# ----------------------------------------------------------------------
def _wal_drills(
    report: FaultReport, index: BiGIndex, ontology, rng: random.Random
) -> None:
    """Tear, flip, and de-magic a committed mutation log.

    The durability contract under attack: recovery keeps exactly the
    longest valid record prefix (never more, never garbage), classifies
    the damage, leaves the file appendable, and replaying the kept
    records — once or twice — reaches the same state as applying the
    ops directly.
    """
    workdir = tempfile.mkdtemp(prefix="bigindex-walfaults-")
    try:
        home = os.path.join(workdir, "idx")
        save_index(index, home)
        wal_path = os.path.join(home, WAL_NAME)

        # A short schedule over real edges: deletes of present edges
        # plus one re-insert, all applicable, so replay changes state.
        edges = sorted(index.base_graph.edges())
        ops = [
            {"op": "delete", "u": u, "v": v}
            for u, v in rng.sample(edges, min(3, len(edges)))
        ]
        if ops:
            ops.append(
                {"op": "insert", "u": ops[0]["u"], "v": ops[0]["v"]}
            )
        with MutationWAL(wal_path) as wal:
            for op in ops:
                wal.commit(op)
        with open(wal_path, "rb") as f:
            pristine = f.read()
        full_ops = [record.op for record in read_wal(wal_path).records]

        # Replay parity: loading (which replays the log) must reach the
        # direct-apply oracle's state exactly.
        report.checks += 1
        oracle = index.cow_clone()
        for op in ops:
            apply_wal_op(oracle, op)
        loaded = None
        try:
            loaded = load_index(home, ontology)
        except Exception as exc:  # noqa: BLE001 - classifying is the point
            report.findings.append(
                FaultFinding(
                    "wal/replay", "load",
                    f"index with a clean WAL failed to load: {exc}",
                )
            )
        else:
            if loaded.state_digest() != oracle.state_digest():
                report.findings.append(
                    FaultFinding(
                        "wal/replay", "parity",
                        "replayed state differs from applying the "
                        "logged ops directly",
                    )
                )

        # Idempotence: replaying the same log again must be a no-op.
        if loaded is not None:
            report.checks += 1
            before = loaded.state_digest()
            replay_wal(loaded, read_wal(wal_path).records)
            if loaded.state_digest() != before:
                report.findings.append(
                    FaultFinding(
                        "wal/replay", "idempotence",
                        "replaying an already-applied log changed state",
                    )
                )

        # Torn tails: every sampled truncation point must scan to a
        # clean prefix of the full log, with tail damage classified iff
        # the cut is mid-record.
        magic = len(WAL_MAGIC)
        offsets = sorted(
            set(rng.sample(range(len(pristine)), min(16, len(pristine))))
            | {1, magic - 1, magic, magic + 1, len(pristine) - 1}
        )
        record_ends = {magic}
        pos = magic
        for op in full_ops:
            pos += 8 + len(
                json.dumps(op, sort_keys=True, separators=(",", ":"))
            )
            record_ends.add(pos)
        for cut in offsets:
            report.checks += 1
            scan = scan_wal_bytes(pristine[:cut])
            kept = [record.op for record in scan.records]
            if kept != full_ops[: len(kept)]:
                report.findings.append(
                    FaultFinding(
                        "wal/torn", f"cut@{cut}",
                        f"scan of a truncated log is not a prefix: {kept}",
                    )
                )
            elif cut >= magic and (scan.tail_kind is None) != (
                cut in record_ends
            ):
                report.findings.append(
                    FaultFinding(
                        "wal/torn", f"cut@{cut}",
                        f"tail diagnosis {scan.tail_kind!r} does not match "
                        f"the cut (record boundary: {cut in record_ends})",
                    )
                )

        # A torn file recovers in place and is appendable afterwards.
        report.checks += 1
        torn_path = os.path.join(workdir, "torn.wal")
        with open(torn_path, "wb") as f:
            f.write(pristine[:-3])  # mid-payload tear
        with MutationWAL(torn_path) as torn:
            if torn.recovered_tail is None:
                report.findings.append(
                    FaultFinding(
                        "wal/recover", "diagnose",
                        "torn tail was not diagnosed on open",
                    )
                )
            probe = {"op": "insert", "u": 0, "v": 0}
            torn.commit(probe)
        reread = read_wal(torn_path)  # on_tail="error": must be clean
        if [r.op for r in reread.records] != full_ops[:-1] + [probe]:
            report.findings.append(
                FaultFinding(
                    "wal/recover", "append",
                    "recovered log did not keep the valid prefix plus "
                    "the new append",
                )
            )

        # A bit flip past the magic damages the tail, never the prefix.
        report.checks += 1
        offset = rng.randrange(magic, len(pristine))
        bit = 1 << rng.randrange(8)
        flipped = bytearray(pristine)
        flipped[offset] ^= bit
        scan = scan_wal_bytes(bytes(flipped))
        kept = [record.op for record in scan.records]
        if scan.tail_kind is None or kept != full_ops[: len(kept)]:
            report.findings.append(
                FaultFinding(
                    "wal/bitflip", f"@{offset}",
                    f"flip was not classified as tail damage "
                    f"(kind={scan.tail_kind!r}, kept={len(kept)})",
                )
            )

        # A de-magicked log is refused outright — including by load.
        home2 = os.path.join(workdir, "badmagic")
        shutil.copytree(home, home2)
        bad_path = os.path.join(home2, WAL_NAME)
        with open(bad_path, "r+b") as f:
            f.write(b"NOTAWAL!")
        _expect_load_failure(
            report, "wal:bad-magic", "wal/magic", home2, ontology,
            expected=WALCorruptedError,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ----------------------------------------------------------------------
# Budget faults
# ----------------------------------------------------------------------
def _budget_drills(
    report: FaultReport,
    case: str,
    index: BiGIndex,
    graph,
    queries,
) -> None:
    algorithm = BackwardKeywordSearch(d_max=_D_MAX)
    boosted = boost(algorithm, index, allow_layer_zero=True)
    searcher = algorithm.bind(graph)
    for query in queries:
        oracle, _ = eval_direct(graph, algorithm, query, searcher=searcher)
        oracle_scores = [a.score for a in top_k(oracle, None)]
        for cap in _EXPANSION_CAPS:
            report.checks += 1
            result = boosted.evaluate_resilient(
                query, budget=Budget(max_expansions=cap)
            )
            got = [a.score for a in result.answers]
            if result.degraded:
                want = [s for s in oracle_scores if s < result.lower_bound]
                if got != want:
                    report.findings.append(
                        FaultFinding(
                            "budget/prefix",
                            f"{case} {list(query.keywords)} cap={cap}",
                            f"degraded scores {got} != oracle prefix "
                            f"{want} below {result.lower_bound}",
                        )
                    )
            elif got != oracle_scores:
                report.findings.append(
                    FaultFinding(
                        "budget/complete",
                        f"{case} {list(query.keywords)} cap={cap}",
                        f"complete result scores {got} != oracle "
                        f"{oracle_scores}",
                    )
                )


def _expansion_parity_drills(
    report: FaultReport,
    case: str,
    index: BiGIndex,
    queries,
) -> None:
    """Expansion accounting must be authoritative on every exit path.

    ``charge_expansions`` is the single tap through which searchers and
    the evaluator both debit the budget and bump the telemetry counter,
    so after any ``evaluate_resilient`` run — complete, degraded
    mid-layer, or degraded after retrying the whole ladder — the counter
    and the budget ledger must agree exactly.  Drift means some path
    charges one side and not the other.
    """
    algorithm = BackwardKeywordSearch(d_max=_D_MAX)
    boosted = boost(algorithm, index, allow_layer_zero=True)
    for query in queries:
        for cap in _EXPANSION_CAPS:
            report.checks += 1
            budget = Budget(max_expansions=cap)
            with instrumented(trace=False) as inst:
                boosted.evaluate_resilient(query, budget=budget)
            counted = inst.metrics.counter("search.expansions")
            if counted != budget.expansions:
                report.findings.append(
                    FaultFinding(
                        "budget/accounting",
                        f"{case} {list(query.keywords)} cap={cap}",
                        f"telemetry counted {counted} expansion(s), "
                        f"budget charged {budget.expansions}",
                    )
                )


def _clock_and_cancel_drills(report: FaultReport) -> None:
    # Clock skew: once expired, a backward-jumping clock must not revive
    # the budget, and elapsed() must stay monotone.
    report.checks += 1
    clock = _FakeClock([0.0, 10.0, 3.0, 1.0, 0.5])
    budget = Budget(deadline=5.0, clock=clock)
    try:
        budget.charge(1)  # clock reads 10.0 -> expired
    except BudgetExceeded as exc:
        if exc.reason != "deadline":
            report.findings.append(
                FaultFinding(
                    "clock/skew", "deadline",
                    f"expected reason 'deadline', got {exc.reason!r}",
                )
            )
        # Subsequent backward jumps (3.0, 1.0, 0.5) must keep it expired.
        if budget.exhausted_reason() != "deadline" or budget.elapsed() < 10.0:
            report.findings.append(
                FaultFinding(
                    "clock/skew", "stickiness",
                    "backward clock jump un-expired the budget "
                    f"(reason={budget.exhausted_reason()!r}, "
                    f"elapsed={budget.elapsed()})",
                )
            )
    else:
        report.findings.append(
            FaultFinding(
                "clock/skew", "deadline",
                "deadline budget did not trip past its deadline",
            )
        )

    # Cancellation: a tripped token aborts the next charge.
    report.checks += 1
    token = CancellationToken()
    budget = Budget(token=token)
    budget.charge(100)  # unlimited budget: charges freely
    token.cancel()
    try:
        budget.charge(1)
    except BudgetExceeded as exc:
        if exc.reason != "cancelled":
            report.findings.append(
                FaultFinding(
                    "cancel", "reason",
                    f"expected reason 'cancelled', got {exc.reason!r}",
                )
            )
    else:
        report.findings.append(
            FaultFinding(
                "cancel", "latch", "cancelled token did not abort the charge"
            )
        )


# ----------------------------------------------------------------------
def run_fault_injection(
    quick: bool = True,
    seed: int = 0,
    num_layers: int = 2,
    probe_queries: Optional[
        Callable[..., List]
    ] = None,
) -> FaultReport:
    """Run every fault drill over the deterministic corpus.

    Parameters mirror :func:`repro.verify.runner.run_verification`;
    ``probe_queries`` is injectable for tests (defaults to the runner's).
    """
    if probe_queries is None:
        from repro.verify.runner import probe_queries as probe_queries_fn
    else:
        probe_queries_fn = probe_queries
    report = FaultReport(quick=quick, seed=seed)
    rng = random.Random(seed)
    _clock_and_cancel_drills(report)
    for case_index, (name, graph, ontology) in enumerate(
        verification_corpus(quick=quick, seed=seed)
    ):
        index = BiGIndex.build(
            graph.copy(share_label_table=True),
            ontology,
            num_layers=num_layers,
            cost_params=CostParams(exact=True),
        )
        if case_index == 0:
            # Storage drills are O(files x copies); smallest case only.
            _storage_drills(report, index, ontology, rng)
            _wal_drills(report, index, ontology, rng)
        queries = probe_queries_fn(graph)
        if quick:
            queries = queries[:2]
        _budget_drills(report, name, index, graph, queries)
        _expansion_parity_drills(report, name, index, queries)
    return report
