"""Persistence round-trip drill: on-disk formats never change answers.

The v4 mmap container (PR 8) makes the on-disk index a *live* data
structure — CSR adjacency, postings, extent tables and parent maps are
served straight out of page-cache-backed ``memoryview``s.  That is only
admissible if the storage format is invisible to every consumer: a
reloaded index must be indistinguishable from the heap-built original,
in any format, through any conversion chain.  This drill enforces that
contract deterministically on every ``repro-bigindex verify`` run:

1. **Round-trip identity per format** — the built index is saved and
   reloaded as both v3 (text files) and v4 (binary container); each
   reload must reproduce the original's ``state_digest`` and answer
   every probe query with the exact same outcome (scores, signatures,
   vertices, edges — or the identical error).
2. **Warm-start contract** — a v4 reload must not rebuild postings on
   first use (the ``postings.build`` counter stays at zero) and must
   report itself mmap-backed on every graph.
3. **Conversion chains** — v4 → v3 → v4 re-saves (the ``persist``
   subcommand's up-/down-convert paths) preserve the digest end to end.
4. **Detach identity** — mutating the mmap-backed reload first
   materializes it on the heap; the drill applies one edge insertion to
   the reload and to a heap clone of the original and requires identical
   digests, so copy-on-write detach provably reconstructs the frozen
   state.

The maintenance fuzzer interleaves the same save → load-v4 → compare
probe with random op sequences; this is the deterministic, always-on
leg.  The fault-injection drills (:mod:`repro.verify.faults`) cover the
negative side: damaged containers must be *rejected*, never misread.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.core.evaluator import HierarchicalEvaluator
from repro.core.index import BiGIndex
from repro.core.persistence import load_index, save_index
from repro.obs.runtime import instrumented
from repro.search.base import KeywordQuery, KeywordSearchAlgorithm
from repro.verify.fuzzer import _eval_outcome

#: Builds a fresh, deterministic index the drill may mutate freely.
IndexFactory = Callable[[], BiGIndex]


@dataclass
class PersistReport:
    """Outcome of one :func:`run_persistence_drill`."""

    checks: int = 0
    problems: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def format(self) -> str:
        if self.ok:
            return f"persist: OK ({self.checks} round-trip check(s))"
        lines = [
            f"persist: {len(self.problems)} problem(s) in "
            f"{self.checks} check(s)"
        ]
        lines.extend(f"  {p}" for p in self.problems)
        return "\n".join(lines)


def _query_outcomes(
    index: BiGIndex,
    algorithms: Sequence[KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
) -> List[tuple]:
    outcomes = []
    for algorithm in algorithms:
        evaluator = HierarchicalEvaluator(index, algorithm, cache_size=0)
        for query in queries:
            outcomes.append(_eval_outcome(evaluator, query))
    return outcomes


def run_persistence_drill(
    index_factory: IndexFactory,
    algorithms: Sequence[KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
) -> PersistReport:
    """Round-trip one index through every format and compare everything."""
    report = PersistReport()
    original = index_factory()
    want_digest = original.state_digest()
    want_outcomes = _query_outcomes(original, algorithms, queries)

    with tempfile.TemporaryDirectory(prefix="persistcheck-") as tmp:
        dirs = {
            3: os.path.join(tmp, "idx-v3"),
            4: os.path.join(tmp, "idx-v4"),
        }
        loaded = {}
        for fmt, directory in dirs.items():
            save_index(original, directory, format=fmt)
            index = load_index(directory, original.ontology)
            loaded[fmt] = index
            report.checks += 1
            digest = index.state_digest()
            if digest != want_digest:
                report.problems.append(
                    f"v{fmt} round trip changed the state digest: "
                    f"{digest} != {want_digest}"
                )
                continue
            report.checks += 1
            outcomes = _query_outcomes(index, algorithms, queries)
            if outcomes != want_outcomes:
                report.problems.append(
                    f"v{fmt} round trip changed query outcomes "
                    f"({sum(a != b for a, b in zip(outcomes, want_outcomes))}"
                    f" of {len(want_outcomes)} differ)"
                )

        # Warm-start contract: the v4 reload serves postings straight
        # from the container — first use must not *build* anything.
        v4 = loaded.get(4)
        if v4 is not None:
            report.checks += 1
            graphs = [
                v4.layer_graph(m) for m in range(v4.num_layers + 1)
            ]
            cold = [g for g in graphs if not g.is_mmap_backed]
            if cold:
                report.problems.append(
                    f"v4 reload left {len(cold)} of {len(graphs)} "
                    f"graph(s) heap-resident instead of mmap-backed"
                )
            report.checks += 1
            label = v4.base_graph.label(0)
            with instrumented(trace=False) as inst:
                v4.base_graph.sorted_vertices_with_label(label)
            if inst.metrics.counters().get("postings.build"):
                report.problems.append(
                    "v4 reload rebuilt postings on first lookup; the "
                    "container's postings section should serve it warm"
                )

        # Conversion chains: v4 -> v3 -> v4 must be digest-stable.
        if v4 is not None and not report.problems:
            down = os.path.join(tmp, "down-v3")
            up = os.path.join(tmp, "up-v4")
            save_index(loaded[4], down, format=3)
            save_index(load_index(down, original.ontology), up, format=4)
            chained = load_index(up, original.ontology)
            report.checks += 1
            if chained.state_digest() != want_digest:
                report.problems.append(
                    f"v4 -> v3 -> v4 conversion chain drifted: "
                    f"{chained.state_digest()} != {want_digest}"
                )

        # Detach identity: one insertion on the mmap reload (triggering
        # materialization) vs the same insertion on a heap clone.
        if v4 is not None and not report.problems:
            edge = _fresh_edge(original)
            if edge is not None:
                twin = original.cow_clone()
                twin.insert_edge(*edge)
                v4.insert_edge(*edge)
                report.checks += 1
                if v4.state_digest() != twin.state_digest():
                    report.problems.append(
                        f"inserting edge {edge} after the v4 reload "
                        f"diverged from the same insertion on a heap "
                        f"clone ({v4.state_digest()} != "
                        f"{twin.state_digest()})"
                    )
    return report


def _fresh_edge(index: BiGIndex):
    """A deterministic absent edge of ``index``'s base graph."""
    graph = index.base_graph
    n = graph.num_vertices
    for u in range(min(n, 8)):
        for v in range(min(n, 8)):
            if u != v and not graph.has_edge(u, v):
                return (u, v)
    return None
