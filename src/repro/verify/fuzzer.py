"""Metamorphic fuzzer for BiG-index incremental maintenance.

The maintenance section of the paper (Sec. 3.2) allows the index to drift
away from minimality under updates but never away from *correctness*: after
any sequence of edge insertions, edge deletions and ontology edits, the
incrementally maintained hierarchy must stay a valid bisimulation hierarchy
over the current data graph and must answer every query exactly like a
from-scratch :meth:`~repro.core.index.BiGIndex.rebuild` (the metamorphic
relation ``incremental(ops) == rebuild(apply(ops))``).

The fuzzer generates seed-reproducible random operation sequences, applies
them through the incremental maintenance entry points, and checks:

1. the :mod:`~repro.verify.auditor` invariants still hold on the
   incrementally maintained index;
2. a from-scratch rebuild over the same base graph and configurations is
   *refined* by the incremental partitions (incremental may be finer,
   never incompatible), and itself passes the audit with minimality;
3. the :mod:`~repro.verify.oracle` still sees exact query agreement on a
   set of probe queries;
4. *interleaved with the ops*, long-lived caching evaluators (result
   cache + per-layer searchers, invalidated by the index epoch) answer
   every probe query exactly like a fresh uncached evaluator after every
   single mutation — the stale-epoch trap a post-sequence check would
   miss (:class:`_CachedQueryProbe`);
5. *interleaved with the ops*, the index survives a save → load-v4
   round trip: the mmap-backed reload has the same state digest and
   answers every probe query identically, and mutating the reload (a
   copy-on-write detach from the container) lands in exactly the same
   state as the same mutation on the heap-resident original
   (:class:`_PersistRoundtripProbe`).

A failing sequence is shrunk ddmin-style to a minimal reproducer: each op
is tentatively dropped and the remainder replayed from a fresh index, so
the reported sequence is 1-minimal with respect to the failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import Configuration
from repro.core.evaluator import HierarchicalEvaluator
from repro.core.index import BiGIndex, Layer
from repro.search.base import KeywordQuery, KeywordSearchAlgorithm
from repro.utils.errors import BigIndexError, QueryError
from repro.verify.auditor import audit_index
from repro.verify.oracle import DifferentialOracle

#: One maintenance operation: ``("insert", u, v)``, ``("delete", u, v)`` or
#: ``("drop-ontology", subtype, supertype)``.
Op = Tuple

#: Builds a fresh, deterministic index for replay during shrinking.
IndexFactory = Callable[[], BiGIndex]


def apply_op(index: BiGIndex, op: Op) -> bool:
    """Apply one operation through the incremental maintenance API.

    Returns whether the operation had an effect.  Inapplicable operations
    (re-inserting a present edge, deleting an absent one) are no-ops, which
    keeps replaying a *subsequence* of a recorded run well defined during
    shrinking.
    """
    kind = op[0]
    if kind == "insert":
        _, u, v = op
        if index.base_graph.has_edge(u, v):
            return False
        index.insert_edge(u, v)
        return True
    if kind == "delete":
        _, u, v = op
        if not index.base_graph.has_edge(u, v):
            return False
        index.delete_edge(u, v)
        return True
    if kind == "drop-ontology":
        _, subtype, supertype = op
        if not any(
            layer.config.mappings.get(subtype) == supertype
            for layer in index.layers
        ):
            return False
        index.remove_ontology_edge(subtype, supertype)
        return True
    raise ValueError(f"unknown fuzz op kind: {kind!r}")


def rebuilt_reference(index: BiGIndex) -> BiGIndex:
    """From-scratch rebuild over ``index``'s current graph and configs.

    Shares the base graph (nothing below mutates it) so base vertex ids are
    directly comparable between the two hierarchies.
    """
    reference = BiGIndex(
        index.base_graph, index.ontology, direction=index.direction
    )
    for layer in index.layers:
        reference.layers.append(
            Layer(
                config=Configuration(layer.config.mappings),
                graph=layer.graph,
                parent_of=list(layer.parent_of),
                extent=[list(members) for members in layer.extent],
            )
        )
    reference.rebuild()
    return reference


def check_equivalence(
    index: BiGIndex,
    algorithms: Sequence[KeywordSearchAlgorithm] = (),
    queries: Sequence[KeywordQuery] = (),
) -> List[str]:
    """All ways the incrementally maintained ``index`` differs from a rebuild.

    Returns a list of human-readable problems; empty means equivalent.
    """
    problems: List[str] = []
    audit = audit_index(index)
    if not audit.ok:
        problems.extend(f"incremental audit: {v}" for v in audit.violations)
    reference = rebuilt_reference(index)
    ref_audit = audit_index(reference, expect_minimal=True)
    if not ref_audit.ok:
        problems.extend(f"rebuild audit: {v}" for v in ref_audit.violations)
    if index.num_layers != reference.num_layers:
        problems.append(
            f"layer count diverged: incremental h={index.num_layers}, "
            f"rebuild h={reference.num_layers}"
        )
    else:
        problems.extend(_refinement_problems(index, reference))
    if algorithms and queries:
        oracle = DifferentialOracle(index)
        report = oracle.run(list(algorithms), list(queries))
        if not report.ok:
            problems.extend(f"oracle: {d}" for d in report.divergences)
    return problems


def _refinement_problems(index: BiGIndex, reference: BiGIndex) -> List[str]:
    """Incremental partitions must refine the rebuilt (minimal) partitions.

    Two base vertices the incremental index keeps together must be
    bisimilar, hence together in the maximal bisimulation the rebuild
    computes; the converse may fail (legitimate drift).
    """
    problems: List[str] = []
    for m in range(1, index.num_layers + 1):
        block_to_ref = {}
        for v in index.base_graph.vertices():
            block = index.chi(v, m)
            ref_block = reference.chi(v, m)
            seen = block_to_ref.setdefault(block, ref_block)
            if seen != ref_block:
                problems.append(
                    f"layer {m}: incremental supernode {block} mixes rebuild "
                    f"supernodes {seen} and {ref_block} (vertex {v}) — "
                    "incremental partition does not refine the rebuild"
                )
                break
    return problems


def _eval_outcome(
    evaluator: HierarchicalEvaluator, query: KeywordQuery
) -> Tuple:
    """A comparable snapshot of one evaluation — answers or error.

    Cached and uncached evaluation must agree *outcome-for-outcome*:
    identical rankings down to every answer's vertices and edges, and
    identical errors (e.g. keyword collisions) when a query is rejected.
    """
    try:
        result = evaluator.evaluate(query)
    except (QueryError, BigIndexError) as exc:
        return ("error", type(exc).__name__, str(exc))
    return (
        "ok",
        result.layer,
        tuple(
            (a.score, a.signature(), a.vertices, a.edges)
            for a in result.answers
        ),
    )


class _CachedQueryProbe:
    """Cached==uncached assertion interleaved with maintenance ops.

    Holds one *long-lived* caching evaluator per algorithm — result cache
    populated, searchers bound — across an entire fuzz sequence, the way
    a query server would.  After every mutation, each probe query is run
    once (exercising epoch invalidation) and then again (a guaranteed
    result-cache hit) and both outcomes are compared against a fresh
    evaluator with caching disabled.
    """

    def __init__(
        self,
        index: BiGIndex,
        algorithms: Sequence[KeywordSearchAlgorithm],
        queries: Sequence[KeywordQuery],
    ) -> None:
        self.index = index
        self.algorithms = list(algorithms)
        self.queries = list(queries)
        self._cached = [
            HierarchicalEvaluator(index, algorithm, cache_size=32)
            for algorithm in self.algorithms
        ]

    def check(self, context: str) -> List[str]:
        problems: List[str] = []
        for algorithm, cached in zip(self.algorithms, self._cached):
            fresh = HierarchicalEvaluator(
                self.index, algorithm, cache_size=0
            )
            for query in self.queries:
                expected = _eval_outcome(fresh, query)
                outcomes = (
                    ("cold", _eval_outcome(cached, query)),
                    ("warm", _eval_outcome(cached, query)),
                )
                for label, actual in outcomes:
                    if actual != expected:
                        problems.append(
                            f"cached-query ({context}, {algorithm.name}, "
                            f"Q={list(query.keywords)}, {label}): cached "
                            f"outcome {actual!r} != uncached {expected!r}"
                        )
        return problems


class _PersistRoundtripProbe:
    """Save → load-v4 → compare drill interleaved with maintenance ops.

    After every ``every``-th mutation the live index is saved in the v4
    container format, loaded back (mmap-backed, zero-copy), and held to
    three standards:

    * the reload's :meth:`~repro.core.index.BiGIndex.state_digest`
      matches the live index's;
    * every probe query evaluates to the same outcome on both;
    * applying one further edge insertion to the reload — which detaches
      its base graph from the mmap — produces the same digest as the
      same insertion on a copy-on-write clone of the live index, so the
      materialized heap state is provably the frozen state.
    """

    def __init__(
        self,
        index: BiGIndex,
        algorithms: Sequence[KeywordSearchAlgorithm],
        queries: Sequence[KeywordQuery],
        every: int = 2,
    ) -> None:
        self.index = index
        self.algorithms = list(algorithms)
        self.queries = list(queries)
        self.every = max(1, every)
        self._ops_seen = 0

    def _fresh_edge(self) -> Optional[Tuple[int, int]]:
        """A deterministic absent edge for the detach mutation."""
        graph = self.index.base_graph
        n = graph.num_vertices
        for u in range(min(n, 8)):
            for v in range(min(n, 8)):
                if u != v and not graph.has_edge(u, v):
                    return (u, v)
        return None

    def check(self, context: str) -> List[str]:
        self._ops_seen += 1
        if self._ops_seen % self.every:
            return []
        import os
        import tempfile

        from repro.core.persistence import load_index, save_index

        problems: List[str] = []
        with tempfile.TemporaryDirectory(prefix="fuzz-persist-") as tmp:
            directory = os.path.join(tmp, "idx")
            save_index(self.index, directory, format=4)
            loaded = load_index(directory, self.index.ontology)
        live_digest = self.index.state_digest()
        loaded_digest = loaded.state_digest()
        if loaded_digest != live_digest:
            problems.append(
                f"persist-roundtrip ({context}): v4 reload digest "
                f"{loaded_digest} != live digest {live_digest}"
            )
            return problems
        for algorithm in self.algorithms:
            live_eval = HierarchicalEvaluator(
                self.index, algorithm, cache_size=0
            )
            loaded_eval = HierarchicalEvaluator(
                loaded, algorithm, cache_size=0
            )
            for query in self.queries:
                expected = _eval_outcome(live_eval, query)
                actual = _eval_outcome(loaded_eval, query)
                if actual != expected:
                    problems.append(
                        f"persist-roundtrip ({context}, {algorithm.name}, "
                        f"Q={list(query.keywords)}): v4 reload outcome "
                        f"{actual!r} != live outcome {expected!r}"
                    )
        edge = self._fresh_edge()
        if edge is not None:
            # Same mutation on both sides: the reload detaches from its
            # container, the clone stays on the heap; they must agree.
            twin = self.index.cow_clone()
            twin.insert_edge(*edge)
            loaded.insert_edge(*edge)
            if loaded.state_digest() != twin.state_digest():
                problems.append(
                    f"persist-roundtrip ({context}): inserting edge "
                    f"{edge} after the v4 reload diverged from the same "
                    f"insertion on a heap clone "
                    f"({loaded.state_digest()} != {twin.state_digest()})"
                )
        return problems


@dataclass(frozen=True)
class FuzzFailure:
    """One failing sequence with its minimal reproducer."""

    seed: int
    sequence: int
    ops: Tuple[Op, ...]
    shrunk_ops: Tuple[Op, ...]
    problems: Tuple[str, ...]

    def format(self) -> str:
        lines = [
            f"sequence {self.sequence} (seed {self.seed}) failed after "
            f"{len(self.ops)} op(s); minimal reproducer "
            f"({len(self.shrunk_ops)} op(s)):"
        ]
        lines.extend(f"    {op!r}" for op in self.shrunk_ops)
        lines.append(
            f"  reproduce with: fuzz_index(..., seed={self.seed}, "
            f"sequences={self.sequence + 1}) or replay the ops above"
        )
        lines.extend(f"  problem: {p}" for p in self.problems[:10])
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seed: int = 0
    sequences_run: int = 0
    ops_applied: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        if self.ok:
            return (
                f"fuzz: OK ({self.sequences_run} sequence(s), "
                f"{self.ops_applied} op(s), seed {self.seed})"
            )
        lines = [
            f"fuzz: {len(self.failures)} failing sequence(s) of "
            f"{self.sequences_run} (seed {self.seed})"
        ]
        lines.extend("  " + f.format().replace("\n", "\n  ") for f in self.failures)
        return "\n".join(lines)


def _random_op(rng: random.Random, index: BiGIndex) -> Optional[Op]:
    """Draw one applicable operation, or ``None`` if none can be found."""
    n = index.base_graph.num_vertices
    ontology_edges = sorted(
        {
            (subtype, supertype)
            for layer in index.layers
            for subtype, supertype in layer.config.mappings.items()
        }
    )
    kinds = ["insert", "insert", "delete", "delete"]
    if ontology_edges:
        kinds.append("drop-ontology")
    for _ in range(20):
        kind = rng.choice(kinds)
        if kind == "insert":
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u != v and not index.base_graph.has_edge(u, v):
                return ("insert", u, v)
        elif kind == "delete":
            edges = sorted(index.base_graph.edges())
            if edges:
                return ("delete", *rng.choice(edges))
        else:
            return ("drop-ontology", *rng.choice(ontology_edges))
    return None


def _replay_problems(
    index_factory: IndexFactory,
    ops: Sequence[Op],
    algorithms: Sequence[KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
    cache_probe: bool = True,
    persist_probe: bool = True,
) -> List[str]:
    """Replay ``ops`` on a fresh index, mirroring the campaign's checks
    (including the interleaved cache and persistence probes, so their
    failures shrink)."""
    index = index_factory()
    probe = (
        _CachedQueryProbe(index, algorithms, queries)
        if cache_probe and algorithms and queries
        else None
    )
    persist = (
        _PersistRoundtripProbe(index, algorithms, queries)
        if persist_probe
        else None
    )
    problems: List[str] = []
    if probe is not None:
        problems.extend(probe.check("pre"))
    for position, op in enumerate(ops, start=1):
        apply_op(index, op)
        if probe is not None:
            problems.extend(probe.check(f"after op {position}"))
        if persist is not None:
            problems.extend(persist.check(f"after op {position}"))
    problems.extend(check_equivalence(index, algorithms, queries))
    return problems


def shrink_ops(
    index_factory: IndexFactory,
    ops: Sequence[Op],
    algorithms: Sequence[KeywordSearchAlgorithm] = (),
    queries: Sequence[KeywordQuery] = (),
    cache_probe: bool = True,
    persist_probe: bool = True,
) -> List[Op]:
    """Greedy ddmin: drop ops one at a time while the failure persists."""
    current = list(ops)
    changed = True
    while changed and len(current) > 1:
        changed = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1 :]
            if _replay_problems(
                index_factory, candidate, algorithms, queries,
                cache_probe, persist_probe,
            ):
                current = candidate
                changed = True
                break
    return current


def fuzz_index(
    index_factory: IndexFactory,
    algorithms: Sequence[KeywordSearchAlgorithm] = (),
    queries: Sequence[KeywordQuery] = (),
    sequences: int = 3,
    ops_per_sequence: int = 6,
    seed: int = 0,
    shrink: bool = True,
    cache_probe: bool = True,
    persist_probe: bool = True,
) -> FuzzReport:
    """Run a fuzzing campaign against incremental maintenance.

    Parameters
    ----------
    index_factory:
        Zero-argument callable producing a *fresh deterministic* index;
        called once per sequence and once per shrinking replay.
    algorithms / queries:
        Probe workload handed to the differential oracle after each
        sequence (empty disables the oracle leg, keeping audit + rebuild
        refinement).
    sequences / ops_per_sequence:
        Campaign size.
    seed:
        Master seed; sequence ``i`` uses ``random.Random(f"{seed}:{i}")``
        so any failure reproduces from (seed, sequence index) alone.
    shrink:
        Minimize failing sequences before reporting.
    cache_probe:
        Interleave the :class:`_CachedQueryProbe` cached==uncached check
        with the ops (needs ``algorithms`` and ``queries``).
    persist_probe:
        Interleave :class:`_PersistRoundtripProbe` save → load-v4
        round-trip checks (digest, query, and detach identity) with the
        ops.
    """
    report = FuzzReport(seed=seed)
    for sequence in range(sequences):
        rng = random.Random(f"{seed}:{sequence}")
        index = index_factory()
        probe = (
            _CachedQueryProbe(index, algorithms, queries)
            if cache_probe and algorithms and queries
            else None
        )
        persist = (
            _PersistRoundtripProbe(index, algorithms, queries)
            if persist_probe
            else None
        )
        problems: List[str] = []
        if probe is not None:
            # Populate the long-lived caches before any mutation.
            problems.extend(probe.check("pre"))
        ops: List[Op] = []
        for _ in range(ops_per_sequence):
            op = _random_op(rng, index)
            if op is None:
                break
            apply_op(index, op)
            ops.append(op)
            if probe is not None:
                problems.extend(probe.check(f"after op {len(ops)}"))
            if persist is not None:
                problems.extend(persist.check(f"after op {len(ops)}"))
        report.sequences_run += 1
        report.ops_applied += len(ops)
        problems.extend(check_equivalence(index, algorithms, queries))
        if problems:
            shrunk = (
                shrink_ops(
                    index_factory, ops, algorithms, queries,
                    cache_probe, persist_probe,
                )
                if shrink
                else list(ops)
            )
            report.failures.append(
                FuzzFailure(
                    seed=seed,
                    sequence=sequence,
                    ops=tuple(ops),
                    shrunk_ops=tuple(shrunk),
                    problems=tuple(problems),
                )
            )
    return report
