"""Serve drill: concurrent HTTP responses == single-threaded evaluation.

Two legs, both asserting the serving stack adds *nothing* to the
evaluation semantics:

* :func:`run_serve_drill` — boot a live server (real sockets, one
  handler thread per connection), hammer it from N client threads while
  the main thread applies maintenance mutations through the runtime, and
  require every response to be **byte-identical** to the single-threaded
  in-process evaluation *for the epoch the response pinned*.  The
  expectations are precomputed per epoch by replaying the same mutation
  schedule on a replica index built from the same deterministic factory.
* :func:`fuzz_serve` — the maintenance fuzzer's serving face: drive a
  live server through seed-reproducible mutation/query interleavings via
  ``/admin/mutate`` and diff every response against an in-process oracle
  service stepped through the same ops.

Both legs compare *canonical bytes*: the JSON payload minus the volatile
fields (timings, budget remainders) serialized with sorted keys — the
strongest equality the wire format supports.
"""

from __future__ import annotations

import json
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.index import BiGIndex
from repro.core.plugins import boost
from repro.search.base import KeywordQuery, KeywordSearchAlgorithm
from repro.serve.client import ServeClient
from repro.serve.lifecycle import EngineRuntime
from repro.serve.server import serve_in_thread
from repro.serve.service import QueryService, ServerConfig, canonical_payload
from repro.verify.fuzzer import Op, _random_op, apply_op

IndexFactory = Callable[[], BiGIndex]


def _canonical_bytes(payload: Dict[str, object]) -> bytes:
    return json.dumps(canonical_payload(payload), sort_keys=True).encode()


def _make_service(
    index: BiGIndex,
    algorithm_factory: Callable[[], KeywordSearchAlgorithm],
    enable_admin: bool = True,
) -> QueryService:
    def evaluator_factory(idx: BiGIndex):
        return boost(algorithm_factory(), idx, allow_layer_zero=True).evaluator

    runtime = EngineRuntime(index, evaluator_factory)
    return QueryService(
        runtime, config=ServerConfig(enable_admin=enable_admin)
    )


def _query_body(query: KeywordQuery) -> bytes:
    return json.dumps({"keywords": list(query.keywords)}).encode()


@dataclass
class ServeReport:
    """Outcome of the serve drill (and/or its fuzz/latency legs)."""

    threads: int = 0
    requests: int = 0
    epochs_seen: int = 0
    fuzz_ops: int = 0
    #: Reader p99 latency with no writers (mutation-stream leg only).
    idle_p99: float = 0.0
    #: Reader p99 latency under the sustained mutation stream.
    mutate_p99: float = 0.0
    #: Server-side rolling-window /query p99 from /healthz's slo section
    #: (idle phase / mutation phase), gated alongside the client-side
    #: numbers above.
    slo_idle_p99: float = 0.0
    slo_mutate_p99: float = 0.0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        latency = ""
        if self.mutate_p99 > 0:
            latency = (
                f", reader p99 {self.idle_p99 * 1000:.1f}ms idle / "
                f"{self.mutate_p99 * 1000:.1f}ms under mutations"
            )
        if self.ok:
            return (
                f"serve: OK ({self.requests} response(s) across "
                f"{self.threads} thread(s), {self.epochs_seen} epoch(s), "
                f"{self.fuzz_ops} fuzz op(s){latency} — all byte-identical "
                f"to single-threaded evaluation)"
            )
        lines = [f"serve: {len(self.failures)} failure(s){latency}"]
        lines.extend(f"  {f}" for f in self.failures[:10])
        return "\n".join(lines)

    def merge(self, other: "ServeReport") -> None:
        self.threads = max(self.threads, other.threads)
        self.requests += other.requests
        self.epochs_seen += other.epochs_seen
        self.fuzz_ops += other.fuzz_ops
        self.idle_p99 = max(self.idle_p99, other.idle_p99)
        self.mutate_p99 = max(self.mutate_p99, other.mutate_p99)
        self.slo_idle_p99 = max(self.slo_idle_p99, other.slo_idle_p99)
        self.slo_mutate_p99 = max(self.slo_mutate_p99, other.slo_mutate_p99)
        self.failures.extend(other.failures)


def _epoch_expectations(
    index_factory: IndexFactory,
    algorithm_factory: Callable[[], KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
    ops: Sequence[Op],
) -> Dict[Tuple[int, ...], Dict[Tuple[str, ...], bytes]]:
    """Single-threaded oracle: canonical response bytes per (epoch, query).

    Replays ``ops`` on a replica index from the same deterministic
    factory, snapshotting every query's in-process service response after
    each step.  The live server's epochs must land exactly on these.
    """
    replica = index_factory()
    oracle = _make_service(replica, algorithm_factory, enable_admin=False)
    expectations: Dict[Tuple[int, ...], Dict[Tuple[str, ...], bytes]] = {}

    def snap() -> None:
        per_query: Dict[Tuple[str, ...], bytes] = {}
        for query in queries:
            status, payload, _ = oracle.handle(
                "POST", "/query", _query_body(query), {}
            )
            assert status == 200, f"oracle returned {status}: {payload}"
            per_query[query.keywords] = _canonical_bytes(payload)
        expectations[tuple(oracle.runtime.epoch)] = per_query

    snap()
    for op in ops:
        oracle.runtime.mutate(lambda idx, op=op: apply_op(idx, op))
        snap()
    return expectations


def run_serve_drill(
    index_factory: IndexFactory,
    algorithm_factory: Callable[[], KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
    threads: int = 4,
    rounds: int = 3,
    ops: Sequence[Op] = (),
    seed: int = 0,
) -> ServeReport:
    """Hammer a live server and byte-compare every response per epoch.

    ``threads`` client threads each run ``rounds`` passes over the query
    list against a real HTTP server while the main thread applies ``ops``
    through the runtime (write lock, epoch bumps).  Every response is
    matched against the precomputed single-threaded expectation for the
    epoch it pinned — proving both no torn reads (unknown epoch ⇒
    mutation observed mid-flight) and no stale-epoch cache hits (byte
    mismatch within a known epoch).
    """
    report = ServeReport(threads=threads)
    expectations = _epoch_expectations(
        index_factory, algorithm_factory, queries, ops
    )
    report.epochs_seen = len(expectations)

    index = index_factory()
    service = _make_service(index, algorithm_factory, enable_admin=False)
    rng = random.Random(seed)

    def worker(worker_id: int, port: int) -> List[str]:
        problems: List[str] = []
        order = list(queries)
        wrng = random.Random(f"{seed}:{worker_id}")
        with ServeClient("127.0.0.1", port) as client:
            for _ in range(rounds):
                wrng.shuffle(order)
                for query in order:
                    response = client.query(list(query.keywords))
                    if response.status != 200:
                        problems.append(
                            f"worker {worker_id} Q={list(query.keywords)}: "
                            f"HTTP {response.status}: {response.payload}"
                        )
                        continue
                    epoch = tuple(response.payload.get("epoch", ()))
                    per_query = expectations.get(epoch)
                    if per_query is None:
                        problems.append(
                            f"worker {worker_id} Q={list(query.keywords)}: "
                            f"pinned unknown epoch {epoch} (torn read?)"
                        )
                        continue
                    actual = _canonical_bytes(response.payload)
                    if actual != per_query[query.keywords]:
                        problems.append(
                            f"worker {worker_id} Q={list(query.keywords)} "
                            f"epoch {epoch}: response differs from "
                            f"single-threaded evaluation:\n    served: "
                            f"{actual.decode()}\n    oracle: "
                            f"{per_query[query.keywords].decode()}"
                        )
        return problems

    with serve_in_thread(service) as server:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            futures = [
                pool.submit(worker, i, server.port) for i in range(threads)
            ]
            # Interleave mutations with the in-flight reader traffic; the
            # jittered pauses vary writer arrival times across runs while
            # the epoch schedule itself stays deterministic.
            for op in ops:
                time.sleep(0.002 * rng.random())
                service.runtime.mutate(lambda idx, op=op: apply_op(idx, op))
            for future in futures:
                report.failures.extend(future.result())
    report.requests = threads * rounds * len(queries)
    return report


def _p99(samples: Sequence[float]) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def run_mutation_stream_drill(
    index_factory: IndexFactory,
    algorithm_factory: Callable[[], KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
    threads: int = 4,
    rounds: int = 4,
    ops: Sequence[Op] = (),
    seed: int = 0,
    latency_factor: float = 3.0,
    latency_slack: float = 0.05,
) -> ServeReport:
    """Readers never block while a writer streams mutations.

    The copy-on-write acceptance gate.  Phase one measures reader p99
    against an idle server; phase two repeats the identical workload
    while the main thread streams every op in ``ops`` back-to-back
    through ``runtime.mutate``.  The drill fails if

    * reader p99 under mutations exceeds
      ``max(latency_factor * idle_p99, idle_p99 + latency_slack)`` —
      the old drain-based runtime stalls every in-flight reader for the
      full layer-refresh (tens of ms), which this bound catches, while
      the absolute slack keeps a sub-millisecond idle p99 from turning
      scheduler jitter into flakes; or
    * any response is not byte-identical to the single-threaded
      expectation for the epoch it pinned (same oracle as
      :func:`run_serve_drill`).
    """
    report = ServeReport(threads=threads)
    expectations = _epoch_expectations(
        index_factory, algorithm_factory, queries, ops
    )
    report.epochs_seen = len(expectations)

    index = index_factory()
    service = _make_service(index, algorithm_factory, enable_admin=False)

    def reader(worker_id: int, port: int) -> Tuple[List[float], List[str]]:
        latencies: List[float] = []
        problems: List[str] = []
        order = list(queries)
        wrng = random.Random(f"{seed}:stream:{worker_id}")
        with ServeClient("127.0.0.1", port, max_retries=0) as client:
            for _ in range(rounds):
                wrng.shuffle(order)
                for query in order:
                    started = time.perf_counter()
                    response = client.query(list(query.keywords))
                    latencies.append(time.perf_counter() - started)
                    if response.status != 200:
                        problems.append(
                            f"reader {worker_id} Q={list(query.keywords)}: "
                            f"HTTP {response.status}: {response.payload}"
                        )
                        continue
                    epoch = tuple(response.payload.get("epoch", ()))
                    per_query = expectations.get(epoch)
                    if per_query is None:
                        problems.append(
                            f"reader {worker_id} Q={list(query.keywords)}: "
                            f"pinned unknown epoch {epoch} (torn read?)"
                        )
                        continue
                    actual = _canonical_bytes(response.payload)
                    if actual != per_query[query.keywords]:
                        problems.append(
                            f"reader {worker_id} Q={list(query.keywords)} "
                            f"epoch {epoch}: differs from single-threaded "
                            f"evaluation"
                        )
        return latencies, problems

    def run_phase(port: int) -> List[List[float]]:
        with ThreadPoolExecutor(max_workers=threads) as pool:
            futures = [pool.submit(reader, i, port) for i in range(threads)]
            if mutating:
                # Stream the whole schedule back-to-back: each mutate
                # clones copy-on-write and publishes without draining, so
                # reader latency must stay flat throughout.
                for op in ops:
                    service.runtime.mutate(
                        lambda idx, op=op: apply_op(idx, op)
                    )
            all_latencies = []
            for future in futures:
                latencies, problems = future.result()
                all_latencies.append(latencies)
                report.failures.extend(problems)
            return all_latencies

    def probe_slo(port: int, phase: str) -> float:
        """The server's own rolling-window /query p99 (from /healthz)."""
        with ServeClient("127.0.0.1", port, max_retries=0) as probe:
            response = probe.healthz()
        slo = response.payload.get("slo")
        if not isinstance(slo, dict) or "/query" not in slo:
            report.failures.append(
                f"{phase}: /healthz has no slo entry for /query "
                f"(got {sorted(slo) if isinstance(slo, dict) else slo!r})"
            )
            return 0.0
        entry = slo["/query"]
        if not entry.get("count"):
            report.failures.append(
                f"{phase}: slo window for /query is empty after the "
                f"reader phase"
            )
            return 0.0
        if entry.get("error_rate"):
            report.failures.append(
                f"{phase}: slo error_rate {entry['error_rate']:.3f} for "
                f"/query (want 0 — no request may fault)"
            )
        return float(entry.get("p99_seconds") or 0.0)

    with serve_in_thread(service) as server:
        mutating = False
        idle = [x for lat in run_phase(server.port) for x in lat]
        report.slo_idle_p99 = probe_slo(server.port, "idle phase")
        # Reset to the baseline snapshot so phase two replays the same
        # epoch schedule the expectations were computed for.
        service.runtime.reload(index_factory())
        mutating = True
        under = [x for lat in run_phase(server.port) for x in lat]
        report.slo_mutate_p99 = probe_slo(server.port, "mutation phase")

    report.requests = len(idle) + len(under)
    report.idle_p99 = _p99(idle)
    report.mutate_p99 = _p99(under)
    bound = max(
        latency_factor * report.idle_p99, report.idle_p99 + latency_slack
    )
    if report.mutate_p99 > bound:
        report.failures.append(
            f"reader p99 under mutations {report.mutate_p99 * 1000:.1f}ms "
            f"exceeds bound {bound * 1000:.1f}ms (idle p99 "
            f"{report.idle_p99 * 1000:.1f}ms x{latency_factor:g} + "
            f"{latency_slack * 1000:.0f}ms slack) — a mutation is blocking "
            f"readers"
        )
    # Same bound, server-side: the rolling SLO gauges must tell the same
    # story the client-side stopwatch does (the window spans both phases,
    # so the mutation-phase probe is an upper bound on recent latency).
    slo_bound = max(
        latency_factor * report.slo_idle_p99,
        report.slo_idle_p99 + latency_slack,
    )
    if report.slo_idle_p99 > 0 and report.slo_mutate_p99 > slo_bound:
        report.failures.append(
            f"server-side slo /query p99 under mutations "
            f"{report.slo_mutate_p99 * 1000:.1f}ms exceeds bound "
            f"{slo_bound * 1000:.1f}ms (idle {report.slo_idle_p99 * 1000:.1f}"
            f"ms x{latency_factor:g} + {latency_slack * 1000:.0f}ms slack)"
        )
    return report


def fuzz_serve(
    index_factory: IndexFactory,
    algorithm_factory: Callable[[], KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
    ops_per_sequence: int = 6,
    sequences: int = 1,
    seed: int = 0,
) -> ServeReport:
    """Drive a live server through mutation/query interleavings.

    Mutations flow through ``POST /admin/mutate`` (the full HTTP path);
    after every op the same operation is applied to an in-process oracle
    service and each probe query is diffed live-vs-oracle — canonical
    bytes, including the epoch, so the server's maintenance path must
    track the oracle's exactly.
    """
    report = ServeReport(threads=1)
    for sequence in range(sequences):
        rng = random.Random(f"serve:{seed}:{sequence}")
        live_index = index_factory()
        oracle = _make_service(
            index_factory(), algorithm_factory, enable_admin=False
        )
        service = _make_service(
            live_index, algorithm_factory, enable_admin=True
        )

        def diff(client: ServeClient, context: str) -> None:
            for query in queries:
                response = client.query(list(query.keywords))
                status, payload, _ = oracle.handle(
                    "POST", "/query", _query_body(query), {}
                )
                report.requests += 1
                if response.status != status:
                    report.failures.append(
                        f"seq {sequence} {context} Q={list(query.keywords)}:"
                        f" live HTTP {response.status} != oracle {status}"
                    )
                    continue
                live = _canonical_bytes(response.payload)
                expected = _canonical_bytes(payload)
                if live != expected:
                    report.failures.append(
                        f"seq {sequence} {context} Q={list(query.keywords)}:"
                        f"\n    served: {live.decode()}"
                        f"\n    oracle: {expected.decode()}"
                    )

        with serve_in_thread(service) as server:
            with ServeClient("127.0.0.1", server.port) as client:
                diff(client, "pre")
                for position in range(1, ops_per_sequence + 1):
                    op = _random_op(rng, live_index)
                    if op is None or op[0] == "drop-ontology":
                        # /admin/mutate speaks edge ops; ontology edits
                        # stay the in-process fuzzer's concern.
                        continue
                    kind, u, v = op
                    response = client.mutate(kind, u, v)
                    if response.status != 200:
                        report.failures.append(
                            f"seq {sequence} op {position} {op!r}: "
                            f"HTTP {response.status}: {response.payload}"
                        )
                        break
                    oracle.runtime.mutate(
                        lambda idx, op=op: apply_op(idx, op)
                    )
                    report.fuzz_ops += 1
                    live_epoch = tuple(response.payload["epoch"])
                    oracle_epoch = tuple(oracle.runtime.epoch)
                    if live_epoch != oracle_epoch:
                        report.failures.append(
                            f"seq {sequence} op {position} {op!r}: live "
                            f"epoch {live_epoch} != oracle {oracle_epoch}"
                        )
                        break
                    diff(client, f"after op {position}")
    return report
