"""Differential correctness harness for the BiG-index.

The paper's central claim (Lemma 4.1 / Prop. 5.1-5.2) is that evaluating a
query *through* the generalized hierarchy returns exactly the answers a
direct search on the data graph would.  This package checks that claim
systematically, three ways:

* :mod:`repro.verify.oracle` — a **differential oracle** that runs every
  plugged algorithm both directly on ``G`` and through
  :class:`~repro.core.evaluator.HierarchicalEvaluator` at every layer and
  answer-generation mode, and diffs the results.
* :mod:`repro.verify.auditor` — a **bisimulation invariant auditor** that
  re-derives each layer's defining equations (partition validity, ``chi`` /
  ``Spec`` round-trips, label and path preservation, size accounting) and
  reports any violation.
* :mod:`repro.verify.fuzzer` — a **metamorphic fuzzer** that applies random
  maintenance sequences (edge inserts/deletes, ontology edits) and asserts
  the incrementally maintained index stays equivalent to a from-scratch
  rebuild, shrinking failing sequences to minimal reproducers.

:mod:`repro.verify.runner` packages the three into the ``repro-bigindex
verify`` CLI subcommand that CI runs on every push.
"""

from repro.verify.auditor import AuditReport, Violation, audit_index
from repro.verify.faults import FaultFinding, FaultReport, run_fault_injection
from repro.verify.fuzzer import FuzzFailure, FuzzReport, fuzz_index, shrink_ops
from repro.verify.oracle import DifferentialOracle, Divergence, OracleReport
from repro.verify.persistcheck import PersistReport, run_persistence_drill
from repro.verify.runner import VerifyReport, run_verification

__all__ = [
    "AuditReport",
    "DifferentialOracle",
    "Divergence",
    "FaultFinding",
    "FaultReport",
    "FuzzFailure",
    "FuzzReport",
    "OracleReport",
    "PersistReport",
    "VerifyReport",
    "Violation",
    "audit_index",
    "fuzz_index",
    "run_fault_injection",
    "run_persistence_drill",
    "run_verification",
    "shrink_ops",
]
