"""Verification campaign runner behind ``repro-bigindex verify``.

Ties the three legs of the harness together over a deterministic corpus
(:func:`~repro.datasets.synthetic.verification_corpus`): for each case it
builds a fresh index, audits the hierarchy invariants (with minimality,
since the build is from scratch), cross-checks every plugged algorithm
against direct evaluation with the differential oracle — both exhaustively
and under a top-k cutoff — fuzzes incremental maintenance against
rebuilds, runs the cache-identity drill (cached == uncached
evaluation, including across incremental maintenance; see
:mod:`repro.verify.cachecheck`), and runs the persistence round-trip
drill (v3/v4 save → load identity, conversion chains, mmap detach; see
:mod:`repro.verify.persistcheck`).  ``--quick`` keeps the corpus and
fuzz budget CI-sized.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.cost import CostParams
from repro.core.index import BiGIndex
from repro.core.sharding import build_sharded
from repro.datasets.synthetic import synthetic_dataset, verification_corpus
from repro.graph.digraph import Graph
from repro.obs.runtime import instrumented
from repro.search.banks import BackwardKeywordSearch
from repro.search.base import KeywordQuery
from repro.search.bidirectional import BidirectionalSearch
from repro.search.blinks import Blinks
from repro.search.rclique import RClique
from repro.verify.auditor import AuditReport, audit_index
from repro.verify.cachecheck import CacheReport, run_cache_drill
from repro.verify.chaoscheck import ChaosReport, run_chaos_drill
from repro.verify.faults import FaultReport, run_fault_injection
from repro.verify.fuzzer import FuzzReport, Op, _random_op, apply_op, fuzz_index
from repro.verify.oracle import DifferentialOracle, OracleReport
from repro.verify.persistcheck import PersistReport, run_persistence_drill
from repro.verify.shardcheck import (
    ShardReport,
    run_plan_sanity,
    run_shard_drill,
)
from repro.verify.servecheck import (
    ServeReport,
    fuzz_serve,
    run_mutation_stream_drill,
    run_serve_drill,
)

#: Distance bound shared by the rooted probe algorithms.
_D_MAX = 3
#: r-clique is exhaustive in the keyword-combination count; keep it small.
_RCLIQUE_RADIUS = 2


@dataclass
class CaseResult:
    """All harness outcomes for one corpus case."""

    name: str
    audit: AuditReport
    oracle: OracleReport
    fuzz: Optional[FuzzReport] = None
    #: Cached==uncached identity drill (see repro.verify.cachecheck).
    cache: Optional[CacheReport] = None
    #: On-disk round-trip identity drill (see repro.verify.persistcheck).
    persist: Optional[PersistReport] = None
    #: Sharded==monolithic scatter-gather drill (repro.verify.shardcheck).
    shard: Optional[ShardReport] = None
    #: Telemetry counters captured while the oracle leg ran (search and
    #: evaluator activity for this case; empty when instrumentation was
    #: unavailable).
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            self.audit.ok
            and self.oracle.ok
            and (self.fuzz is None or self.fuzz.ok)
            and (self.cache is None or self.cache.ok)
            and (self.persist is None or self.persist.ok)
            and (self.shard is None or self.shard.ok)
        )

    def format(self) -> str:
        status = "OK" if self.ok else "FAIL"
        lines = [f"[{status}] {self.name}"]
        for part in (
            self.audit,
            self.oracle,
            self.fuzz,
            self.cache,
            self.persist,
            self.shard,
        ):
            if part is not None:
                lines.append("  " + part.format().replace("\n", "\n  "))
        shown = {
            key: value
            for key, value in sorted(self.counters.items())
            if key.startswith(("search.", "eval.", "spec."))
        }
        if shown:
            rendered = " ".join(f"{k}={v}" for k, v in shown.items())
            lines.append(f"  counters: {rendered}")
        return "\n".join(lines)


@dataclass
class VerifyReport:
    """Outcome of one :func:`run_verification` campaign."""

    quick: bool = True
    seed: int = 0
    cases: List[CaseResult] = field(default_factory=list)
    #: Fault-injection leg (``--faults``); ``None`` when not requested.
    faults: Optional[FaultReport] = None
    #: Serve drill (2s smoke under ``--quick``, full under ``--serve``);
    #: ``None`` when neither ran.
    serve: Optional[ServeReport] = None
    #: Process-level crash-recovery drill (full ``--serve`` only);
    #: ``None`` when it did not run.
    chaos: Optional[ChaosReport] = None
    #: Structural plan sanity over the big locality dataset (full mode
    #: only — building synt-100k belongs to the bench, planning it here
    #: is cheap); ``None`` when it did not run.
    shard_plan: Optional[ShardReport] = None

    @property
    def ok(self) -> bool:
        return (
            all(case.ok for case in self.cases)
            and (self.faults is None or self.faults.ok)
            and (self.serve is None or self.serve.ok)
            and (self.chaos is None or self.chaos.ok)
            and (self.shard_plan is None or self.shard_plan.ok)
        )

    def format(self) -> str:
        mode = "quick" if self.quick else "full"
        lines = [
            f"verification ({mode}, seed {self.seed}): "
            f"{'PASS' if self.ok else 'FAIL'}"
        ]
        lines.extend(case.format() for case in self.cases)
        if self.faults is not None:
            lines.append(self.faults.format())
        if self.serve is not None:
            lines.append(self.serve.format())
        if self.chaos is not None:
            lines.append(self.chaos.format())
        if self.shard_plan is not None:
            lines.append("synt-100k " + self.shard_plan.format())
        return "\n".join(lines)


def probe_queries(graph: Graph, count: int = 4) -> List[KeywordQuery]:
    """Deterministic keyword queries over ``graph``'s most frequent labels.

    Frequent labels make the searches non-trivial (many matches, many
    candidate roots); layers where the generalized keywords collide are
    skipped by the oracle itself, so collisions are exercised too.
    """
    histogram = graph.label_histogram()
    labels = sorted(histogram, key=lambda label: (-histogram[label], label))
    labels = labels[: max(3, min(count, len(labels)))]
    queries = [
        KeywordQuery(pair) for pair in itertools.combinations(labels[:3], 2)
    ]
    if len(labels) >= 3:
        queries.append(KeywordQuery(labels[:3]))
    return queries


def run_verification(
    quick: bool = True,
    seed: int = 0,
    num_layers: int = 2,
    fuzz_sequences: Optional[int] = None,
    ops_per_sequence: Optional[int] = None,
    faults: bool = False,
    serve: bool = False,
) -> VerifyReport:
    """Run the full harness over the deterministic corpus.

    Parameters
    ----------
    quick:
        Use the CI-sized corpus and fuzz budget.
    seed:
        Master seed for corpus generation and fuzzing; any failure report
        quotes it, so re-running with the same seed reproduces exactly.
    num_layers:
        Layers per built index.
    fuzz_sequences / ops_per_sequence:
        Override the fuzz budget (defaults scale with ``quick``).
    faults:
        Also run the fault-injection leg
        (:func:`repro.verify.faults.run_fault_injection`).
    serve:
        Also run the full serve drill (live HTTP server hammered across
        mutation epochs + the serve fuzz leg); ``quick`` always includes
        a smoke-sized pass of both.
    """
    if fuzz_sequences is None:
        fuzz_sequences = 2 if quick else 5
    if ops_per_sequence is None:
        ops_per_sequence = 5 if quick else 10
    report = VerifyReport(quick=quick, seed=seed)
    serve_factory: Optional[Callable[[], BiGIndex]] = None
    serve_queries: List[KeywordQuery] = []
    for case_index, (name, graph, ontology) in enumerate(
        verification_corpus(quick=quick, seed=seed)
    ):
        def build(graph=graph, ontology=ontology) -> BiGIndex:
            # Copy per build: fuzz sequences mutate the base graph.
            return BiGIndex.build(
                graph.copy(share_label_table=True),
                ontology,
                num_layers=num_layers,
                cost_params=CostParams(exact=True),
            )

        if serve_factory is None:
            # Smallest corpus case: the serve drill reuses its factory.
            serve_factory = build
        index = build()
        audit = audit_index(index, expect_minimal=True)

        queries = probe_queries(graph)
        if not serve_queries:
            serve_queries = queries[:2]
        algorithms = [
            BackwardKeywordSearch(d_max=_D_MAX),
            BidirectionalSearch(d_max=_D_MAX),
            Blinks(d_max=_D_MAX),
        ]
        if case_index == 0:
            # Exhaustive in keyword combinations — smallest case only.
            # k=None: full enumeration is the strongest check, and the
            # paper's default k=10 would make tie sets at the cutoff an
            # (uninteresting) source of set differences.
            algorithms.append(RClique(radius=_RCLIQUE_RADIUS, k=None))
        oracle = DifferentialOracle(index)
        # Metrics-only instrumentation: the counters ride along on the
        # case report without perturbing the differential comparison.
        with instrumented(trace=False) as inst:
            oracle_report = oracle.run(algorithms, queries)
            oracle_report.merge(oracle.run(algorithms[:1], queries, k=2))

        fuzz_report: Optional[FuzzReport] = None
        if quick or case_index == 0:
            fuzz_report = fuzz_index(
                build,
                algorithms=algorithms[:1],
                queries=queries[:2],
                sequences=fuzz_sequences,
                ops_per_sequence=ops_per_sequence,
                seed=seed,
            )
        cache_report: Optional[CacheReport] = None
        if quick or case_index == 0:
            # Own index build: the drill mutates its index, and running
            # it last keeps the audit/oracle legs unperturbed.
            cache_report = run_cache_drill(
                build, algorithms[:2], queries
            )
        persist_report: Optional[PersistReport] = None
        if quick or case_index == 0:
            # Own build too: the detach leg mutates the reload.
            persist_report = run_persistence_drill(
                build, algorithms[:1], queries[:2]
            )
        # Scatter-gather == monolithic, including under shard-routed WAL
        # mutations.  Sampled cost params keep the double build (sharded
        # + its monolithic oracle) affordable on the full corpus; both
        # sides share them, so the comparison itself loses nothing.
        drill_kwargs = dict(
            num_layers=num_layers,
            cost_params=CostParams(num_samples=25),
        )
        shard_report = run_shard_drill(
            sharded_factory=lambda g=graph, o=ontology: build_sharded(
                g.copy(share_label_table=True), o, 3, 2 * _D_MAX,
                **drill_kwargs,
            ),
            mono_factory=lambda g=graph, o=ontology: BiGIndex.build(
                g.copy(share_label_table=True), o, **drill_kwargs
            ),
            algorithms=[
                BackwardKeywordSearch(d_max=_D_MAX),
                BidirectionalSearch(d_max=_D_MAX),
            ],
            queries=queries,
            mutation_rounds=2 if quick else 3,
            ops_per_round=3,
            seed=seed + case_index,
        )
        report.cases.append(
            CaseResult(
                name=name,
                audit=audit,
                oracle=oracle_report,
                fuzz=fuzz_report,
                cache=cache_report,
                persist=persist_report,
                shard=shard_report,
                counters=inst.metrics.counters(),
            )
        )
    if faults:
        report.faults = run_fault_injection(
            quick=quick, seed=seed, num_layers=num_layers
        )
    if (quick or serve) and serve_factory is not None and serve_queries:
        # ``--quick`` gets a ~2s smoke; ``--serve`` the full battery.
        report.serve = _run_serve_leg(
            serve_factory,
            serve_queries,
            seed=seed,
            smoke=not serve,
        )
    if serve:
        # Process-level crash recovery: real subprocesses, real SIGKILL.
        report.chaos = run_chaos_drill(seed=seed)
    if not quick:
        # The locality dataset the sharding bench partitions: cheap to
        # generate and plan, so its structural invariants gate here.
        big_graph, _big_ontology = synthetic_dataset("synt-100k", seed=seed)
        report.shard_plan = run_plan_sanity(
            big_graph, num_shards=4, halo_radius=2 * _D_MAX,
            name="synt-100k",
        )
    return report


def _run_serve_leg(
    index_factory: Callable[[], BiGIndex],
    queries: List[KeywordQuery],
    seed: int,
    smoke: bool,
) -> ServeReport:
    """Concurrent drill + serve fuzz leg, sized by ``smoke``."""
    algorithm_factory = lambda: BackwardKeywordSearch(d_max=_D_MAX)  # noqa: E731

    # Deterministic mutation schedule shared by the drill's live run and
    # its per-epoch oracle replay.
    schedule_index = index_factory()
    rng = random.Random(f"serve-drill:{seed}")
    ops: List[Op] = []
    for _ in range(2 if smoke else 6):
        op = _random_op(rng, schedule_index)
        if op is None or op[0] == "drop-ontology":
            continue
        apply_op(schedule_index, op)
        ops.append(op)

    report = run_serve_drill(
        index_factory,
        algorithm_factory,
        queries,
        threads=2 if smoke else 4,
        rounds=2 if smoke else 4,
        ops=ops,
        seed=seed,
    )
    report.merge(
        fuzz_serve(
            index_factory,
            algorithm_factory,
            queries,
            ops_per_sequence=2 if smoke else 6,
            sequences=1 if smoke else 2,
            seed=seed,
        )
    )
    # The copy-on-write acceptance gate: reader p99 must stay flat (and
    # every response byte-identical to its pinned epoch's oracle) while
    # a writer streams the same schedule back-to-back.
    report.merge(
        run_mutation_stream_drill(
            index_factory,
            algorithm_factory,
            queries,
            threads=2 if smoke else 4,
            rounds=2 if smoke else 4,
            ops=ops,
            seed=seed,
        )
    )
    return report
