"""Bisimulation invariant auditor for a built :class:`BiGIndex`.

Every index layer must satisfy the defining equations of Def. 3.1:
``G^i = Bisim(Gen(G^{i-1}, C^i))`` with ``chi`` / ``chi^{-1}`` linking the
layers.  The auditor re-derives each invariant from first principles and
reports every violation it finds:

* **partition** — ``parent_of`` / ``extent`` form an exact inverse pair:
  dense block ids, no empty block, blocks partition the layer below.
* **bisimulation** — the partition satisfies
  :func:`~repro.bisim.refinement.is_bisimulation_partition` on the
  *generalized* lower graph (labels rewritten by ``C^i``).
* **labels** — ``L'([v]) = Gen(L(v), C^i)`` for every member of every
  supernode (well-definedness of the summary labeling).
* **paths** — the summary edge set equals the image of the lower edge set
  under ``chi`` (path preservation, the heart of Lemma 4.1: both that every
  lower edge has an image and that no summary edge is spurious).
* **chi/spec round-trips** — ``chi^m`` composed from per-layer maps agrees
  with :meth:`BiGIndex.chi`; ``spec_to_base`` of all layer-``m`` supernodes
  partitions the base vertex set; ``v in spec_to_base(chi(v, m), m)``.
* **sizes** — the Formula-3 bookkeeping: ``|G^i| = |V^i| + |E^i|`` as
  reported by :meth:`BiGIndex.layer_sizes` and
  :meth:`BiGIndex.total_index_size` matches the graphs themselves.
* **minimality** (opt-in) — each partition equals the *maximal*
  bisimulation of its generalized lower graph.  Holds right after
  :meth:`BiGIndex.build` / :meth:`BiGIndex.rebuild`; incremental updates
  may legitimately leave the partition finer, so the check is gated by
  ``expect_minimal``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.bisim.refinement import is_bisimulation_partition, maximal_bisimulation
from repro.core.generalize import generalize_graph
from repro.core.index import BiGIndex
from repro.utils.errors import BigIndexError

#: Cap on per-check examples quoted in a violation detail string.
_MAX_EXAMPLES = 5


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to the layer that breaks it."""

    layer: int
    check: str
    detail: str

    def __str__(self) -> str:
        return f"[layer {self.layer}] {self.check}: {self.detail}"


@dataclass
class AuditReport:
    """Outcome of one :func:`audit_index` run."""

    checks_run: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, layer: int, check: str, detail: str) -> None:
        self.violations.append(Violation(layer=layer, check=check, detail=detail))

    def format(self) -> str:
        if self.ok:
            return f"audit: OK ({self.checks_run} checks)"
        lines = [
            f"audit: {len(self.violations)} violation(s) "
            f"in {self.checks_run} checks"
        ]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def _examples(items) -> str:
    shown = list(items)[:_MAX_EXAMPLES]
    suffix = ", ..." if len(items) > _MAX_EXAMPLES else ""
    return f"{shown}{suffix}"


def audit_index(index: BiGIndex, expect_minimal: bool = False) -> AuditReport:
    """Check every layer of ``index`` against the Def. 3.1 invariants.

    Parameters
    ----------
    index:
        The hierarchy to audit.
    expect_minimal:
        Also require each layer's partition to be the *maximal*
        bisimulation (true after ``build``/``rebuild``; may be violated —
        legitimately — after incremental updates).
    """
    report = AuditReport()
    lower = index.base_graph
    for i, layer in enumerate(index.layers, start=1):
        generalized = generalize_graph(lower, layer.config)
        _audit_partition(report, i, lower, layer)
        _audit_bisimulation(report, i, generalized, layer, index, expect_minimal)
        _audit_labels(report, i, generalized, layer)
        _audit_paths(report, i, lower, layer)
        lower = layer.graph
    _audit_chi_spec(report, index)
    _audit_sizes(report, index)
    return report


# ----------------------------------------------------------------------
# Per-layer checks
# ----------------------------------------------------------------------
def _audit_partition(report: AuditReport, i: int, lower, layer) -> None:
    report.checks_run += 1
    n = lower.num_vertices
    if len(layer.parent_of) != n:
        report.add(
            i,
            "partition",
            f"parent_of covers {len(layer.parent_of)} vertices, "
            f"layer below has {n}",
        )
        return
    num_blocks = layer.graph.num_vertices
    bad_ids = [s for s in layer.parent_of if not 0 <= s < num_blocks]
    if bad_ids:
        report.add(
            i, "partition", f"parent_of ids out of range: {_examples(bad_ids)}"
        )
        return
    if len(layer.extent) != num_blocks:
        report.add(
            i,
            "partition",
            f"extent has {len(layer.extent)} blocks, summary graph has "
            f"{num_blocks} vertices",
        )
        return
    empty = [s for s, members in enumerate(layer.extent) if not members]
    if empty:
        report.add(i, "partition", f"empty extent blocks: {_examples(empty)}")
    mismatched = [
        v
        for s, members in enumerate(layer.extent)
        for v in members
        if layer.parent_of[v] != s
    ]
    if mismatched:
        report.add(
            i,
            "partition",
            f"extent/parent_of disagree on vertices: {_examples(mismatched)}",
        )
    covered = sum(len(members) for members in layer.extent)
    if covered != n:
        report.add(
            i,
            "partition",
            f"extent covers {covered} vertices, layer below has {n} "
            "(blocks overlap or miss vertices)",
        )


def _audit_bisimulation(
    report: AuditReport, i: int, generalized, layer, index, expect_minimal: bool
) -> None:
    report.checks_run += 1
    if len(layer.parent_of) != generalized.num_vertices:
        return  # already reported by the partition check
    if not is_bisimulation_partition(
        generalized, layer.parent_of, direction=index.direction
    ):
        report.add(
            i,
            "bisimulation",
            "partition violates the bisimulation conditions on "
            "Gen(G^{i-1}, C^i)",
        )
    if expect_minimal:
        report.checks_run += 1
        maximal = maximal_bisimulation(generalized, direction=index.direction)
        if list(layer.parent_of) != maximal:
            finer = len(set(layer.parent_of)) - len(set(maximal))
            report.add(
                i,
                "minimality",
                f"partition is not the maximal bisimulation "
                f"({finer:+d} blocks vs maximal)",
            )


def _audit_labels(report: AuditReport, i: int, generalized, layer) -> None:
    report.checks_run += 1
    bad = []
    for s, members in enumerate(layer.extent):
        expected = layer.graph.labels[s] if s < layer.graph.num_vertices else None
        for v in members:
            if generalized.labels[v] != expected:
                bad.append((s, v))
    if bad:
        report.add(
            i,
            "labels",
            f"supernode label differs from member's generalized label: "
            f"{_examples(bad)}",
        )


def _audit_paths(report: AuditReport, i: int, lower, layer) -> None:
    report.checks_run += 1
    parent = layer.parent_of
    if len(parent) != lower.num_vertices:
        return
    image = {(parent[u], parent[v]) for u, v in lower.edges()}
    summary_edges = set(layer.graph.edges())
    missing = image - summary_edges
    spurious = summary_edges - image
    if missing:
        report.add(
            i,
            "paths",
            f"lower edges with no summary image: {_examples(sorted(missing))}",
        )
    if spurious:
        report.add(
            i,
            "paths",
            f"summary edges with no witness below: "
            f"{_examples(sorted(spurious))}",
        )


# ----------------------------------------------------------------------
# Cross-layer checks
# ----------------------------------------------------------------------
def _safe_chi(index: BiGIndex, vertex: int, m: int):
    """``chi`` that survives corrupted per-layer maps (audits must report,
    not crash)."""
    try:
        return index.chi(vertex, m)
    except (IndexError, BigIndexError):
        return None


def _audit_chi_spec(report: AuditReport, index: BiGIndex) -> None:
    base_vertices = set(index.base_graph.vertices())
    for m in range(1, index.num_layers + 1):
        report.checks_run += 1
        seen = {}
        overlaps = []
        for s in index.layer_graph(m).vertices():
            try:
                members = index.spec_to_base(s, m)
            except (IndexError, BigIndexError):
                report.add(
                    m, "spec", f"spec_to_base({s}, {m}) raised on a corrupted map"
                )
                continue
            for v in members:
                if v in seen:
                    overlaps.append((v, seen[v], s))
                seen[v] = s
        if overlaps:
            report.add(
                m,
                "spec",
                f"spec_to_base blocks overlap on base vertices: "
                f"{_examples(overlaps)}",
            )
        uncovered = base_vertices - set(seen)
        if uncovered:
            report.add(
                m,
                "spec",
                f"spec_to_base misses base vertices: "
                f"{_examples(sorted(uncovered))}",
            )
        report.checks_run += 1
        bad_roundtrip = [
            v for v, s in seen.items() if _safe_chi(index, v, m) != s
        ]
        if bad_roundtrip:
            report.add(
                m,
                "chi",
                f"chi(v, m) disagrees with spec_to_base membership for: "
                f"{_examples(sorted(bad_roundtrip))}",
            )
        # spec_vertex must be the single-step slice of spec_to_base.
        report.checks_run += 1
        bad_step = []
        for s in index.layer_graph(m).vertices():
            one_step = set(index.spec_vertex(s, m))
            expected = set(index.layers[m - 1].extent[s])
            if one_step != expected:
                bad_step.append(s)
        if bad_step:
            report.add(
                m,
                "spec",
                f"spec_vertex disagrees with extent for supernodes: "
                f"{_examples(bad_step)}",
            )


def _audit_sizes(report: AuditReport, index: BiGIndex) -> None:
    """Formula-3 size accounting, recomputed independently of ``Graph.size``.

    ``|G^i| = |V^i| + |E^i|`` with ``|V^i|`` taken from the partition
    (number of extent blocks) and ``|E^i|`` from an actual edge scan, so a
    corrupted edge counter or a partition/graph mismatch is caught here.
    """
    report.checks_run += 1
    expected = [
        index.base_graph.num_vertices
        + sum(1 for _ in index.base_graph.edges())
    ]
    for layer in index.layers:
        expected.append(len(layer.extent) + sum(1 for _ in layer.graph.edges()))
    reported = index.layer_sizes()
    if reported != expected:
        report.add(
            0,
            "sizes",
            f"layer_sizes() = {reported} but partition + edge-scan "
            f"recomputation gives {expected}",
        )
    report.checks_run += 1
    total = sum(expected[1:])
    if index.total_index_size() != total:
        report.add(
            0,
            "sizes",
            f"total_index_size() = {index.total_index_size()} but layer sum "
            f"is {total}",
        )
