"""Shard drill: scatter-gather answers identical to monolithic evaluation.

The sharded BiG-index claims *exactness*: for rooted algorithms, the
merged scatter-gather top-k over shards + portal zone equals monolithic
evaluation over the whole graph, answer for answer — scores, roots,
keyword assignments, vertices and edges — and keeps being equal while
mutations stream in.  This drill checks the claim the same way the
cache and persistence drills check theirs: build both sides from the
same graph, compare outcome tuples on every probe query, then
interleave fuzzer-style mutations routed as WAL ops (insert / delete /
drop-ontology dicts through :func:`repro.core.wal.apply_wal_op`, which
the sharded facade routes to the owning shard or zone) and recompare
after every round.

Byte-identity is asserted for the exhaustive-enumeration algorithms
(bkws, bdws).  Blinks is deliberately not in the drill's default set:
it confirms only the first ``k`` roots its cursors surface, so among
equal-scored answers the *monolithic* tie set is already
enumeration-order dependent and only the score sequence is canonical
(see ``tests/test_sharding.py`` for the ranking-level check it does
get).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.evaluator import HierarchicalEvaluator
from repro.core.index import BiGIndex
from repro.core.sharding import ShardedEvaluator, ShardedIndex, plan_shards
from repro.core.wal import apply_wal_op
from repro.graph.digraph import Graph
from repro.search.base import KeywordQuery, KeywordSearchAlgorithm
from repro.utils.errors import BigIndexError
from repro.verify.fuzzer import Op, _random_op


@dataclass
class ShardReport:
    """Outcome of one shard drill."""

    checks: int = 0
    rounds: int = 0
    ops_applied: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def merge(self, other: "ShardReport") -> None:
        self.checks += other.checks
        self.rounds += other.rounds
        self.ops_applied += other.ops_applied
        self.mismatches.extend(other.mismatches)

    def format(self) -> str:
        status = "OK" if self.ok else "FAIL"
        lines = [
            f"shard drill: {status} ({self.checks} comparisons, "
            f"{self.rounds} mutation rounds, {self.ops_applied} ops)"
        ]
        lines.extend(f"  MISMATCH {m}" for m in self.mismatches[:10])
        if len(self.mismatches) > 10:
            lines.append(f"  ... and {len(self.mismatches) - 10} more")
        return "\n".join(lines)


def _outcome(evaluator, query: KeywordQuery):
    """Comparable evaluation outcome: answers or the error identity.

    ``layer`` is deliberately not compared — each locale's cost model
    picks its own navigation layer, and layer choice is a performance
    property, not part of the answer contract.
    """
    try:
        result = evaluator.evaluate(query, layer=None)
    except BigIndexError as exc:
        return ("error", type(exc).__name__, str(exc))
    return (
        "ok",
        tuple(
            (a.score, a.signature(), a.vertices, a.edges)
            for a in result.answers
        ),
    )


def _op_to_wal(op: Op) -> dict:
    kind = op[0]
    if kind in ("insert", "delete"):
        return {"op": kind, "u": op[1], "v": op[2]}
    return {"op": "drop-ontology", "subtype": op[1], "supertype": op[2]}


def _compare_all(
    sharded_eval: Sequence[Tuple[str, object]],
    mono_eval: Sequence[Tuple[str, object]],
    queries: Sequence[KeywordQuery],
    report: ShardReport,
    stage: str,
) -> None:
    for (name, se), (_name, he) in zip(sharded_eval, mono_eval):
        for query in queries:
            report.checks += 1
            ours = _outcome(se, query)
            theirs = _outcome(he, query)
            if ours != theirs:
                report.mismatches.append(
                    f"[{stage}] {name} {list(query.keywords)}: "
                    f"sharded={ours!r:.200} monolithic={theirs!r:.200}"
                )


def run_shard_drill(
    sharded_factory: Callable[[], ShardedIndex],
    mono_factory: Callable[[], BiGIndex],
    algorithms: Sequence[KeywordSearchAlgorithm],
    queries: Sequence[KeywordQuery],
    mutation_rounds: int = 2,
    ops_per_round: int = 3,
    seed: int = 0,
) -> ShardReport:
    """Compare scatter-gather to monolithic, then mutate and recompare.

    Both sides are built fresh from their factories (they must describe
    the same graph/ontology/build parameters).  Each mutation round
    draws fuzzer ops against the monolithic index, converts them to WAL
    records, and applies the *same records* to both sides through
    :func:`apply_wal_op` — on the sharded side that exercises the
    facade's shard routing (intra-shard updates, cut-table maintenance,
    zone refresh) exactly the way WAL replay and ``/admin/mutate`` do.
    """
    report = ShardReport()
    sharded = sharded_factory()
    mono = mono_factory()
    sharded_eval = [
        (a.name, ShardedEvaluator(sharded, a)) for a in algorithms
    ]
    mono_eval = [
        (a.name, HierarchicalEvaluator(mono, a, allow_layer_zero=True))
        for a in algorithms
    ]
    _compare_all(sharded_eval, mono_eval, queries, report, "initial")

    rng = random.Random(f"shard-drill:{seed}")
    for round_index in range(mutation_rounds):
        report.rounds += 1
        for _ in range(ops_per_round):
            op = _random_op(rng, mono)
            if op is None:
                continue
            record = _op_to_wal(op)
            apply_wal_op(mono, record)
            apply_wal_op(sharded, record)
            report.ops_applied += 1
        if sorted(sharded.base_graph.edges()) != sorted(mono.base_graph.edges()):
            report.mismatches.append(
                f"[round {round_index}] base graphs diverged after WAL ops"
            )
            break
        # Evaluators cache per epoch; fresh ones keep the comparison
        # about the indexes, not the caches (cachecheck owns that).
        sharded_eval = [
            (a.name, ShardedEvaluator(sharded, a)) for a in algorithms
        ]
        mono_eval = [
            (a.name, HierarchicalEvaluator(mono, a, allow_layer_zero=True))
            for a in algorithms
        ]
        _compare_all(
            sharded_eval, mono_eval, queries, report, f"round {round_index}"
        )
    return report


def run_plan_sanity(
    graph: Graph,
    num_shards: int,
    halo_radius: int = 6,
    name: str = "plan",
) -> ShardReport:
    """Structural invariants of a shard plan, no index builds.

    This is how the big locality datasets (``synt-100k``) ride in the
    verify corpus: planning them is cheap, building them belongs to the
    bench and the CI shard-smoke job.
    """
    report = ShardReport()
    plan = plan_shards(graph, num_shards, halo_radius)

    def check(condition: bool, message: str) -> None:
        report.checks += 1
        if not condition:
            report.mismatches.append(f"[{name}] {message}")

    covered = sorted(v for vs in plan.shard_vertices for v in vs)
    check(
        covered == list(range(graph.num_vertices)),
        "shards do not cover every vertex exactly once",
    )
    cut = set(plan.cut_edges)
    check(
        all(
            ((u, v) in cut) == (plan.shard_of[u] != plan.shard_of[v])
            for u, v in graph.edges()
        ),
        "cut table is not exactly the cross-shard edges",
    )
    check(
        plan.portals == sorted({v for e in plan.cut_edges for v in e}),
        "portals are not exactly the cut-edge endpoints",
    )
    check(
        set(plan.portals) <= set(plan.zone_vertices)
        if plan.portals
        else plan.zone_vertices == [],
        "zone does not contain the portals",
    )
    again = plan_shards(graph, num_shards, halo_radius)
    check(again == plan, "plan is not deterministic")
    return report
