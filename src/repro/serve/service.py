"""Transport-independent request handling for ``repro-bigindex serve``.

The service owns the JSON wire contract (documented in
``docs/SERVING.md``) and is deliberately separable from HTTP: handlers
take ``(body bytes, headers mapping)`` and return
``(status, payload dict, extra headers)``, so the tests, the verify
drill and the bench harness can exercise the exact serving path either
in-process or over a real socket.

Status mapping — the HTTP face of the existing CLI contract:

========  ============================================================
200       complete result (CLI exit 0)
200       ``/batch`` envelope (per-query statuses ride inside)
400       malformed body, bad budget headers, query errors (CLI exit 2)
403       admin endpoint while admin is disabled
404/405   unknown path / wrong method
429       executed but *degraded* — partial-result JSON with the proven
          prefix and ``lower_bound`` (CLI exit 3)
503       shed by admission control before execution, ``Retry-After``
500       unexpected server fault (the CI smoke asserts none happen)
========  ============================================================

Budget headers (both optional, server defaults apply when absent):

* ``X-Budget-Timeout`` — wall-clock seconds (float).  ``0`` is legal
  and degrades immediately; negative/NaN values are a 400; ``inf``
  means "no deadline".
* ``X-Budget-Expansions`` — node-expansion cap (int).  ``0`` is legal;
  negative or non-integer values are a 400; values above the server's
  per-request ceiling are clamped to it.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.evaluator import DegradedResult, EvalResult
from repro.core.index import BiGIndex
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import render_prometheus
from repro.obs.reqlog import (
    RequestLog,
    SloWindow,
    mint_request_id,
    outcome_for_status,
    valid_request_id,
)
from repro.obs.runtime import OBS
from repro.search.base import Answer, KeywordQuery
from repro.serve.admission import AdmissionController, ShedError
from repro.serve.lifecycle import EngineRuntime
from repro.utils.budget import Budget
from repro.utils.errors import BigIndexError, QueryError
from repro.utils.timers import monotonic_now

#: ``(status code, payload, extra response headers)``.  The payload is a
#: JSON-serializable dict for every route except a content-negotiated
#: ``GET /metrics``, which returns pre-rendered Prometheus text as a
#: ``str`` (the transport sends it verbatim with the Content-Type the
#: extra headers carry).
Response = Tuple[int, Union[Dict[str, object], str], Dict[str, str]]


class BadRequest(Exception):
    """A 400: malformed body or budget headers."""


@dataclass
class ServerConfig:
    """Operator knobs for one serving process."""

    #: Default wall-clock deadline per request (seconds); ``None`` = no
    #: deadline unless the request asks for one.
    default_timeout: Optional[float] = None
    #: Default node-expansion cap per request; ``None`` = unbounded
    #: unless the request asks for a cap.
    default_max_expansions: Optional[int] = None
    #: Hard per-request expansion ceiling; request caps above it are
    #: clamped (never rejected) so one client cannot out-reserve the
    #: whole server.
    max_request_expansions: Optional[int] = None
    #: Admission: concurrent request cap (``None`` = unlimited).
    max_inflight_requests: Optional[int] = None
    #: Admission: in-flight expansion reservation cap (``None`` = off).
    max_inflight_expansions: Optional[int] = None
    #: ``Retry-After`` seconds suggested on a 503.
    retry_after_seconds: float = 1.0
    #: Default top-k when a request does not send ``k``.
    default_k: Optional[int] = 10
    #: Cap on ``/batch`` workload size (a 400 beyond it).
    max_batch_queries: int = 256
    #: Enable ``/admin/mutate`` and ``/admin/reload``.
    enable_admin: bool = False
    #: Requests at/above this wall-clock latency (milliseconds) are
    #: counted in ``log.slow_queries``, flagged ``slow`` in the access
    #: log, and mirrored to the slow-query log.  ``None`` disables.
    slow_query_ms: Optional[float] = None
    #: Flight-recorder ring capacity (last-N request records, dumpable
    #: via ``GET /admin/flight`` and ``SIGUSR2``).  ``0`` disables.
    flight_records: int = 256
    #: Rolling SLO window width for per-endpoint latency quantiles and
    #: error/shed rates (``/healthz`` ``slo`` section, ``slo.*``
    #: gauges).  ``0`` disables.
    slo_window_seconds: float = 60.0

    def effective_cap(self, requested: Optional[int]) -> Optional[int]:
        """The expansion cap actually applied for a request."""
        cap = requested if requested is not None else self.default_max_expansions
        if cap is not None and self.max_request_expansions is not None:
            cap = min(cap, self.max_request_expansions)
        return cap

    def reservation_for(self, cap: Optional[int]) -> int:
        """Expansions to reserve against the in-flight ledger.

        Bounded requests reserve their cap.  Unbounded requests reserve
        the per-request ceiling (or, failing that, the whole in-flight
        cap): the ledger is pessimistic, so work without a declared
        bound is accounted at the worst case the server allows.
        """
        if cap is not None:
            return cap
        if self.max_request_expansions is not None:
            return self.max_request_expansions
        if self.max_inflight_expansions is not None:
            return self.max_inflight_expansions
        return 0


# ----------------------------------------------------------------------
# JSON encoding of evaluation outcomes
# ----------------------------------------------------------------------
def encode_answer(answer: Answer) -> Dict[str, object]:
    return {
        "score": answer.score,
        "root": answer.root,
        "keyword_nodes": {kw: v for kw, v in answer.keyword_nodes},
        "vertices": list(answer.vertices),
        "edges": [list(edge) for edge in answer.edges],
    }


def encode_result(result: object) -> Dict[str, object]:
    """The response body for one evaluation outcome.

    Accepts an :class:`EvalResult`, a :class:`DegradedResult`, or an
    exception (``/batch`` uses ``return_exceptions``); the ``status``
    field discriminates.
    """
    if isinstance(result, Exception):
        return {
            "status": "error",
            "error": str(result),
            "error_type": type(result).__name__,
        }
    if isinstance(result, DegradedResult):
        payload: Dict[str, object] = {
            "status": "degraded",
            "reason": result.reason,
            "lower_bound": result.lower_bound,
            "layer": result.layer,
            "answers": [encode_answer(a) for a in result.answers],
            "unranked": [encode_answer(a) for a in result.unranked],
            "attempts": [
                {
                    "layer": a.layer,
                    "reason": a.reason,
                    "expansions": a.expansions,
                    "proven": a.proven,
                    "unproven": a.unproven,
                }
                for a in result.attempts
            ],
        }
        if result.stats is not None:
            payload["stats"] = {
                "expansions_consumed": result.stats.expansions_consumed,
                "expansions_remaining": result.stats.expansions_remaining,
                "time_remaining_seconds": result.stats.time_remaining_seconds,
                "layers_attempted": list(result.stats.layers_attempted),
            }
        return payload
    assert isinstance(result, EvalResult)
    return {
        "status": "ok",
        "layer": result.layer,
        "answers": [encode_answer(a) for a in result.answers],
        "num_generalized": result.num_generalized,
        "num_candidates": result.num_candidates,
        "num_verified": result.num_verified,
    }


#: Response fields that vary run-to-run (timings, budget remainders).
#: The verify drill and the serve fuzzer strip them before comparing a
#: concurrent response byte-for-byte against single-threaded evaluation.
VOLATILE_FIELDS = ("seconds", "stats", "attempts", "serial", "qps")


def canonical_payload(payload: Mapping[str, object]) -> Dict[str, object]:
    """A deterministic view of a response body for identity checks.

    Strips :data:`VOLATILE_FIELDS` recursively so nested structures (the
    per-query entries of a ``/batch`` envelope) canonicalize too.
    """

    def strip(value: object) -> object:
        if isinstance(value, Mapping):
            return {
                key: strip(inner)
                for key, inner in value.items()
                if key not in VOLATILE_FIELDS
            }
        if isinstance(value, (list, tuple)):
            return [strip(item) for item in value]
        return value

    return strip(payload)  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Header / body parsing
# ----------------------------------------------------------------------
def _parse_timeout(raw: str) -> Optional[float]:
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise BadRequest(f"X-Budget-Timeout: not a number: {raw!r}")
    if math.isnan(value):
        raise BadRequest("X-Budget-Timeout: NaN is not a deadline")
    if value < 0:
        raise BadRequest(f"X-Budget-Timeout: must be >= 0, got {raw!r}")
    if math.isinf(value):
        return None  # no deadline at all
    return value

def _parse_expansions(raw: str) -> int:
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise BadRequest(f"X-Budget-Expansions: not an integer: {raw!r}")
    if value < 0:
        raise BadRequest(f"X-Budget-Expansions: must be >= 0, got {raw!r}")
    return value


def parse_budget_headers(
    headers: Mapping[str, str], config: ServerConfig
) -> Tuple[Optional[float], Optional[int]]:
    """``(deadline seconds, expansion cap)`` for one request.

    Header values override the config defaults; the expansion cap is
    clamped to the per-request ceiling.  Malformed values raise
    :class:`BadRequest` (the edge cases — zero, negative, overflow, NaN
    — are pinned by the contract tests).
    """
    lowered = {str(k).lower(): v for k, v in headers.items()}
    timeout = config.default_timeout
    if "x-budget-timeout" in lowered:
        timeout = _parse_timeout(lowered["x-budget-timeout"])
    requested: Optional[int] = None
    if "x-budget-expansions" in lowered:
        requested = _parse_expansions(lowered["x-budget-expansions"])
    return timeout, config.effective_cap(requested)


def _parse_json(body: bytes) -> Dict[str, object]:
    if not body:
        raise BadRequest("empty request body (expected a JSON object)")
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"invalid JSON body: {exc}")
    if not isinstance(data, dict):
        raise BadRequest("request body must be a JSON object")
    return data


def _parse_keywords(value: object, what: str = "keywords") -> KeywordQuery:
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(kw, str) for kw in value)
    ):
        raise BadRequest(f"{what} must be a non-empty list of strings")
    try:
        return KeywordQuery(value)
    except QueryError as exc:
        raise BadRequest(f"{what}: {exc}")


def _parse_optional_int(data: Mapping[str, object], key: str) -> Optional[int]:
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{key} must be an integer")
    return value


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class QueryService:
    """The app layer: routes decoded requests through the runtime.

    Parameters
    ----------
    runtime:
        Snapshot/locking engine over the live index.
    config:
        Serving knobs; defaults are wide open (no caps, admin off).
    loader:
        Zero-argument callable returning a fresh :class:`BiGIndex` for
        ``/admin/reload``; without one the endpoint answers 400.
    metrics:
        Registry backing ``/metrics`` and the ``serve.*`` counters; the
        service always records into it directly (independent of the
        process-wide ``OBS`` switch, which additionally routes evaluator
        and cache telemetry here when the CLI enables it).
    access_log / slow_log:
        Optional :class:`~repro.obs.reqlog.RequestLog` sinks.  Every
        request writes one access record; requests at/above
        ``config.slow_query_ms`` are additionally mirrored to
        ``slow_log``.  The service does not own either log's lifetime
        (the CLI closes them on shutdown).
    """

    def __init__(
        self,
        runtime: EngineRuntime,
        config: Optional[ServerConfig] = None,
        loader: Optional[Callable[[], BiGIndex]] = None,
        metrics: Optional[MetricsRegistry] = None,
        access_log: Optional[RequestLog] = None,
        slow_log: Optional[RequestLog] = None,
    ) -> None:
        self.runtime = runtime
        self.config = config or ServerConfig()
        self.loader = loader
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.access_log = access_log
        self.slow_log = slow_log
        self.flight = FlightRecorder(self.config.flight_records)
        self.slo = (
            SloWindow(self.config.slo_window_seconds)
            if self.config.slo_window_seconds > 0
            else None
        )
        # Runtime counters (snapshot.retired, snapshot.published) land in
        # this registry even when the process-wide OBS switch is off, so
        # /healthz and /metrics always see COW accounting.
        if runtime.metrics is None:
            runtime.metrics = self.metrics
        self.admission = AdmissionController(
            max_inflight_requests=self.config.max_inflight_requests,
            max_inflight_expansions=self.config.max_inflight_expansions,
            metrics=self.metrics,
        )
        self._started = monotonic_now()
        self._draining = threading.Event()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, body: bytes, headers: Mapping[str, str]
    ) -> Response:
        """Route one request; never raises (faults become a 500).

        Correlation: a well-formed client ``X-Request-Id`` is adopted,
        anything else gets a minted one; the ID rides on the response
        headers, the access-log line, the flight-recorder slot, and —
        when tracing is on — the request span.
        """
        started = monotonic_now()
        request_id = self._request_id(headers)
        route = (method.upper(), path.rstrip("/") or "/")
        if OBS.enabled:
            with OBS.tracer.span(
                "serve.request",
                request_id=request_id,
                method=route[0],
                path=route[1],
            ):
                response = self._dispatch(route, method, path, body, headers)
        else:
            response = self._dispatch(route, method, path, body, headers)
        status, payload, extra = response
        extra = dict(extra)
        extra.setdefault("X-Request-Id", request_id)
        latency = monotonic_now() - started
        self.metrics.inc("serve.requests")
        self.metrics.inc(f"serve.responses.{status}")
        self.metrics.observe("serve.latency_seconds", latency)
        self._observe_request(request_id, route, status, payload, latency)
        return status, payload, extra

    def _dispatch(
        self,
        route: Tuple[str, str],
        method: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str],
    ) -> Response:
        try:
            if self._draining.is_set() and route[1] not in (
                "/healthz", "/metrics"
            ):
                # Graceful shutdown: stop admitting work, keep answering
                # introspection so orchestrators see the drain progress.
                self.metrics.inc("serve.drained_rejects")
                raise ShedError("draining")
            if route == ("POST", "/query"):
                response = self.handle_query(body, headers)
            elif route == ("POST", "/batch"):
                response = self.handle_batch(body, headers)
            elif route == ("GET", "/healthz"):
                response = self.handle_healthz()
            elif route == ("GET", "/metrics"):
                response = self.handle_metrics(headers)
            elif route == ("POST", "/admin/mutate"):
                response = self.handle_mutate(body)
            elif route == ("POST", "/admin/reload"):
                response = self.handle_reload()
            elif route == ("GET", "/admin/digest"):
                response = self.handle_digest()
            elif route == ("GET", "/admin/flight"):
                response = self.handle_flight()
            elif route[1] in (
                "/query", "/batch", "/healthz", "/metrics",
                "/admin/mutate", "/admin/reload", "/admin/digest",
                "/admin/flight",
            ):
                response = (
                    405,
                    {"status": "error", "error": f"method {method} not allowed"},
                    {},
                )
            else:
                response = (
                    404,
                    {"status": "error", "error": f"unknown path {path!r}"},
                    {},
                )
        except BadRequest as exc:
            response = (400, {"status": "error", "error": str(exc)}, {})
        except ShedError as exc:
            response = (
                503,
                {
                    "status": "shed",
                    "reason": exc.reason,
                    "retry_after": self.config.retry_after_seconds,
                },
                {"Retry-After": f"{self.config.retry_after_seconds:g}"},
            )
        except Exception as exc:  # noqa: BLE001 - serving boundary
            self.metrics.inc("serve.faults")
            response = (
                500,
                {
                    "status": "error",
                    "error": f"internal error: {exc}",
                    "error_type": type(exc).__name__,
                },
                {},
            )
        return response

    # ------------------------------------------------------------------
    # Request observability (correlation, flight, SLO, access log)
    # ------------------------------------------------------------------
    def _request_id(self, headers: Mapping[str, str]) -> str:
        for key, value in headers.items():
            if str(key).lower() == "x-request-id":
                supplied = valid_request_id(value)
                if supplied is not None:
                    self.metrics.inc("req.received")
                    return supplied
                break
        self.metrics.inc("req.minted")
        return mint_request_id()

    @staticmethod
    def _payload_digest(payload: object) -> Optional[str]:
        """A short fingerprint of the *canonical* response body.

        Two responses with the same digest carried byte-identical
        deterministic content (volatile timing fields stripped) — the
        hook the chaos drill's flight timeline diffs on.
        """
        if not isinstance(payload, Mapping):
            return None
        data = json.dumps(
            canonical_payload(payload), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha1(data.encode("utf-8")).hexdigest()[:12]

    def _observe_request(
        self,
        request_id: str,
        route: Tuple[str, str],
        status: int,
        payload: object,
        latency: float,
    ) -> None:
        endpoint = route[1]
        outcome = outcome_for_status(status)
        if self.slo is not None:
            self.slo.observe(endpoint, latency, status)
        epoch = serial = None
        if isinstance(payload, Mapping):
            epoch = payload.get("epoch")
            serial = payload.get("serial")
        latency_ms = round(latency * 1000.0, 3)
        slow = (
            self.config.slow_query_ms is not None
            and latency_ms >= self.config.slow_query_ms
        )
        if slow:
            self.metrics.inc("log.slow_queries")
        if self.flight.enabled:
            entry: Dict[str, object] = {
                "request_id": request_id,
                "method": route[0],
                "path": endpoint,
                "status": status,
                "outcome": outcome,
                "latency_ms": latency_ms,
                "epoch": epoch,
                "serial": serial,
            }
            if endpoint.startswith("/admin/"):
                # Canonical-body digests are what the chaos drill's
                # flight-vs-WAL diff keys on, but hashing every query
                # response would tax the hot path — admin traffic only.
                entry["digest"] = self._payload_digest(payload)
            if endpoint == "/admin/mutate" and isinstance(payload, Mapping):
                for key in ("op", "u", "v", "applied"):
                    if key in payload:
                        entry[key] = payload[key]
            self.flight.record(entry)
        if self.access_log is not None:
            record: Dict[str, object] = {
                "ts": time.time(),
                "request_id": request_id,
                "method": route[0],
                "path": endpoint,
                "status": status,
                "outcome": outcome,
                "latency_ms": latency_ms,
                "epoch": epoch,
                "serial": serial,
                "slow": slow,
            }
            self.access_log.write(record)
            if slow and self.slow_log is not None:
                self.slow_log.write(record)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def handle_query(
        self, body: bytes, headers: Mapping[str, str]
    ) -> Response:
        self.metrics.inc("serve.requests.query")
        data = _parse_json(body)
        query = _parse_keywords(data.get("keywords"))
        layer = _parse_optional_int(data, "layer")
        k = (
            _parse_optional_int(data, "k")
            if "k" in data
            else self.config.default_k
        )
        max_generalized = _parse_optional_int(data, "max_generalized")
        timeout, cap = parse_budget_headers(headers, self.config)
        reserve = self.config.reservation_for(cap)
        with self.admission.admit(reserve):
            with self.runtime.pin() as snapshot:
                started = monotonic_now()
                budget = (
                    Budget(deadline=timeout, max_expansions=cap)
                    if timeout is not None or cap is not None
                    else None
                )
                try:
                    result = snapshot.evaluator.evaluate_resilient(
                        query,
                        budget=budget,
                        layer=layer,
                        k=k,
                        max_generalized=max_generalized,
                    )
                except (QueryError, BigIndexError) as exc:
                    raise BadRequest(str(exc))
                payload = encode_result(result)
                payload["epoch"] = list(snapshot.epoch)
                payload["serial"] = snapshot.serial
                payload["seconds"] = monotonic_now() - started
        if payload["status"] == "degraded":
            self.metrics.inc("serve.degraded")
            return 429, payload, {}
        return 200, payload, {}

    def handle_batch(
        self, body: bytes, headers: Mapping[str, str]
    ) -> Response:
        self.metrics.inc("serve.requests.batch")
        data = _parse_json(body)
        raw_queries = data.get("queries")
        if not isinstance(raw_queries, list) or not raw_queries:
            raise BadRequest("queries must be a non-empty list")
        if len(raw_queries) > self.config.max_batch_queries:
            raise BadRequest(
                f"batch of {len(raw_queries)} exceeds the server cap of "
                f"{self.config.max_batch_queries}"
            )
        queries = [
            _parse_keywords(entry, what=f"queries[{i}]")
            for i, entry in enumerate(raw_queries)
        ]
        layer = _parse_optional_int(data, "layer")
        k = (
            _parse_optional_int(data, "k")
            if "k" in data
            else self.config.default_k
        )
        timeout, cap = parse_budget_headers(headers, self.config)
        # Budgets are stateful ledgers: one fresh ledger per query, with
        # the whole workload's worst case reserved up front.
        budget_factory = None
        if timeout is not None or cap is not None:
            def budget_factory() -> Budget:
                return Budget(deadline=timeout, max_expansions=cap)
        reserve = self.config.reservation_for(cap) * len(queries)
        with self.admission.admit(reserve):
            with self.runtime.pin() as snapshot:
                started = monotonic_now()
                outcomes = snapshot.evaluator.evaluate_many(
                    queries,
                    layer=layer,
                    k=k,
                    budget_factory=budget_factory,
                    resilient=True,
                    return_exceptions=True,
                )
                elapsed = monotonic_now() - started
                results = []
                for query, outcome in zip(queries, outcomes):
                    encoded = encode_result(outcome)
                    encoded["keywords"] = list(query.keywords)
                    results.append(encoded)
                counts = {"ok": 0, "degraded": 0, "error": 0}
                for encoded in results:
                    counts[str(encoded["status"])] += 1
                self.metrics.inc("serve.degraded", counts["degraded"])
                payload: Dict[str, object] = {
                    "status": "ok",
                    "count": len(results),
                    "ok": counts["ok"],
                    "degraded": counts["degraded"],
                    "errors": counts["error"],
                    "results": results,
                    "epoch": list(snapshot.epoch),
                    "serial": snapshot.serial,
                    "seconds": elapsed,
                }
                if elapsed > 0:
                    payload["qps"] = len(results) / elapsed
        return 200, payload, {}

    #: Counter names (exact or prefix) one ``/healthz`` probe surfaces so
    #: COW, persistence, and WAL health need no ``/metrics`` spelunking.
    _HEALTH_COUNTERS = ("snapshot.retired", "snapshot.published",
                        "persist.mmap.detaches")
    _HEALTH_COUNTER_PREFIXES = ("wal.",)

    def _cache_health(self, counters: Mapping[str, int]) -> Dict[str, object]:
        """Aggregate and per-kind cache hit rates from the counters."""
        hits = counters.get("cache.hit", 0)
        misses = counters.get("cache.miss", 0)
        lookups = hits + misses
        health: Dict[str, object] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
        }
        kinds: Dict[str, object] = {}
        for name, value in counters.items():
            if name.startswith("cache.hit."):
                kind = name[len("cache.hit."):]
                kind_hits = value
                kind_misses = counters.get(f"cache.miss.{kind}", 0)
                total = kind_hits + kind_misses
                kinds[kind] = (kind_hits / total) if total else None
        if kinds:
            health["hit_rate_by_kind"] = kinds
        return health

    def handle_healthz(self) -> Response:
        snapshot = self.runtime.current
        stats = self.runtime.stats
        counters = self.metrics.counters()
        surfaced = {
            name: value for name, value in counters.items()
            if name in self._HEALTH_COUNTERS
            or name.startswith(self._HEALTH_COUNTER_PREFIXES)
        }
        payload: Dict[str, object] = {
            "status": "ok",
            "epoch": list(snapshot.epoch),
            "serial": snapshot.serial,
            "layers": snapshot.index.num_layers,
            "layer_sizes": snapshot.index.layer_sizes(),
            "storage": snapshot.storage_kind,
            "inflight": self.admission.inflight,
            "reserved_expansions": self.admission.reserved_expansions,
            "mutations": stats.mutations,
            "reloads": stats.reloads,
            "retired_snapshots": stats.retired,
            "pinned_snapshots": self.runtime.pinned_snapshots(),
            "draining": self._draining.is_set(),
            "uptime_seconds": monotonic_now() - self._started,
            "counters": surfaced,
            "cache": self._cache_health(counters),
        }
        if self.runtime.wal is not None:
            payload["wal_records"] = self.runtime.wal.record_count
        if self.slo is not None:
            payload["slo"] = self.slo.publish_gauges(self.metrics)
        return 200, payload, {}

    def handle_metrics(
        self, headers: Optional[Mapping[str, str]] = None
    ) -> Response:
        """The registry snapshot — JSON by default, Prometheus text when
        the request asks for it (``Accept: text/plain`` or an
        OpenMetrics type).  The JSON shape is unchanged for existing
        consumers; negotiation is purely additive."""
        if self.slo is not None:
            self.slo.publish_gauges(self.metrics)
        # Log/flight volume is published at scrape time instead of being
        # counted per request: the sources already track their own
        # totals, and two extra locked increments per request would tax
        # the <=2% observability budget for nothing.
        if self.access_log is not None:
            self.metrics.gauge("log.access_lines", self.access_log.lines)
            self.metrics.gauge("log.rotations", self.access_log.rotations)
        if self.slow_log is not None:
            self.metrics.gauge("log.slow_lines", self.slow_log.lines)
        if self.flight.enabled:
            self.metrics.gauge("flight.records", len(self.flight))
        accept = ""
        if headers:
            for key, value in headers.items():
                if str(key).lower() == "accept":
                    accept = str(value).lower()
                    break
        if "text/plain" in accept or "openmetrics" in accept:
            text = render_prometheus(self.metrics.snapshot())
            return (
                200,
                text,
                {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
            )
        return 200, self.metrics.snapshot(), {}

    def handle_flight(self) -> Response:
        """The flight-recorder ring, oldest record first (admin-gated)."""
        if not self.config.enable_admin:
            return (
                403,
                {"status": "error", "error": "admin endpoints are disabled"},
                {},
            )
        records = self.flight.dump()
        return (
            200,
            {
                "status": "ok",
                "enabled": self.flight.enabled,
                "capacity": self.flight.capacity,
                "count": len(records),
                "records": records,
            },
            {},
        )

    def handle_mutate(self, body: bytes) -> Response:
        if not self.config.enable_admin:
            return (
                403,
                {"status": "error", "error": "admin endpoints are disabled"},
                {},
            )
        data = _parse_json(body)
        op = data.get("op")
        if op not in ("insert", "delete"):
            raise BadRequest(f"op must be 'insert' or 'delete', got {op!r}")
        u = _parse_optional_int(data, "u")
        v = _parse_optional_int(data, "v")
        if u is None or v is None:
            raise BadRequest("mutation needs integer endpoints u and v")

        def apply(index: BiGIndex) -> bool:
            graph = index.base_graph
            if op == "insert":
                if u == v or graph.has_edge(u, v):
                    return False
                index.insert_edge(u, v)
                return True
            if not graph.has_edge(u, v):
                return False
            index.delete_edge(u, v)
            return True

        def wal_entry(applied: bool) -> Optional[Dict[str, object]]:
            # No-op mutations (duplicate insert, absent delete) publish a
            # snapshot but change nothing — logging them would only slow
            # replay down.
            if not applied:
                return None
            return {"op": op, "u": u, "v": v}

        try:
            applied, snapshot = self.runtime.mutate(apply, wal_entry=wal_entry)
        except (BigIndexError, IndexError) as exc:
            raise BadRequest(f"mutation failed: {exc}")
        self.metrics.inc("serve.mutations")
        return (
            200,
            {
                "status": "ok",
                "applied": applied,
                # Echo the op so an acked mutation is attributable from
                # the response alone (the flight recorder and the chaos
                # drill's timeline diff both key on it).
                "op": op,
                "u": u,
                "v": v,
                "epoch": list(snapshot.epoch),
                "serial": snapshot.serial,
                "durable": self.runtime.wal is not None,
            },
            {},
        )

    def handle_digest(self) -> Response:
        """State fingerprint for differential drills (admin-gated).

        ``digest`` is :meth:`BiGIndex.state_digest` of the *current*
        snapshot — an external oracle that applied the same acked ops
        must produce the same value.  ``wal_records`` reports how many
        ops the server has made durable since the last save/truncate.
        """
        if not self.config.enable_admin:
            return (
                403,
                {"status": "error", "error": "admin endpoints are disabled"},
                {},
            )
        snapshot = self.runtime.current
        payload: Dict[str, object] = {
            "status": "ok",
            "digest": snapshot.index.state_digest(),
            "epoch": list(snapshot.epoch),
            "serial": snapshot.serial,
        }
        if self.runtime.wal is not None:
            payload["wal_records"] = self.runtime.wal.record_count
        return 200, payload, {}

    def handle_reload(self) -> Response:
        if not self.config.enable_admin:
            return (
                403,
                {"status": "error", "error": "admin endpoints are disabled"},
                {},
            )
        if self.loader is None:
            raise BadRequest("server was started without a reloadable index")
        snapshot = self.reload(self.loader())
        return (
            200,
            {
                "status": "ok",
                "epoch": list(snapshot.epoch),
                "serial": snapshot.serial,
            },
            {},
        )

    # ------------------------------------------------------------------
    # Programmatic lifecycle (used by tests and the CLI)
    # ------------------------------------------------------------------
    def reload(self, index: BiGIndex):
        """Zero-downtime swap to ``index`` (see ``EngineRuntime.reload``)."""
        snapshot = self.runtime.reload(index)
        self.metrics.inc("serve.reloads")
        return snapshot

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting work: every new request (except ``/healthz``
        and ``/metrics``) is shed with 503 from now on."""
        self._draining.set()

    def drain(self, deadline_seconds: float = 10.0) -> bool:
        """Wait for in-flight requests to finish, up to a deadline.

        Calls :meth:`begin_drain` first.  Returns whether the server
        went idle before the deadline; a ``False`` means the caller is
        about to exit with requests still running (logged by the CLI).
        """
        self.begin_drain()
        pause = threading.Event()
        deadline = monotonic_now() + deadline_seconds
        while self.admission.inflight > 0 and monotonic_now() < deadline:
            pause.wait(0.02)
        return self.admission.inflight == 0
