"""The stdlib HTTP transport for :class:`~repro.serve.service.QueryService`.

One thread per connection (``ThreadingHTTPServer``), HTTP/1.1 with
keep-alive so the bench harness and the serve fuzzer can reuse
connections, and a handler thin enough that every decision — routing,
status codes, budgets, shedding — lives in the transport-independent
service layer where the contract tests can reach it without sockets.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator, Optional, Tuple

from repro.serve.service import QueryService

#: Refuse request bodies beyond this (a 413); keeps a stray client from
#: buffering the server into the ground.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServeHandler(BaseHTTPRequestHandler):
    """Decode HTTP, delegate to the service, encode JSON back."""

    #: Keep-alive; requires every response to carry Content-Length.
    protocol_version = "HTTP/1.1"
    server_version = "repro-bigindex"
    #: Small request/response pairs on a persistent connection are the
    #: worst case for Nagle + delayed ACK (tens of ms per exchange on
    #: loopback); serving latency is dominated by it unless disabled.
    disable_nagle_algorithm = True

    # The service instance rides on the server object (set by
    # :class:`QueryServer`); handlers are instantiated per connection.
    def _service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._respond(400, {"status": "error", "error": "bad Content-Length"})
            return
        if length > MAX_BODY_BYTES:
            self._respond(
                413,
                {
                    "status": "error",
                    "error": f"body of {length} bytes exceeds {MAX_BODY_BYTES}",
                },
            )
            return
        body = self.rfile.read(length) if length else b""
        status, payload, extra = self._service().handle(
            method, self.path, body, dict(self.headers.items())
        )
        self._respond(status, payload, extra)

    def _respond(self, status: int, payload: object, extra=None) -> None:
        # A str payload is pre-rendered text (the content-negotiated
        # Prometheus /metrics); anything else is the JSON contract.
        extra = dict(extra or {})
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            content_type = extra.pop(
                "Content-Type", "text/plain; charset=utf-8"
            )
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = extra.pop("Content-Type", "application/json")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for key, value in extra.items():
            self.send_header(key, value)
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage

    # Silence the default stderr access log; the service's metrics are
    # the observable surface (`/metrics`, serve.* counters).
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass


class QueryServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one :class:`QueryService`."""

    daemon_threads = True
    #: Fast rebinds between test runs.
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: QueryService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def start_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> QueryServer:
    """Bind a server (``port=0`` picks a free one) without serving yet."""
    return QueryServer((host, port), service)


def shutdown_gracefully(
    server: QueryServer,
    thread: Optional[threading.Thread] = None,
    drain_deadline: float = 10.0,
) -> bool:
    """Drain and stop a server: the SIGTERM path of ``repro-bigindex serve``.

    Ordering matters for durability and clean client errors:

    1. the service stops admitting (new requests shed 503 "draining"),
    2. in-flight requests finish, up to ``drain_deadline`` seconds —
       any admin mutation that acks during the drain is WAL-durable by
       the ack contract,
    3. the listener stops and the socket closes,
    4. the WAL (if the runtime owns one) fsyncs its tail and closes,
       and any access/slow-query logs flush and close.

    Returns whether the drain finished before the deadline.  Safe to
    call from a signal-handling thread that is *not* the serve loop
    (``serve_forever`` must run elsewhere, or ``shutdown()`` deadlocks).
    """
    service = server.service
    drained = service.drain(drain_deadline)
    server.shutdown()
    server.server_close()
    if thread is not None:
        thread.join(timeout=5.0)
    wal = service.runtime.wal
    if wal is not None:
        wal.close()
    for log in (service.access_log, service.slow_log):
        if log is not None:
            log.close()
    return drained


@contextmanager
def serve_in_thread(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> Iterator[QueryServer]:
    """Run a live server on a daemon thread for the ``with`` body.

    The pattern every in-process consumer uses (tests, the bench's
    ``serve.qps`` entry, the fuzzer's ``--serve`` leg): real sockets,
    real handler threads, deterministic shutdown.
    """
    server = start_server(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
