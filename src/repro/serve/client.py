"""A tiny stdlib client for the serve wire contract.

Used by the contract tests, the ``serve.qps`` bench entry, the fuzzer's
``--serve`` leg and the CI smoke — one persistent ``http.client``
connection per instance (HTTP/1.1 keep-alive), automatic reconnect on a
dropped socket, and JSON in/out.  Not a public SDK; just enough client
to exercise the server the way a real caller would.

Resilience: a shed (503) is retried with capped exponential backoff plus
jitter, honoring the server's ``Retry-After`` hint; a dropped keep-alive
socket reconnects and retries on the same schedule; a degraded (429)
response is optionally retried once (``retry_degraded=True`` — off by
default, since a degraded answer is still an answer).  Every response
reports how many attempts it took in :attr:`ServeResponse.attempts`.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.reqlog import mint_request_id


@dataclass
class ServeResponse:
    """One decoded HTTP exchange."""

    status: int
    payload: Dict[str, object]
    headers: Dict[str, str]
    #: HTTP exchanges spent on this response, retries included (1 = no
    #: retry was needed).
    attempts: int = 1
    #: The ``X-Request-Id`` this logical request carried — the same ID
    #: on every retry attempt, so server logs correlate the whole story.
    request_id: str = ""
    #: Raw body text for non-JSON responses (e.g. the Prometheus
    #: ``/metrics`` exposition); empty when ``payload`` was decoded.
    text: str = ""

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def degraded(self) -> bool:
        return self.status == 429

    @property
    def shed(self) -> bool:
        return self.status == 503


class ServeClient:
    """A persistent-connection JSON client for one server.

    Parameters
    ----------
    max_retries:
        Extra attempts allowed after the first, spent on sheds (503) and
        dropped sockets.  ``0`` disables retrying entirely (the drills
        that must *observe* back-pressure use this).
    backoff_base / backoff_cap:
        The n-th retry waits ``min(cap, base * 2**n)`` seconds, scaled
        by a uniform jitter in ``[0.5, 1.0]`` so synchronized clients
        do not stampede the server they just overloaded.  A parseable
        ``Retry-After`` header raises the wait to at least the server's
        hint (still capped).
    retry_degraded:
        Retry a 429 exactly once (budget-degraded work is complete but
        partial; a second try only helps when contention caused it).
    rng:
        Jitter source, injectable for deterministic tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_degraded: bool = False,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_degraded = retry_degraded
        self._rng = rng if rng is not None else random.Random()
        self._conn: Optional[http.client.HTTPConnection] = None

    @classmethod
    def for_url(cls, url: str, timeout: float = 30.0, **kwargs) -> "ServeClient":
        """Build a client from a ``http://host:port`` string."""
        stripped = url.split("//", 1)[-1].rstrip("/")
        host, _, port = stripped.partition(":")
        return cls(host, int(port or 80), timeout=timeout, **kwargs)

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            # Mirror the server's TCP_NODELAY: without it the small
            # request writes sit behind Nagle waiting on delayed ACKs.
            self._conn.connect()
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServeResponse:
        """One JSON exchange with retry (see the class docstring).

        Transport faults on the last permitted attempt re-raise; an HTTP
        status — shed or not — is always returned, never raised.
        """
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        # One ID per *logical* request, minted before the first attempt
        # and resent verbatim on every retry, so the server's access log
        # shows the shed attempts and the final outcome as one story.
        request_id = send_headers.setdefault(
            "X-Request-Id", mint_request_id()
        )
        attempts = 0
        degraded_retried = False
        while True:
            attempts += 1
            last_attempt = attempts > self.max_retries
            conn = self._connection()
            try:
                conn.request(method, path, body=data, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, OSError):
                self.close()
                if last_attempt:
                    raise
                self._backoff(attempts, None)
                continue
            content_type = response.getheader("Content-Type") or ""
            if raw and "json" not in content_type:
                payload: Dict[str, object] = {}
                text = raw.decode("utf-8", errors="replace")
            else:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
                text = ""
            result = ServeResponse(
                status=response.status,
                payload=payload,
                headers=dict(response.getheaders()),
                attempts=attempts,
                request_id=request_id,
                text=text,
            )
            if result.shed and not last_attempt:
                self._backoff(attempts, result.headers.get("Retry-After"))
                continue
            if (
                result.degraded
                and self.retry_degraded
                and not degraded_retried
            ):
                degraded_retried = True
                self._backoff(1, result.headers.get("Retry-After"))
                continue
            return result

    def _backoff(self, attempt: int, retry_after: Optional[str]) -> None:
        """Sleep before retry ``attempt`` (1-based), honoring the hint."""
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        delay *= 0.5 + 0.5 * self._rng.random()
        if retry_after is not None:
            try:
                delay = max(delay, min(float(retry_after), self.backoff_cap))
            except ValueError:
                pass  # unparsable hint; keep the computed backoff
        time.sleep(delay)

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------
    def query(
        self,
        keywords: Sequence[str],
        k: Optional[int] = None,
        layer: Optional[int] = None,
        timeout_budget: Optional[float] = None,
        expansion_budget: Optional[int] = None,
    ) -> ServeResponse:
        body: Dict[str, object] = {"keywords": list(keywords)}
        if k is not None:
            body["k"] = k
        if layer is not None:
            body["layer"] = layer
        return self.request(
            "POST", "/query", body, self._budget_headers(
                timeout_budget, expansion_budget
            )
        )

    def batch(
        self,
        queries: Sequence[Sequence[str]],
        k: Optional[int] = None,
        layer: Optional[int] = None,
        timeout_budget: Optional[float] = None,
        expansion_budget: Optional[int] = None,
    ) -> ServeResponse:
        body: Dict[str, object] = {
            "queries": [list(q) for q in queries]
        }
        if k is not None:
            body["k"] = k
        if layer is not None:
            body["layer"] = layer
        return self.request(
            "POST", "/batch", body, self._budget_headers(
                timeout_budget, expansion_budget
            )
        )

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def metrics(self, prometheus: bool = False) -> ServeResponse:
        """``/metrics`` — JSON by default; ``prometheus=True`` asks for
        the text exposition (returned in :attr:`ServeResponse.text`)."""
        if prometheus:
            return self.request(
                "GET", "/metrics", headers={"Accept": "text/plain"}
            )
        return self.request("GET", "/metrics")

    def flight(self) -> ServeResponse:
        return self.request("GET", "/admin/flight")

    def mutate(self, op: str, u: int, v: int) -> ServeResponse:
        return self.request(
            "POST", "/admin/mutate", {"op": op, "u": u, "v": v}
        )

    def reload(self) -> ServeResponse:
        return self.request("POST", "/admin/reload", {})

    # ------------------------------------------------------------------
    @staticmethod
    def _budget_headers(
        timeout_budget: Optional[float], expansion_budget: Optional[int]
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        if timeout_budget is not None:
            headers["X-Budget-Timeout"] = repr(float(timeout_budget))
        if expansion_budget is not None:
            headers["X-Budget-Expansions"] = str(int(expansion_budget))
        return headers
