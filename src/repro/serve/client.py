"""A tiny stdlib client for the serve wire contract.

Used by the contract tests, the ``serve.qps`` bench entry, the fuzzer's
``--serve`` leg and the CI smoke — one persistent ``http.client``
connection per instance (HTTP/1.1 keep-alive), automatic reconnect on a
dropped socket, and JSON in/out.  Not a public SDK; just enough client
to exercise the server the way a real caller would.
"""

from __future__ import annotations

import http.client
import json
import socket
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class ServeResponse:
    """One decoded HTTP exchange."""

    status: int
    payload: Dict[str, object]
    headers: Dict[str, str]

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def degraded(self) -> bool:
        return self.status == 429

    @property
    def shed(self) -> bool:
        return self.status == 503


class ServeClient:
    """A persistent-connection JSON client for one server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    @classmethod
    def for_url(cls, url: str, timeout: float = 30.0) -> "ServeClient":
        """Build a client from a ``http://host:port`` string."""
        stripped = url.split("//", 1)[-1].rstrip("/")
        host, _, port = stripped.partition(":")
        return cls(host, int(port or 80), timeout=timeout)

    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            # Mirror the server's TCP_NODELAY: without it the small
            # request writes sit behind Nagle waiting on delayed ACKs.
            self._conn.connect()
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ServeResponse:
        """One JSON exchange, retrying once on a dropped keep-alive."""
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=data, headers=send_headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                self.close()
                if attempt:
                    raise
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        return ServeResponse(
            status=response.status,
            payload=payload,
            headers=dict(response.getheaders()),
        )

    # ------------------------------------------------------------------
    # Endpoint helpers
    # ------------------------------------------------------------------
    def query(
        self,
        keywords: Sequence[str],
        k: Optional[int] = None,
        layer: Optional[int] = None,
        timeout_budget: Optional[float] = None,
        expansion_budget: Optional[int] = None,
    ) -> ServeResponse:
        body: Dict[str, object] = {"keywords": list(keywords)}
        if k is not None:
            body["k"] = k
        if layer is not None:
            body["layer"] = layer
        return self.request(
            "POST", "/query", body, self._budget_headers(
                timeout_budget, expansion_budget
            )
        )

    def batch(
        self,
        queries: Sequence[Sequence[str]],
        k: Optional[int] = None,
        layer: Optional[int] = None,
        timeout_budget: Optional[float] = None,
        expansion_budget: Optional[int] = None,
    ) -> ServeResponse:
        body: Dict[str, object] = {
            "queries": [list(q) for q in queries]
        }
        if k is not None:
            body["k"] = k
        if layer is not None:
            body["layer"] = layer
        return self.request(
            "POST", "/batch", body, self._budget_headers(
                timeout_budget, expansion_budget
            )
        )

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def metrics(self) -> ServeResponse:
        return self.request("GET", "/metrics")

    def mutate(self, op: str, u: int, v: int) -> ServeResponse:
        return self.request(
            "POST", "/admin/mutate", {"op": op, "u": u, "v": v}
        )

    def reload(self) -> ServeResponse:
        return self.request("POST", "/admin/reload", {})

    # ------------------------------------------------------------------
    @staticmethod
    def _budget_headers(
        timeout_budget: Optional[float], expansion_budget: Optional[int]
    ) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        if timeout_budget is not None:
            headers["X-Budget-Timeout"] = repr(float(timeout_budget))
        if expansion_budget is not None:
            headers["X-Budget-Expansions"] = str(int(expansion_budget))
        return headers
