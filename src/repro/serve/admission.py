"""Admission control: shed load *before* a query spends anything.

The server's unit of work is the node expansion (the same unit
:class:`~repro.utils.budget.Budget` charges), so admission reasons in
expansions too — the BLINKS/bi-level line's idea of bounding work at the
entry point rather than discovering overload mid-search:

* **In-flight request cap** — at most ``max_inflight_requests`` requests
  may execute at once; beyond it the request is shed.
* **In-flight expansion reservation** — every admitted request reserves
  its worst-case expansion spend (its budget's cap, or the server
  default for unbounded requests); when the sum of reservations would
  exceed ``max_inflight_expansions`` the request is shed.  The ledger is
  pessimistic by design: a reservation is the cap, not the actual spend,
  so the server never *starts* more work than it is willing to finish.

A shed request costs one lock acquisition and produces an HTTP 503 with
``Retry-After`` — the serving-side face of the ``DegradedResult`` /
exit-3 contract (degraded-but-started work maps to 429 instead; see
:mod:`repro.serve.service`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, Optional

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry


class ShedError(Exception):
    """Raised when admission control rejects a request.

    ``reason`` is ``"inflight"`` (request cap) or ``"expansions"``
    (reservation ledger full); ``retry_after`` is the hint forwarded as
    the HTTP ``Retry-After`` header.
    """

    def __init__(self, reason: str, retry_after: float = 1.0) -> None:
        super().__init__(f"request shed: {reason}")
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class Ticket:
    """Proof of admission; release it exactly once."""

    reserved: int


class AdmissionController:
    """The global in-flight ledger shared by every handler thread."""

    def __init__(
        self,
        max_inflight_requests: Optional[int] = None,
        max_inflight_expansions: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_inflight_requests is not None and max_inflight_requests < 0:
            raise ValueError("max_inflight_requests must be non-negative")
        if max_inflight_expansions is not None and max_inflight_expansions < 0:
            raise ValueError("max_inflight_expansions must be non-negative")
        self.max_inflight_requests = max_inflight_requests
        self.max_inflight_expansions = max_inflight_expansions
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._inflight = 0
        self._reserved = 0

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Requests currently executing."""
        return self._inflight

    @property
    def reserved_expansions(self) -> int:
        """Sum of in-flight expansion reservations."""
        return self._reserved

    def try_admit(self, reserve: int = 0) -> Ticket:
        """Admit a request reserving ``reserve`` expansions, or shed.

        Raises :class:`ShedError` without mutating the ledger when a cap
        would be exceeded; on success the caller owns a :class:`Ticket`
        and must :meth:`release` it when the request finishes.
        """
        reserve = max(0, int(reserve))
        with self._lock:
            if (
                self.max_inflight_requests is not None
                and self._inflight >= self.max_inflight_requests
            ):
                self._shed("inflight")
            if (
                self.max_inflight_expansions is not None
                and self._reserved + reserve > self.max_inflight_expansions
            ):
                self._shed("expansions")
            self._inflight += 1
            self._reserved += reserve
            self.metrics.inc("serve.admitted")
            self.metrics.gauge("serve.inflight", self._inflight)
            self.metrics.gauge("serve.inflight_expansions", self._reserved)
        return Ticket(reserved=reserve)

    def release(self, ticket: Ticket) -> None:
        with self._lock:
            self._inflight -= 1
            self._reserved -= ticket.reserved
            self.metrics.gauge("serve.inflight", self._inflight)
            self.metrics.gauge("serve.inflight_expansions", self._reserved)

    @contextmanager
    def admit(self, reserve: int = 0) -> Iterator[Ticket]:
        """``try_admit`` + guaranteed release around a request body."""
        ticket = self.try_admit(reserve)
        try:
            yield ticket
        finally:
            self.release(ticket)

    # ------------------------------------------------------------------
    def _shed(self, reason: str) -> None:
        self.metrics.inc("serve.shed")
        self.metrics.inc(f"serve.shed.{reason}")
        raise ShedError(reason)
