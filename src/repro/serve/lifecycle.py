"""Server runtime: copy-on-write snapshots, pinning, and retirement.

The shared :class:`~repro.core.evaluator.HierarchicalEvaluator` caches
are epoch-keyed, but epochs alone cannot make *in-place* index mutation
safe under concurrency: a reader halfway through a query holds searchers
and CSR views over the live graph, and a concurrent
:meth:`~repro.core.index.BiGIndex.insert_edge` would mutate them under
its feet.  The runtime therefore never mutates a published index:

* **Pin** — every query pins the current :class:`Snapshot` (a refcount
  bump under a short state lock, never a blocking read lock).  The
  pinned index is immutable for the pin's lifetime, so the reader needs
  no further coordination with writers.
* **Mutate without drain** — a mutation takes a *writer-only* lock,
  builds a copy-on-write clone of the current index
  (:meth:`~repro.core.index.BiGIndex.cow_clone` — shared structure is
  copied lazily on first write), applies the change to the clone
  off-lock while readers keep serving the old snapshot, optionally
  appends the op to a durable WAL (see :mod:`repro.core.wal`), and
  publishes the clone with a pointer swap.  Readers never block on a
  mutation and a mutation never waits for readers.
* **Retire by refcount** — a superseded snapshot is retired (counted in
  ``RuntimeStats.retired`` and the ``snapshot.retired`` metric) when its
  last pin releases; with no pins it retires at publish time.  Python's
  GC then reclaims it; the explicit count is what the serve drill and
  ``/healthz`` observe.
* **Reload** — swapping in a different index object (e.g. re-loaded
  from disk) is the same publish path; readers still holding the old
  snapshot keep evaluating the old index, which nobody mutates.

Each snapshot owns a fresh evaluator: after a mutation the epoch-keyed
caches would be invalid anyway, and a per-snapshot evaluator means a
pinned reader can never observe another epoch's cache state.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple, TypeVar

from repro.core.evaluator import HierarchicalEvaluator
from repro.core.index import BiGIndex
from repro.core.wal import MutationWAL
from repro.obs.runtime import OBS

T = TypeVar("T")

#: Builds the per-snapshot evaluator for an index.
EvaluatorFactory = Callable[[BiGIndex], HierarchicalEvaluator]

#: Derives the durable WAL record for a mutation from its result;
#: returning ``None`` skips logging (e.g. a no-op mutation).
WalEntryFactory = Callable[[T], Optional[Dict[str, object]]]


class RWLock:
    """A writer-preferring readers-writer lock.

    Any number of readers may hold the lock together; a writer is
    exclusive.  Once a writer is *waiting*, new readers queue behind it,
    so a continuous stream of queries cannot starve mutations.

    The serve runtime itself no longer drains readers through this
    (mutations go through copy-on-write snapshots), but the lock remains
    the building block for callers that do need drain semantics, and the
    concurrency battery pins its fairness properties.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass(frozen=True)
class Snapshot:
    """One immutable serving generation: (index, evaluator, epoch).

    ``serial`` increases with every publish, so two snapshots at the
    same epoch value (e.g. after a reload from the same files) are still
    distinguishable in traces and tests.  Pin counts live in the
    runtime, keyed by serial — the snapshot itself stays frozen.
    """

    index: BiGIndex
    evaluator: HierarchicalEvaluator
    epoch: Tuple[int, int]
    serial: int = 0

    @property
    def storage_kind(self) -> str:
        """Where this snapshot's graphs live: ``"mmap"`` when every
        graph is still zero-copy over the v4 container, ``"heap"`` when
        none is, ``"mixed"`` after some (but not all) detached — e.g. a
        WAL replay materialized the base graph while the summary layers
        stayed frozen.

        Indexes that span several storage units (a sharded index's
        locales each mmap their own v4 container) expose
        ``iter_layer_graphs``; pinning such a snapshot pins every
        constituent mmap at once."""
        if hasattr(self.index, "iter_layer_graphs"):
            graphs = list(self.index.iter_layer_graphs())
        else:
            graphs = [
                self.index.layer_graph(m)
                for m in range(self.index.num_layers + 1)
            ]
        frozen = sum(1 for g in graphs if g.is_mmap_backed)
        if frozen == 0:
            return "heap"
        return "mmap" if frozen == len(graphs) else "mixed"


@dataclass
class RuntimeStats:
    """Mutation/reload/retirement accounting surfaced by ``/healthz``."""

    mutations: int = 0
    reloads: int = 0
    publishes: int = 0
    #: Superseded snapshots whose last pin has released (or that had no
    #: pins when superseded).  ``publishes - retired - 1`` snapshots are
    #: still reachable: the current one plus any still pinned.
    retired: int = 0


class EngineRuntime:
    """The engine layer: pinned copy-on-write snapshots over one index.

    Parameters
    ----------
    index:
        The initial index to serve.  Treated as frozen from here on —
        all mutations go through :meth:`mutate`, which clones.
    evaluator_factory:
        Builds a fresh evaluator per published snapshot.
    wal:
        Optional open :class:`~repro.core.wal.MutationWAL`.  When set,
        :meth:`mutate` appends the record produced by its ``wal_entry``
        callback — and fsyncs it — *before* publishing, so nothing is
        acked that a crash could lose.
    """

    def __init__(
        self,
        index: BiGIndex,
        evaluator_factory: EvaluatorFactory,
        wal: Optional[MutationWAL] = None,
        metrics=None,
    ) -> None:
        self._factory = evaluator_factory
        self.wal = wal
        #: Fallback registry for runtime counters (snapshot.retired,
        #: snapshot.published) when the process-wide OBS switch is off.
        #: QueryService points this at its own registry, so /healthz and
        #: /metrics always show COW accounting; when OBS is on, its
        #: registry wins (in the serve CLI both are the same object).
        self.metrics = metrics
        # Serializes writers (mutate/reload) against each other only;
        # readers never touch it.
        self._mutate_lock = threading.Lock()
        # Guards _snapshot/_pins/stats; held for pointer swaps and
        # refcount bumps, never across evaluation or cloning.
        self._state_lock = threading.Lock()
        self._pins: Dict[int, int] = {}
        self.stats = RuntimeStats()
        self._snapshot = Snapshot(
            index=index,
            evaluator=evaluator_factory(index),
            epoch=index.epoch,
            serial=0,
        )

    # ------------------------------------------------------------------
    @property
    def current(self) -> Snapshot:
        """The snapshot a request arriving now would pin."""
        return self._snapshot

    @property
    def epoch(self) -> Tuple[int, int]:
        return self._snapshot.epoch

    def pinned_snapshots(self) -> int:
        """Number of distinct snapshot generations currently pinned."""
        with self._state_lock:
            return len(self._pins)

    @contextmanager
    def pin(self) -> Iterator[Snapshot]:
        """Pin the current snapshot for one query.

        A refcount bump, not a lock hold: concurrent mutations proceed
        on their own clone and publish past this reader, which simply
        finishes on the snapshot it pinned.  The snapshot retires when
        the last pin on a superseded generation releases.
        """
        with self._state_lock:
            snapshot = self._snapshot
            self._pins[snapshot.serial] = self._pins.get(snapshot.serial, 0) + 1
        try:
            yield snapshot
        finally:
            self._release(snapshot)

    def _release(self, snapshot: Snapshot) -> None:
        with self._state_lock:
            remaining = self._pins.get(snapshot.serial, 0) - 1
            if remaining > 0:
                self._pins[snapshot.serial] = remaining
                return
            self._pins.pop(snapshot.serial, None)
            if snapshot is not self._snapshot:
                self._retire()

    def _metric_inc(self, name: str) -> None:
        """Count into the OBS registry (when on) or the fallback one.

        Exactly one registry records: in the serve CLI OBS routes into
        the service registry anyway, and double-counting there would
        skew the /healthz COW accounting.
        """
        if OBS.enabled:
            OBS.metrics.inc(name)
        elif self.metrics is not None:
            self.metrics.inc(name)

    def _retire(self) -> None:
        """Account one superseded snapshot (caller holds _state_lock)."""
        self.stats.retired += 1
        self._metric_inc("snapshot.retired")

    # ------------------------------------------------------------------
    def _publish(self, index: BiGIndex) -> Snapshot:
        """Build and install a fresh snapshot for ``index``'s epoch."""
        evaluator = self._factory(index)
        with self._state_lock:
            previous = self._snapshot
            snapshot = Snapshot(
                index=index,
                evaluator=evaluator,
                epoch=index.epoch,
                serial=previous.serial + 1,
            )
            self._snapshot = snapshot
            self.stats.publishes += 1
            self._metric_inc("snapshot.published")
            if previous.serial not in self._pins:
                self._retire()
            return snapshot

    def mutate(
        self,
        fn: Callable[[BiGIndex], T],
        wal_entry: Optional[WalEntryFactory] = None,
    ) -> Tuple[T, Snapshot]:
        """Apply a mutation to a copy-on-write clone and publish it.

        Readers are never drained: ``fn`` runs against a private clone
        (:meth:`BiGIndex.cow_clone`) while in-flight queries keep
        serving the published snapshot; the swap at the end is a pointer
        assignment.  ``fn`` may call any maintenance entry point.

        When the runtime has a WAL and ``wal_entry`` is given, the
        record it derives from ``fn``'s result is committed — fsync and
        all — *before* the publish, so a caller that sees the new
        snapshot (or an HTTP ack built from it) is guaranteed the op
        survives ``kill -9``.  ``wal_entry`` returning ``None`` (a
        no-op mutation) skips the log.

        If ``fn`` raises, nothing is logged or published and the clone
        is discarded — the published state never reflects a half-applied
        mutation.
        """
        with self._mutate_lock:
            clone = self._snapshot.index.cow_clone()
            result = fn(clone)
            if self.wal is not None and wal_entry is not None:
                record = wal_entry(result)
                if record is not None:
                    self.wal.commit(dict(record))
            self.stats.mutations += 1
            return result, self._publish(clone)

    def reload(self, index: BiGIndex) -> Snapshot:
        """Swap in a different index object with zero downtime.

        No reader drain: the replacement snapshot is fully built before
        the atomic publish, and readers pinned to the old snapshot keep
        serving from the old (now immutable) index until they finish.
        Serialized against :meth:`mutate` so a concurrent mutation's
        clone cannot clobber the reload (or vice versa).
        """
        with self._mutate_lock:
            snapshot = self._publish(index)
            self.stats.reloads += 1
            return snapshot
