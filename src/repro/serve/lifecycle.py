"""Server runtime: snapshot pinning and zero-downtime index swaps.

The shared :class:`~repro.core.evaluator.HierarchicalEvaluator` caches
are epoch-keyed, but epochs alone cannot make *in-place* index mutation
safe under concurrency: a reader halfway through a query holds searchers
and CSR views over the live graph, and a concurrent
:meth:`~repro.core.index.BiGIndex.insert_edge` would mutate them under
its feet.  The runtime provides the two disciplines the server needs:

* **Pin/mutate** — every query pins the current :class:`Snapshot` under
  a read lock; a mutation takes the write lock, which *drains* in-flight
  readers first ("readers finish on the old snapshot"), applies the
  change, and publishes a fresh snapshot for the new epoch ("new
  requests pin the new one").  The lock is writer-preferring so a
  steady query stream cannot starve mutations.
* **Reload** — swapping in a *different* index object (e.g. re-loaded
  from disk) needs no drain at all: the new snapshot is built off-line,
  published atomically, and readers still holding the old snapshot keep
  evaluating the old index, which nobody mutates.  Old snapshots retire
  by ordinary refcount once their last reader releases them.

Each snapshot owns a fresh evaluator: after a mutation the epoch-keyed
caches would be invalid anyway, and a per-snapshot evaluator means a
pinned reader can never observe another epoch's cache state.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Tuple, TypeVar

from repro.core.evaluator import HierarchicalEvaluator
from repro.core.index import BiGIndex

T = TypeVar("T")

#: Builds the per-snapshot evaluator for an index.
EvaluatorFactory = Callable[[BiGIndex], HierarchicalEvaluator]


class RWLock:
    """A writer-preferring readers-writer lock.

    Any number of readers may hold the lock together; a writer is
    exclusive.  Once a writer is *waiting*, new readers queue behind it,
    so a continuous stream of queries cannot starve mutations — the
    property the serve concurrency battery pins down.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass(frozen=True)
class Snapshot:
    """One immutable serving generation: (index, evaluator, epoch).

    ``serial`` increases with every publish, so two snapshots at the
    same epoch value (e.g. after a reload from the same files) are still
    distinguishable in traces and tests.
    """

    index: BiGIndex
    evaluator: HierarchicalEvaluator
    epoch: Tuple[int, int]
    serial: int = 0


@dataclass
class RuntimeStats:
    """Mutation/reload accounting surfaced by ``/healthz``.

    Superseded snapshots are not counted here — they retire by ordinary
    refcount (garbage collection) once their last pinned reader returns.
    """

    mutations: int = 0
    reloads: int = 0
    publishes: int = 0


class EngineRuntime:
    """The engine layer: pinned snapshots over one live index.

    Parameters
    ----------
    index:
        The initial index to serve.
    evaluator_factory:
        Builds a fresh evaluator per published snapshot; defaults to a
        plain :class:`HierarchicalEvaluator` with the result cache on.
    """

    def __init__(
        self,
        index: BiGIndex,
        evaluator_factory: EvaluatorFactory,
    ) -> None:
        self._factory = evaluator_factory
        self._rw = RWLock()
        self._publish_lock = threading.Lock()
        self.stats = RuntimeStats()
        self._snapshot = Snapshot(
            index=index,
            evaluator=evaluator_factory(index),
            epoch=index.epoch,
            serial=0,
        )

    # ------------------------------------------------------------------
    @property
    def current(self) -> Snapshot:
        """The snapshot a request arriving now would pin."""
        return self._snapshot

    @property
    def epoch(self) -> Tuple[int, int]:
        return self._snapshot.epoch

    @contextmanager
    def pin(self) -> Iterator[Snapshot]:
        """Pin the current snapshot for one query.

        The read lock is held for the duration, so an in-place mutation
        cannot start until this reader releases; a concurrent *reload*
        (different index object) proceeds without waiting and this
        reader simply finishes on the old snapshot.
        """
        with self._rw.read():
            yield self._snapshot

    # ------------------------------------------------------------------
    def _publish(self, index: BiGIndex) -> Snapshot:
        """Build and install a fresh snapshot for ``index``'s epoch."""
        with self._publish_lock:
            snapshot = Snapshot(
                index=index,
                evaluator=self._factory(index),
                epoch=index.epoch,
                serial=self._snapshot.serial + 1,
            )
            self._snapshot = snapshot
            self.stats.publishes += 1
            return snapshot

    def mutate(self, fn: Callable[[BiGIndex], T]) -> Tuple[T, Snapshot]:
        """Apply an in-place mutation and publish the new epoch.

        Takes the write lock — in-flight readers finish on the old
        snapshot first, and readers arriving while the writer waits
        queue behind it and pin the *new* snapshot.  ``fn`` receives the
        live index and may call any maintenance entry point.
        """
        with self._rw.write():
            result = fn(self._snapshot.index)
            self.stats.mutations += 1
            return result, self._publish(self._snapshot.index)

    def reload(self, index: BiGIndex) -> Snapshot:
        """Swap in a different index object with zero downtime.

        No reader drain: the replacement snapshot is fully built before
        the atomic publish, and readers pinned to the old snapshot keep
        serving from the old (now immutable) index until they finish.
        """
        snapshot = self._publish(index)
        self.stats.reloads += 1
        return snapshot
