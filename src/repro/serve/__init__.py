"""`repro-bigindex serve`: a concurrent query server over the warm evaluator.

The package splits the server into the layers a production keyword-search
service grows (the app/runtime/engine shape):

* :mod:`repro.serve.lifecycle` — the **runtime**: copy-on-write snapshot
  isolation.  Queries pin immutable snapshots by refcount; mutations
  clone only the touched structures, optionally append to the durable
  mutation WAL (:mod:`repro.core.wal`), and publish with a pointer swap
  — readers never block on a mutation, and superseded snapshots retire
  when their last pin releases.
* :mod:`repro.serve.admission` — admission control: a global in-flight
  request cap and an in-flight *expansion reservation* ledger; requests
  the server cannot afford are shed before any work happens.
* :mod:`repro.serve.service` — the transport-independent **app**: JSON
  request/response contract for ``/query``, ``/batch``, ``/metrics``,
  ``/healthz`` and the admin endpoints, per-request
  :class:`~repro.utils.budget.Budget` from headers, the
  ``DegradedResult``/exit-3 contract mapped onto HTTP 429/503, and the
  drain discipline behind graceful shutdown.
* :mod:`repro.serve.server` — the stdlib HTTP transport
  (``ThreadingHTTPServer``), helpers to run it on a background thread,
  and :func:`~repro.serve.server.shutdown_gracefully` (drain, stop,
  fsync the WAL) backing the CLI's SIGTERM/SIGINT path.
* :mod:`repro.serve.client` — a tiny stdlib client with capped
  exponential-backoff retry on sheds, used by the tests, the
  ``serve.qps`` bench entry, the fuzzer's ``--serve`` leg and CI.

See ``docs/SERVING.md`` for the wire contract and the snapshot
lifecycle; ``docs/ROBUSTNESS.md`` for durability and crash recovery.
"""

from repro.serve.admission import AdmissionController, ShedError
from repro.serve.client import ServeClient, ServeResponse
from repro.serve.lifecycle import EngineRuntime, RWLock, Snapshot
from repro.serve.server import (
    QueryServer,
    serve_in_thread,
    shutdown_gracefully,
    start_server,
)
from repro.serve.service import QueryService, ServerConfig

__all__ = [
    "AdmissionController",
    "EngineRuntime",
    "QueryServer",
    "QueryService",
    "RWLock",
    "ServeClient",
    "ServeResponse",
    "ServerConfig",
    "ShedError",
    "Snapshot",
    "serve_in_thread",
    "shutdown_gracefully",
    "start_server",
]
