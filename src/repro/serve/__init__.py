"""`repro-bigindex serve`: a concurrent query server over the warm evaluator.

The package splits the server into the layers a production keyword-search
service grows (the app/runtime/engine shape):

* :mod:`repro.serve.lifecycle` — the **runtime**: snapshot pinning over
  the epoch-keyed evaluator caches, a writer-preferring RW lock so
  in-place index mutations drain in-flight readers, and zero-downtime
  index reload (readers finish on the old snapshot, new requests pin the
  new one).
* :mod:`repro.serve.admission` — admission control: a global in-flight
  request cap and an in-flight *expansion reservation* ledger; requests
  the server cannot afford are shed before any work happens.
* :mod:`repro.serve.service` — the transport-independent **app**: JSON
  request/response contract for ``/query``, ``/batch``, ``/metrics``,
  ``/healthz`` and the admin endpoints, per-request
  :class:`~repro.utils.budget.Budget` from headers, and the
  ``DegradedResult``/exit-3 contract mapped onto HTTP 429/503.
* :mod:`repro.serve.server` — the stdlib HTTP transport
  (``ThreadingHTTPServer``) plus helpers to run it on a background
  thread for tests, benchmarks and the verify drill.
* :mod:`repro.serve.client` — a tiny stdlib client used by the tests,
  the ``serve.qps`` bench entry, the fuzzer's ``--serve`` leg and CI.

See ``docs/SERVING.md`` for the wire contract.
"""

from repro.serve.admission import AdmissionController, ShedError
from repro.serve.client import ServeClient
from repro.serve.lifecycle import EngineRuntime, RWLock, Snapshot
from repro.serve.server import QueryServer, serve_in_thread, start_server
from repro.serve.service import QueryService, ServerConfig

__all__ = [
    "AdmissionController",
    "EngineRuntime",
    "QueryServer",
    "QueryService",
    "RWLock",
    "ServeClient",
    "ServerConfig",
    "ShedError",
    "Snapshot",
    "serve_in_thread",
    "start_server",
]
