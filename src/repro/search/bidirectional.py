"""Bidirectional keyword search (Kacholia et al., VLDB 2005).

The paper's Sec. 5 lists bidirectional expansion — its reference [14] —
among the algorithms its framework optimizes "with minor modifications";
implementing it here exercises exactly that genericity claim (it also
covers the "more keyword query semantics" direction of the paper's
future work).

Semantics are the same distinct-root trees as bkws; the difference is the
search strategy: besides expanding *backward* from the keyword vertex
sets, the algorithm expands *forward* from candidate roots discovered
along the way, prioritizing vertices by a spreading-activation score
(here: the number of keyword sets that have reached the vertex, tie-broken
by accumulated distance).  Forward expansion lets high-fanout vertices be
confirmed as roots without waiting for every backward frontier.

Because the answers are identical to bkws' (both enumerate exactly the
roots reaching every keyword within ``d_max`` with minimal distance
sums), the implementation reuses the exhaustive distance maps for the
final answer set and uses the bidirectional frontier only to *order*
discovery — which is what makes it an interesting plug-in: BiG-index
accelerates it the same way it accelerates bkws, without modification.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.graph.digraph import Graph
from repro.graph.traversal import nearest_labeled_forward, shortest_path
from repro.search.base import (
    USE_BOUND_K,
    Answer,
    GraphSearcher,
    KeywordQuery,
    KeywordSearchAlgorithm,
    top_k,
)
from repro.obs.runtime import OBS, charge_expansions
from repro.utils.budget import Budget
from repro.utils.errors import BudgetExceeded, QueryError


class BidirectionalSearcher(GraphSearcher):
    """Bidirectional expansion bound to one graph."""

    def __init__(self, graph: Graph, d_max: int, k: Optional[int]) -> None:
        super().__init__(graph)
        self.d_max = d_max
        self.k = k

    def search(
        self,
        query: KeywordQuery,
        budget: Optional[Budget] = None,
        k: object = USE_BOUND_K,
    ) -> List[Answer]:
        """Distinct-root answers via prioritized bidirectional expansion."""
        k = self._resolve_k(k)
        keywords = list(query.keywords)
        in_neighbors = self.graph.csr().in_neighbors
        # Backward state per keyword: vertex -> (distance, origin).
        settled: Dict[str, Dict[int, Tuple[int, int]]] = {}
        frontiers: Dict[str, List[Tuple[int, int]]] = {}
        for keyword in keywords:
            sources = self.graph.sorted_vertices_with_label(keyword)
            if not sources:
                return []
            settled[keyword] = {v: (0, v) for v in sources}
            frontiers[keyword] = [(0, v) for v in sources]

        # Priority queue of candidate roots by spreading activation:
        # (-keyword sets reached, accumulated distance, vertex).
        activation: Dict[int, Set[str]] = {}
        candidates: List[Tuple[int, int, int]] = []
        answers: Dict[int, Answer] = {}

        def touch(vertex: int, keyword: str) -> None:
            reached = activation.setdefault(vertex, set())
            if keyword in reached:
                return
            reached.add(keyword)
            total = sum(
                settled[kw][vertex][0] for kw in reached
            )
            heapq.heappush(candidates, (-len(reached), total, vertex))

        for keyword in keywords:
            for vertex in settled[keyword]:
                touch(vertex, keyword)

        emitted: Set[int] = set()
        depth = 0
        try:
            while depth < self.d_max:
                depth += 1
                progressed = False
                # One expansion per frontier vertex about to be
                # processed; charging up front keeps the settled maps
                # consistent (complete through depth - 1) on raise.
                charge_expansions(
                    budget, sum(len(f) for f in frontiers.values())
                )
                if OBS.enabled:
                    OBS.metrics.inc("search.levels_expanded")
                # Backward step: grow each keyword frontier one level.  The
                # nearest-origin choice is canonical (smallest origin wins on
                # equal distance) so answers match bkws' signature-for-signature.
                for keyword in keywords:
                    frontier = frontiers[keyword]
                    reached: Dict[int, int] = {}
                    for dist, vertex in frontier:
                        origin = settled[keyword][vertex][1]
                        for pred in in_neighbors(vertex):
                            if pred in settled[keyword]:
                                continue
                            prev = reached.get(pred)
                            if prev is None or origin < prev:
                                reached[pred] = origin
                    next_frontier: List[Tuple[int, int]] = []
                    for pred in sorted(reached):
                        settled[keyword][pred] = (depth, reached[pred])
                        next_frontier.append((depth, pred))
                        touch(pred, keyword)
                        progressed = True
                    frontiers[keyword] = next_frontier
                # Forward step: confirm the hottest candidates as roots by a
                # forward probe bounded by the remaining hop budget.
                confirmed = 0
                while candidates and confirmed < 8:
                    neg_reached, _, vertex = heapq.heappop(candidates)
                    if OBS.enabled:
                        OBS.metrics.inc("search.heap_pops")
                    if vertex in emitted:
                        continue
                    if -neg_reached < len(keywords) and depth < self.d_max:
                        # Not yet reached by every backward frontier; only
                        # probe forward when it looks promising (more than
                        # half the keywords reached).
                        if -neg_reached * 2 <= len(keywords):
                            continue
                    charge_expansions(budget, 1)
                    answer = self._confirm_root(vertex, query)
                    if answer is not None:
                        emitted.add(vertex)
                        answers[vertex] = answer
                        confirmed += 1
                        if OBS.enabled:
                            OBS.metrics.inc("search.roots_confirmed")
                if not progressed and not candidates:
                    break
        except BudgetExceeded as exc:
            lower_bound = _frontier_bound(frontiers)
            exc.partial = top_k(
                self._sound_answers(keywords, settled, answers, lower_bound),
                k,
            )
            exc.lower_bound = lower_bound
            raise

        # Exhaustive completion: any vertex settled by every backward
        # expansion is a root (ensures the same answer set as bkws).
        first = settled[keywords[0]]
        for vertex in first:
            if vertex in emitted:
                continue
            if all(vertex in settled[kw] for kw in keywords):
                keyword_nodes = {
                    kw: settled[kw][vertex][1] for kw in keywords
                }
                score = sum(settled[kw][vertex][0] for kw in keywords)
                answers[vertex] = _materialize_tree(
                    self.graph, vertex, keyword_nodes, score, self.d_max
                )
        return top_k(list(answers.values()), k)

    def _sound_answers(
        self,
        keywords: List[str],
        settled: Dict[str, Dict[int, Tuple[int, int]]],
        confirmed: Dict[int, Answer],
        below: float,
    ) -> List[Answer]:
        """Exact answers provable at interruption, score strictly below
        ``below``.

        Two sources, both exact: roots settled by every backward
        expansion (their distance sums are exact BFS distances), and
        roots already confirmed by a forward probe
        (:meth:`_confirm_root` computes the exact minimum for its root).
        Any true answer scoring below the frontier bound belongs to one
        of the two, so the filtered set is a ranking prefix.
        """
        merged: Dict[int, Answer] = dict(confirmed)
        for vertex in settled[keywords[0]]:
            if vertex in merged:
                continue
            if all(vertex in settled[kw] for kw in keywords):
                keyword_nodes = {
                    kw: settled[kw][vertex][1] for kw in keywords
                }
                score = sum(settled[kw][vertex][0] for kw in keywords)
                merged[vertex] = _materialize_tree(
                    self.graph, vertex, keyword_nodes, score, self.d_max
                )
        return [a for a in merged.values() if a.score < below]

    def _confirm_root(self, vertex: int, query: KeywordQuery) -> Optional[Answer]:
        found = nearest_labeled_forward(
            self.graph, vertex, set(query.keywords), self.d_max
        )
        if found is None:
            return None
        keyword_nodes = {kw: v for kw, (_, v) in found.items()}
        score = float(sum(d for (d, _) in found.values()))
        return _materialize_tree(
            self.graph, vertex, keyword_nodes, score, self.d_max
        )


def _frontier_bound(frontiers: Dict[str, List[Tuple[int, int]]]) -> float:
    """Lower bound on any root not settled by every backward expansion.

    A non-empty frontier at depth ``d`` means that keyword's settled set
    is complete through ``d``; a root it is missing is at distance at
    least ``d + 1``.  Empty frontiers impose no bound — that keyword's
    expansion is complete, so a missing root is not an answer at all.
    """
    bounds = [
        frontier[0][0] + 1 for frontier in frontiers.values() if frontier
    ]
    return float(min(bounds)) if bounds else float("inf")


class BidirectionalSearch(KeywordSearchAlgorithm):
    """Kacholia-style bidirectional keyword search (``bdws``).

    Same answer semantics as :class:`~repro.search.banks.BackwardKeywordSearch`
    (distinct-root trees under ``d_max``), different exploration strategy.
    Plugs into BiG-index unmodified — demonstrating the framework's
    genericity beyond the three algorithms the paper details.
    """

    name = "bdws"

    def __init__(self, d_max: int = 3, k: Optional[int] = None) -> None:
        if d_max < 0:
            raise QueryError("d_max must be non-negative")
        self.d_max = d_max
        self.k = k

    def bind(self, graph: Graph) -> BidirectionalSearcher:
        """Bidirectional search keeps no persistent index."""
        return BidirectionalSearcher(graph, self.d_max, self.k)

    def verify(
        self,
        graph: Graph,
        keyword_nodes: Mapping[str, int],
        query: KeywordQuery,
        root: Optional[int] = None,
    ) -> Optional[Answer]:
        """Exact check: same contract as bkws' verifier."""
        if root is None:
            return None
        targets = {}
        for keyword in query:
            node = keyword_nodes.get(keyword)
            if node is None or graph.label(node) != keyword:
                return None
            targets[keyword] = node
        found = nearest_labeled_forward(
            graph, root, set(query.keywords), self.d_max
        )
        if found is None:
            return None
        # Verify the *given* nodes are reachable (distances via paths).
        score = 0
        for keyword, node in targets.items():
            path = shortest_path(graph, root, node, max_depth=self.d_max)
            if path is None:
                return None
            score += len(path) - 1
        return _materialize_tree(graph, root, targets, float(score), self.d_max)

    def best_answer_for_root(
        self, graph: Graph, root: int, query: KeywordQuery
    ) -> Optional[Answer]:
        """Minimal answer rooted at ``root`` (enables root-verify boosting)."""
        found = nearest_labeled_forward(
            graph, root, set(query.keywords), self.d_max
        )
        if found is None:
            return None
        keyword_nodes = {kw: v for kw, (_, v) in found.items()}
        score = float(sum(d for (d, _) in found.values()))
        return _materialize_tree(graph, root, keyword_nodes, score, self.d_max)


def _materialize_tree(
    graph: Graph,
    root: int,
    keyword_nodes: Dict[str, int],
    score: float,
    d_max: int,
) -> Answer:
    vertices: Set[int] = {root}
    edges: Set[Tuple[int, int]] = set()
    for node in keyword_nodes.values():
        path = shortest_path(graph, root, node, max_depth=d_max)
        if path is None:  # pragma: no cover
            continue
        vertices.update(path)
        edges.update(zip(path, path[1:]))
    return Answer.make(
        keyword_nodes, score=score, root=root, vertices=vertices, edges=edges
    )
