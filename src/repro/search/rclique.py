"""r-clique distance-based keyword search (``dkws``, Sec. 5.2).

Reproduces Kargar & An (PVLDB 2011): an answer to ``Q = {q_1, ..., q_n}``
is a set of vertices ``{u_1, ..., u_n}``, one per keyword, such that every
pair is within ``r`` hops of each other; answers are ranked by the total
pairwise distance (lower is better) and the top-k are returned via
branch-and-bound search-space decomposition.

Distances
---------
"All pairs of the vertices that contain the keywords are reachable to each
other within r hops" — we use undirected hop distance by default so
reachability is symmetric (matching the r-clique paper's treatment of
informative graphs); pass ``direction="forward"`` for strictly directed
semantics.  Either choice is preserved by bisimulation summaries
(Prop. 5.2 applies edgewise in both directions).

Neighbor index
--------------
Kargar & An precompute, for every vertex, the vertices within ``R`` hops
with their distances — the *neighbor list* the paper's Sec. 6.2 measures.
Its size is ``O(m * n)`` where ``m`` is the average neighborhood size; the
paper reports that on IMDB ``m ~ 105K`` making the list an estimated 16 TB,
so r-clique "can not handle the IMDB dataset".  :class:`NeighborIndex`
reproduces that behaviour with ``max_entries``: construction aborts with
:class:`NeighborIndexTooLarge` once the entry count exceeds the budget.

Top-k search
------------
The search space ``SP = (V_{q_1}, ..., V_{q_n})`` is explored Lawler-style
(Sec. 5.2 "search space decomposition"): a priority queue holds
``(SP, best answer of SP)`` pairs ordered by answer weight; popping emits
the answer and splits ``SP`` into ``n`` subspaces ``SP_i`` that fix the
first ``i-1`` choices and exclude ``u_i`` from ``V_{q_i}``, which
enumerates answers in non-decreasing weight without duplicates.  The best
answer of a space is found with the original polynomial-time greedy: try
each candidate for the first keyword, attach the nearest allowed candidate
for every other keyword, keep the lightest valid combination (a
2-approximation of the true minimum).
"""

from __future__ import annotations

import heapq
import itertools
import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graph.digraph import Graph
from repro.graph.traversal import bfs_distances
from repro.search.base import (
    USE_BOUND_K,
    Answer,
    GraphSearcher,
    KeywordQuery,
    KeywordSearchAlgorithm,
    top_k,
)
from repro.obs.runtime import OBS, charge_expansions
from repro.utils.budget import Budget
from repro.utils.errors import BigIndexError, BudgetExceeded, QueryError


class NeighborIndexTooLarge(BigIndexError):
    """Raised when the neighbor list would exceed its memory budget.

    Reproduces the paper's observation that r-clique's ``O(mn)`` neighbor
    list is infeasible on IMDB (estimated 16 TB).
    """


class NeighborIndex:
    """Per-vertex distances to all vertices within ``R`` hops.

    Parameters
    ----------
    graph:
        Graph to index.
    radius:
        Hop bound ``R``.
    direction:
        ``"both"`` (default) for undirected distances, ``"forward"`` for
        directed.
    max_entries:
        Abort with :class:`NeighborIndexTooLarge` when the total number of
        stored (vertex, neighbor) entries exceeds this budget.
    """

    def __init__(
        self,
        graph: Graph,
        radius: int,
        direction: str = "both",
        max_entries: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.radius = radius
        self.direction = direction
        self.neighbor_lists: List[Dict[int, int]] = []
        total = 0
        for v in graph.vertices():
            dist = bfs_distances(
                graph, [v], max_depth=radius, direction=direction
            )
            dist.pop(v, None)
            self.neighbor_lists.append(dist)
            total += len(dist)
            if max_entries is not None and total > max_entries:
                raise NeighborIndexTooLarge(
                    f"neighbor index exceeded {max_entries} entries at "
                    f"vertex {v}/{graph.num_vertices} "
                    f"(average neighborhood so far: {total / (v + 1):.0f})"
                )
        self.num_entries = total

    def distance(self, u: int, v: int) -> Optional[int]:
        """``dist(u, v)`` if within ``R`` hops, else ``None``."""
        if u == v:
            return 0
        return self.neighbor_lists[u].get(v)

    def average_neighborhood(self) -> float:
        """The paper's ``m``: average vertices within ``R`` hops."""
        n = self.graph.num_vertices
        return self.num_entries / n if n else 0.0


@dataclass(frozen=True)
class _SearchSpace:
    """One Lawler subspace: per-keyword fixed choice or exclusion set."""

    #: fixed[i] is the forced vertex for keyword i, or None.
    fixed: Tuple[Optional[int], ...]
    #: excluded[i] are vertices banned for keyword i.
    excluded: Tuple[FrozenSet[int], ...]


class RCliqueSearcher(GraphSearcher):
    """r-clique bound to one graph with its neighbor index built."""

    def __init__(
        self,
        graph: Graph,
        index: NeighborIndex,
        radius: int,
        k: Optional[int],
    ) -> None:
        super().__init__(graph)
        self.index = index
        self.radius = radius
        self.k = k

    def search(
        self,
        query: KeywordQuery,
        budget: Optional[Budget] = None,
        k: object = USE_BOUND_K,
    ) -> List[Answer]:
        """Top-k r-cliques by total pairwise distance (branch and bound)."""
        k = self._resolve_k(k)
        answers: List[Answer] = []
        try:
            for answer in self.iter_search(query, budget=budget):
                answers.append(answer)
                if k is not None and len(answers) >= k:
                    break
        except BudgetExceeded as exc:
            # Lawler decomposition emits in non-decreasing weight, so
            # every unseen clique weighs at least the last emitted weight.
            # Emitted answers *tying* that weight are dropped from the
            # proven prefix: an unseen clique could tie too, and the
            # prefix contract is strict (complete below the bound).
            lower_bound = answers[-1].score if answers else 0.0
            exc.partial = top_k(
                [a for a in answers if a.score < lower_bound], k
            )
            exc.lower_bound = lower_bound
            raise
        return top_k(answers, k)

    def iter_search(self, query: KeywordQuery, budget: Optional[Budget] = None):
        """Lazily yield r-cliques in non-decreasing weight order.

        This is the search-space decomposition loop itself; consuming it
        partially performs exactly as many ``best_answer`` computations as
        needed, which lets boost-dkws interleave specialization with
        decomposition (Sec. 5.2).  A budget is charged one unit per
        ``best_answer`` computation — the unit of work the paper's
        Sec. 5.2 decomposition counts.
        """
        keywords = list(query.keywords)
        keyword_sets: List[List[int]] = []
        for keyword in keywords:
            nodes = list(self.graph.sorted_vertices_with_label(keyword))
            if not nodes:
                return
            keyword_sets.append(nodes)

        root_space = _SearchSpace(
            fixed=tuple(None for _ in keywords),
            excluded=tuple(frozenset() for _ in keywords),
        )
        counter = itertools.count()
        heap: List[Tuple[float, int, _SearchSpace, Tuple[int, ...]]] = []
        charge_expansions(budget, 1)
        first = self._best_answer(keywords, keyword_sets, root_space)
        if first is not None:
            weight, assignment = first
            heapq.heappush(heap, (weight, next(counter), root_space, assignment))

        emitted: Set[Tuple[int, ...]] = set()
        while heap:
            weight, _, space, assignment = heapq.heappop(heap)
            if OBS.enabled:
                OBS.metrics.inc("search.heap_pops")
            if assignment not in emitted:
                emitted.add(assignment)
                yield Answer.make(
                    dict(zip(keywords, assignment)),
                    score=weight,
                    root=None,
                )
            for i in range(len(keywords)):
                fixed = list(space.fixed)
                excluded = [set(x) for x in space.excluded]
                for j in range(i):
                    fixed[j] = assignment[j]
                if fixed[i] is not None:
                    continue  # cannot exclude a fixed position
                excluded[i].add(assignment[i])
                subspace = _SearchSpace(
                    fixed=tuple(fixed),
                    excluded=tuple(frozenset(x) for x in excluded),
                )
                charge_expansions(budget, 1)
                best = self._best_answer(keywords, keyword_sets, subspace)
                if best is not None:
                    sub_weight, sub_assignment = best
                    heapq.heappush(
                        heap, (sub_weight, next(counter), subspace, sub_assignment)
                    )

    # ------------------------------------------------------------------
    def _allowed(
        self, keyword_sets: List[List[int]], space: _SearchSpace, i: int
    ) -> List[int]:
        if space.fixed[i] is not None:
            return [space.fixed[i]]  # type: ignore[list-item]
        banned = space.excluded[i]
        return [v for v in keyword_sets[i] if v not in banned]

    def _best_answer(
        self,
        keywords: List[str],
        keyword_sets: List[List[int]],
        space: _SearchSpace,
    ) -> Optional[Tuple[float, Tuple[int, ...]]]:
        """Greedy best answer of a subspace (Kargar & An's PTIME procedure).

        For each candidate of the first keyword, greedily attach the
        nearest allowed candidate of every other keyword, then validate the
        full pairwise constraint and weight.  Returns the lightest valid
        assignment or ``None``.
        """
        candidates_first = self._allowed(keyword_sets, space, 0)
        best: Optional[Tuple[float, Tuple[int, ...]]] = None
        for center in candidates_first:
            assignment: List[int] = [center]
            feasible = True
            for i in range(1, len(keywords)):
                allowed = self._allowed(keyword_sets, space, i)
                nearest = None
                nearest_d = None
                for v in allowed:
                    d = self.index.distance(center, v)
                    if d is None or d > self.radius:
                        continue
                    if nearest_d is None or d < nearest_d or (
                        d == nearest_d and v < nearest  # type: ignore[operator]
                    ):
                        nearest, nearest_d = v, d
                if nearest is None:
                    feasible = False
                    break
                assignment.append(nearest)
            if not feasible:
                continue
            weight = self._validate_weight(assignment)
            if weight is None:
                continue
            key = (weight, tuple(assignment))
            if best is None or key < best:
                best = key
        return best

    def _validate_weight(self, assignment: Sequence[int]) -> Optional[float]:
        """Total pairwise distance if all pairs are within R, else None."""
        total = 0
        for a, b in itertools.combinations(assignment, 2):
            d = self.index.distance(a, b)
            if d is None or d > self.radius:
                return None
            total += d
        return float(total)


class RClique(KeywordSearchAlgorithm):
    """The ``dkws`` algorithm: top-k r-cliques of keyword vertices.

    Parameters
    ----------
    radius:
        The ``r`` bound on every pairwise distance (paper experiments: 4).
    k:
        Number of answers; ``None`` enumerates every r-clique the
        decomposition reaches (use only on small graphs/tests).
    direction:
        Distance direction (see :class:`NeighborIndex`).
    max_index_entries:
        Memory budget for the neighbor index (reproduces the IMDB
        infeasibility result when exceeded).
    """

    name = "r-clique"

    def __init__(
        self,
        radius: int = 4,
        k: Optional[int] = 10,
        direction: str = "both",
        max_index_entries: Optional[int] = None,
    ) -> None:
        if radius < 0:
            raise QueryError("radius must be non-negative")
        self.radius = radius
        self.k = k
        self.direction = direction
        self.max_index_entries = max_index_entries
        # Per-graph neighbor indexes; binding a graph caches its index so
        # verification during BiG-index answer generation reuses it
        # (distance checks become O(1) lookups, as in the original system
        # where the neighbor list is the algorithm's persistent index).
        # Keyed by weak reference: an ``id()``-keyed dict would hand the
        # distances of a garbage-collected graph to whatever new graph
        # the allocator places at the same address.
        self._index_cache: "weakref.WeakKeyDictionary[Graph, NeighborIndex]" = (
            weakref.WeakKeyDictionary()
        )

    def _index_for(self, graph: Graph) -> Optional[NeighborIndex]:
        """The cached neighbor index for ``graph``, if it was bound."""
        return self._index_cache.get(graph)

    def bind(self, graph: Graph) -> RCliqueSearcher:
        """Build the neighbor index (may raise NeighborIndexTooLarge)."""
        index = self._index_cache.get(graph)
        if index is None:
            index = NeighborIndex(
                graph,
                self.radius,
                direction=self.direction,
                max_entries=self.max_index_entries,
            )
            self._index_cache[graph] = index
        return RCliqueSearcher(graph, index, self.radius, self.k)

    def verify(
        self,
        graph: Graph,
        keyword_nodes: Mapping[str, int],
        query: KeywordQuery,
        root: Optional[int] = None,
    ) -> Optional[Answer]:
        """Exact pairwise-distance check of a candidate clique on ``graph``."""
        nodes: List[int] = []
        for keyword in query:
            node = keyword_nodes.get(keyword)
            if node is None or graph.label(node) != keyword:
                return None
            nodes.append(node)
        cached = self._index_for(graph)
        total = 0
        if cached is not None:
            for a, b in itertools.combinations(nodes, 2):
                d = cached.distance(a, b)
                if d is None or d > self.radius:
                    return None
                total += d
        else:
            for idx, a in enumerate(nodes):
                dist = bfs_distances(
                    graph, [a], max_depth=self.radius, direction=self.direction
                )
                for b in nodes[idx + 1 :]:
                    d = dist.get(b) if a != b else 0
                    if d is None:
                        return None
                    total += d
        return Answer.make(dict(keyword_nodes), score=float(total), root=None)

    def enlarge_ok(
        self,
        graph: Graph,
        partial: Mapping[str, int],
        keyword: str,
        vertex: int,
        query: KeywordQuery,
    ) -> bool:
        """Prune candidates that already violate a pairwise bound.

        Checks the new vertex against every vertex already in the partial
        assignment with a bounded BFS.
        """
        if not partial:
            return True
        cached = self._index_for(graph)
        if cached is not None:
            for other in partial.values():
                if other != vertex and cached.distance(vertex, other) is None:
                    return False
            return True
        dist = bfs_distances(
            graph, [vertex], max_depth=self.radius, direction=self.direction
        )
        for other in partial.values():
            if other != vertex and other not in dist:
                return False
        return True
