"""Keyword search algorithms.

Implements the three algorithm families the paper plugs into BiG-index:

* :mod:`repro.search.banks` — BANKS-style backward keyword search
  (``bkws``, Sec. 5.1; Bhalotia et al., ICDE 2002).
* :mod:`repro.search.blinks` — Blinks ranked keyword search with
  single-level and bi-level indexes (``rkws``, Sec. 5.3; He et al.,
  SIGMOD 2007).
* :mod:`repro.search.rclique` — r-clique distance-based keyword search
  (``dkws``, Sec. 5.2; Kargar & An, PVLDB 2011).

Each exposes the :class:`~repro.search.base.KeywordSearchAlgorithm`
interface so BiG-index can evaluate it on any layer of the hierarchy.
"""

from repro.search.base import (
    Answer,
    GraphSearcher,
    KeywordQuery,
    KeywordSearchAlgorithm,
)
from repro.search.banks import BackwardKeywordSearch
from repro.search.bidirectional import BidirectionalSearch
from repro.search.blinks import Blinks, BlinksBiLevelIndex, BlinksSingleLevelIndex
from repro.search.rclique import RClique, NeighborIndex

__all__ = [
    "Answer",
    "GraphSearcher",
    "KeywordQuery",
    "KeywordSearchAlgorithm",
    "BackwardKeywordSearch",
    "BidirectionalSearch",
    "Blinks",
    "BlinksBiLevelIndex",
    "BlinksSingleLevelIndex",
    "RClique",
    "NeighborIndex",
]
