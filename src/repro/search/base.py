"""Common interfaces for keyword search algorithms.

The BiG-index framework (Def. 2.3) is generic over a keyword search
algorithm ``f``; it only assumes the index function is label- and
path-preserving.  The contract an algorithm must satisfy to plug into the
framework is captured by :class:`KeywordSearchAlgorithm`:

* :meth:`~KeywordSearchAlgorithm.bind` builds whatever per-graph index the
  algorithm needs (Blinks' bi-level index, r-clique's neighbor lists) and
  returns a :class:`GraphSearcher` that answers queries on *that* graph.
  Because summary graphs are "yet another set of graphs" (Sec. 1), the same
  ``bind`` works on any layer of the BiG-index hierarchy.
* :meth:`~KeywordSearchAlgorithm.verify` re-checks a candidate answer on
  the data graph and computes its exact score, used during answer
  generation (Sec. 4.2 Step 5 "answer generation and verification").
* :meth:`~KeywordSearchAlgorithm.enlarge_ok` is the algorithm-specific part
  of the vertex qualification function (Def. 4.2): a cheap necessary
  condition for adding one more specialized vertex to a partial answer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.graph.digraph import Graph
from repro.utils.budget import Budget
from repro.utils.errors import QueryError

#: Sentinel for ``GraphSearcher.search(k=...)``: use the searcher's own
#: bound ``self.k``.  Distinct from ``None``, which means "no cutoff".
USE_BOUND_K: object = object()


@dataclass(frozen=True)
class KeywordQuery:
    """A keyword query ``Q = {q_1, ..., q_n}``.

    Keywords are label strings; duplicates are rejected because the paper's
    query generalization requires ``|Gen^m(Q)| = |Q|`` (Def. 4.1) — distinct
    keywords must stay distinguishable.
    """

    keywords: Tuple[str, ...]

    def __init__(self, keywords: Iterable[str]) -> None:
        kw = tuple(keywords)
        if not kw:
            raise QueryError("keyword query must contain at least one keyword")
        if len(set(kw)) != len(kw):
            raise QueryError(f"duplicate keywords in query: {kw}")
        object.__setattr__(self, "keywords", kw)

    def __len__(self) -> int:
        return len(self.keywords)

    def __iter__(self):
        return iter(self.keywords)

    def generalized(self, mapping: Mapping[str, str]) -> "KeywordQuery":
        """Apply a label mapping to every keyword (used by Gen on queries)."""
        return KeywordQuery(mapping.get(k, k) for k in self.keywords)


@dataclass(frozen=True)
class Answer:
    """One answer graph.

    Attributes
    ----------
    keyword_nodes:
        Maps each query keyword to the matched vertex (the ``p_i`` leaves in
        the tree semantics, the clique members for r-clique).
    root:
        The answer root ``r`` for rooted-tree semantics; ``None`` for
        root-free semantics such as r-clique.
    vertices:
        Every vertex of the answer graph (root, keyword nodes, and
        connecting path vertices), sorted.
    edges:
        The answer graph's edges (a tree for bkws/Blinks; star paths for
        r-clique).
    score:
        The ranking score — lower is better (``sum dist(r, p_i)`` for tree
        semantics, total pairwise distance for r-clique).
    """

    keyword_nodes: Tuple[Tuple[str, int], ...]
    root: Optional[int]
    vertices: Tuple[int, ...]
    edges: Tuple[Tuple[int, int], ...]
    score: float

    @staticmethod
    def make(
        keyword_nodes: Mapping[str, int],
        score: float,
        root: Optional[int] = None,
        vertices: Optional[Iterable[int]] = None,
        edges: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> "Answer":
        """Normalized constructor: sorts members for canonical equality."""
        kw = tuple(sorted(keyword_nodes.items()))
        verts = set(keyword_nodes.values())
        if root is not None:
            verts.add(root)
        if vertices is not None:
            verts.update(vertices)
        return Answer(
            keyword_nodes=kw,
            root=root,
            vertices=tuple(sorted(verts)),
            edges=tuple(sorted(set(edges or ()))),
            score=score,
        )

    @property
    def keyword_node_map(self) -> Dict[str, int]:
        """The keyword->vertex assignment as a dict."""
        return dict(self.keyword_nodes)

    def signature(self) -> Tuple:
        """Canonical identity ignoring path vertices: (root, keyword nodes).

        Two answers with the same root and keyword assignment are the same
        logical answer even if materialized with different shortest paths;
        equality tests between ``eval`` and ``eval_Ont`` compare signatures.
        """
        return (self.root, self.keyword_nodes)


class GraphSearcher(ABC):
    """An algorithm bound to one graph (with its per-graph index built).

    Budgets and soundness
    ---------------------
    ``search``/``iter_search`` accept an optional
    :class:`~repro.utils.budget.Budget`.  A budgeted search charges the
    budget per node expansion; on exhaustion it raises
    :class:`~repro.utils.errors.BudgetExceeded` whose ``partial`` holds a
    *prefix-sound* answer list: sorted exact answers such that every
    answer the search did not reach scores at least the exception's
    ``lower_bound``.  ``partial`` therefore equals the unbudgeted
    search's ranking truncated at ``lower_bound``.
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    @abstractmethod
    def search(
        self,
        query: KeywordQuery,
        budget: Optional[Budget] = None,
        k: object = USE_BOUND_K,
    ) -> List[Answer]:
        """Answers of ``query`` on the bound graph, best (lowest) score first.

        ``k`` overrides the searcher's own top-k bound for this call only
        (``None`` = no cutoff); the default sentinel keeps ``self.k``.
        Passing ``k`` explicitly keeps searchers reentrant — nothing on
        ``self`` is mutated per call.
        """

    def _resolve_k(self, k: object) -> Optional[int]:
        """Resolve the ``k`` argument against the searcher's own bound."""
        if k is USE_BOUND_K:
            return getattr(self, "k", None)
        return k  # type: ignore[return-value]

    def iter_search(self, query: KeywordQuery, budget: Optional[Budget] = None):
        """Lazily yield answers in ascending score, ignoring any top-k cut.

        BiG-index's evaluator streams summary-layer answers through this:
        specialization is interleaved with enumeration (Sec. 5.2's
        boost-dkws decomposes the search space until enough *final*
        answers exist, not enough summary patterns).  The default runs the
        eager search un-truncated; algorithms with expensive enumeration
        (r-clique) override it with a true generator.
        """
        yield from self.search(query, budget=budget, k=None)


class KeywordSearchAlgorithm(ABC):
    """A keyword search semantics ``f`` pluggable into BiG-index."""

    #: short name used in benchmark tables ("bkws", "blinks", "r-clique").
    name: str = "abstract"

    @abstractmethod
    def bind(self, graph: Graph) -> GraphSearcher:
        """Build the per-graph index and return a searcher for ``graph``."""

    @abstractmethod
    def verify(
        self,
        graph: Graph,
        keyword_nodes: Mapping[str, int],
        query: KeywordQuery,
        root: Optional[int] = None,
    ) -> Optional[Answer]:
        """Exact-check a candidate on ``graph``; return the scored answer or None.

        ``keyword_nodes`` assigns each keyword of ``query`` to a concrete
        vertex; the method validates the algorithm's structural constraints
        (distance bounds, connectivity) and computes the exact score.
        """

    def enlarge_ok(
        self,
        graph: Graph,
        partial: Mapping[str, int],
        keyword: str,
        vertex: int,
        query: KeywordQuery,
    ) -> bool:
        """Cheap necessary condition for assigning ``vertex`` to ``keyword``.

        Called during answer generation to prune partial candidate
        assignments early (part of Def. 4.2's qualification).  The default
        accepts everything; algorithms override with distance checks.
        """
        return True

    def check_query(self, graph: Graph, query: KeywordQuery) -> None:
        """Raise :class:`QueryError` when a keyword matches no vertex."""
        for keyword in query:
            if not graph.vertices_with_label(keyword):
                raise QueryError(
                    f"keyword {keyword!r} does not occur in the graph"
                )


def top_k(answers: Sequence[Answer], k: Optional[int]) -> List[Answer]:
    """Deterministically sort answers and truncate to ``k``.

    Sorting is by (score, root, keyword nodes) so ties break identically
    across direct and BiG-index evaluation, which Prop. 5.3's
    ranking-preservation tests rely on.
    """
    ordered = sorted(answers, key=lambda a: (a.score, a.signature()))
    if k is None:
        return ordered
    return ordered[:k]
