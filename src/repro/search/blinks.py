"""Blinks: ranked keyword search with precomputed distance indexes.

Reproduces He et al. (SIGMOD 2007) as described in Sec. 5.3 of the paper
(``rkws``), with both index variants:

* **Single-level index** — for every label ``l``, a *keyword-node list* of
  the vertices that can reach an ``l``-labeled vertex within ``d_max``
  hops, sorted by distance, and a *node-keyword map* giving the exact
  distance ``dist(v, l)``.  Queries then cost almost nothing, but the
  index needs ``O(|V| * |Sigma|)`` space — the paper notes it is
  infeasible for large graphs, which is why the experiments use:
* **Bi-level index** — the graph is partitioned into blocks of roughly
  ``block_size`` vertices (the paper uses METIS with average block size
  1000; we use the deterministic BFS-grow partitioner).  Each block stores
  a *local keyword map* (intra-block node -> keyword distances) and its
  *portal* vertices.  Per query, each keyword's reachable set is computed
  at runtime by a bounded backward expansion over the graph — the
  intra-block maps bound the storage, and the expansion work is what
  queries pay.  That per-query traversal cost is exactly what shrinks
  when the same searcher runs on a BiG-index summary layer.

Search (both variants): cursors walk each query keyword's keyword-node
list in ascending distance order, round-robin (the paper's "expand each
keyword in a round-robin manner by traversing the vertex v backward in
the keyword-node list").  Every vertex popped is probed against the other
keywords' distance maps to decide whether it is an answer root; the search
stops when the top-k scores are proven final: the sum of the cursors'
current distances lower-bounds every undiscovered root's score.

The ranking function is pluggable via ``scr`` (Sec. 5.3's
``rank(a, Q, G, scr)`` API); the default is the distance sum used by the
paper's experiments.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.graph.digraph import Graph
from repro.graph.partition import Partition, partition_bfs_grow
from repro.graph.traversal import nearest_labeled_forward, shortest_path
from repro.search.base import (
    USE_BOUND_K,
    Answer,
    GraphSearcher,
    KeywordQuery,
    KeywordSearchAlgorithm,
    top_k,
)
from repro.obs.runtime import OBS, charge_expansions
from repro.utils.budget import Budget
from repro.utils.errors import BudgetExceeded, QueryError

#: ``scr``: maps per-keyword root distances to an answer score.
ScoreFunction = Callable[[Mapping[str, int]], float]

#: Per-keyword reachability: vertex -> (distance, nearest keyword vertex).
DistanceMap = Dict[int, Tuple[int, int]]


def distance_sum_score(distances: Mapping[str, int]) -> float:
    """The paper's default ``scr``: the sum of root-to-keyword distances."""
    return float(sum(distances.values()))


def _backward_distance_map(
    graph: Graph, sources: Sequence[int], d_max: int
) -> DistanceMap:
    """Multi-source backward BFS tracking the nearest source per vertex.

    The nearest source is canonical — on equal distance the smallest
    origin id wins — so index entries are independent of adjacency order.
    """
    in_neighbors = graph.csr().in_neighbors
    result: DistanceMap = {v: (0, v) for v in sources}
    frontier = sorted(sources)
    depth = 0
    while frontier and depth < d_max:
        reached: Dict[int, int] = {}
        for v in frontier:
            origin = result[v][1]
            for u in in_neighbors(v):
                if u in result:
                    continue
                prev = reached.get(u)
                if prev is None or origin < prev:
                    reached[u] = origin
        frontier = sorted(reached)
        for u in frontier:
            result[u] = (depth + 1, reached[u])
        depth += 1
    return result


class BlinksSingleLevelIndex:
    """Full keyword-node lists and node-keyword maps for every label.

    Parameters
    ----------
    graph:
        Graph to index.
    d_max:
        Distance bound; entries farther than this are not stored (keyword
        search semantics are bounded, Sec. 3.2).
    """

    kind = "single-level"

    def __init__(self, graph: Graph, d_max: int) -> None:
        self.graph = graph
        self.d_max = d_max
        #: label -> {vertex: (distance, nearest keyword vertex)}.
        self._maps: Dict[str, DistanceMap] = {}
        for label in sorted(graph.distinct_labels()):
            self._maps[label] = _backward_distance_map(
                graph, graph.sorted_vertices_with_label(label), d_max
            )

    @property
    def num_entries(self) -> int:
        """Total stored (vertex, keyword) pairs — the index's size metric."""
        return sum(len(m) for m in self._maps.values())

    def keyword_distances(self, label: str) -> DistanceMap:
        """The precomputed distance map of ``label`` (O(1))."""
        return self._maps.get(label, {})

    def keyword_cursor(self, label: str) -> Iterator[Tuple[int, int]]:
        """(distance, vertex) pairs for ``label`` in ascending distance."""
        entries = sorted(
            (dist, v) for v, (dist, _) in self.keyword_distances(label).items()
        )
        return iter(entries)

    def distance(self, vertex: int, label: str) -> Optional[int]:
        """Exact ``dist(vertex, label)`` if within ``d_max``, else ``None``."""
        entry = self.keyword_distances(label).get(vertex)
        return entry[0] if entry is not None else None


class BlinksBiLevelIndex:
    """Partitioned index: per-block local keyword maps + portals.

    The persistent structures are the partition, the portal set, and each
    block's local keyword map — whose sizes are what the Blinks paper
    reports; global reachability is *not* materialized.  Each query pays a
    bounded backward expansion per keyword (:meth:`keyword_distances`),
    which is the runtime cost BiG-index reduces by running the same
    searcher on a smaller summary graph.
    """

    kind = "bi-level"

    def __init__(self, graph: Graph, d_max: int, block_size: int = 1000) -> None:
        self.graph = graph
        self.d_max = d_max
        self.partition: Partition = partition_bfs_grow(graph, block_size)
        #: per block: {vertex: {label: intra-block distance}}.
        self.local_keyword_maps: List[Dict[int, Dict[str, int]]] = []
        self._build_local_maps()

    def _build_local_maps(self) -> None:
        for block_id in range(self.partition.num_blocks):
            members = set(self.partition.block_members(block_id))
            local: Dict[int, Dict[str, int]] = {v: {} for v in members}
            labels_here = sorted({self.graph.label(v) for v in members})
            for label in labels_here:
                sources = {v for v in members if self.graph.label(v) == label}
                dist = self._intra_block_backward_bfs(sources, members)
                for v, d in dist.items():
                    local[v][label] = d
            self.local_keyword_maps.append(local)

    def _intra_block_backward_bfs(
        self, sources: Set[int], members: Set[int]
    ) -> Dict[int, int]:
        in_neighbors = self.graph.csr().in_neighbors
        dist = {v: 0 for v in sources}
        frontier = sorted(sources)
        depth = 0
        while frontier and depth < self.d_max:
            next_frontier = []
            for v in frontier:
                for u in in_neighbors(v):
                    if u in members and u not in dist:
                        dist[u] = depth + 1
                        next_frontier.append(u)
            frontier = next_frontier
            depth += 1
        return dist

    @property
    def num_portals(self) -> int:
        """Number of portal vertices in the partition."""
        return len(self.partition.portals)

    @property
    def num_entries(self) -> int:
        """Stored (vertex, keyword) pairs across the block-local maps."""
        return sum(
            len(kw_map)
            for block in self.local_keyword_maps
            for kw_map in block.values()
        )

    def keyword_distances(self, label: str) -> DistanceMap:
        """Per-query bounded backward expansion from the label's vertices.

        Not cached: this is the runtime work a Blinks query performs
        (intra-block distances are already in the local maps; the global
        expansion resolves the portal crossings).
        """
        sources = self.graph.sorted_vertices_with_label(label)
        return _backward_distance_map(self.graph, sources, self.d_max)

    def keyword_cursor(self, label: str) -> Iterator[Tuple[int, int]]:
        """(distance, vertex) pairs for ``label`` in ascending distance."""
        entries = sorted(
            (dist, v) for v, (dist, _) in self.keyword_distances(label).items()
        )
        return iter(entries)

    def distance(self, vertex: int, label: str) -> Optional[int]:
        """Exact ``dist(vertex, label)``; prefers the local map's entry.

        Falls back to a global expansion when the block-local entry is
        missing or improvable through portals.
        """
        block_id = self.partition.block_of[vertex]
        local = self.local_keyword_maps[block_id].get(vertex, {})
        local_d = local.get(label)
        if local_d in (0, 1):
            return local_d  # cannot be improved by leaving the block
        entry = self.keyword_distances(label).get(vertex)
        return entry[0] if entry is not None else None


class _LazyBackwardCursor:
    """Level-by-level backward expansion of one keyword's reachable set.

    With a single-level index the distance map is precomputed and
    "expansion" is instantaneous; with the bi-level index each level
    performs real traversal work — the per-query cost the paper measures.
    """

    def __init__(self, graph: Graph, index, keyword: str, d_max: int) -> None:
        self.graph = graph
        self.keyword = keyword
        self.d_max = d_max
        self.depth = 0
        precomputed = getattr(index, "kind", None) == "single-level"
        if precomputed:
            self.settled: DistanceMap = dict(index.keyword_distances(keyword))
            self._levels: Dict[int, List[int]] = {}
            for v, (d, _) in self.settled.items():
                self._levels.setdefault(d, []).append(v)
            self._frontier: List[int] = []
            self._static = True
        else:
            sources = graph.sorted_vertices_with_label(keyword)
            self._in_neighbors = graph.csr().in_neighbors
            self.settled = {v: (0, v) for v in sources}
            self._levels = {0: list(sources)}
            self._frontier = list(sources)
            self._static = False

    @property
    def exhausted(self) -> bool:
        if self._static:
            return self.depth > max(self._levels, default=-1)
        return not self._frontier and self.depth > self.d_max

    def take_level(self, budget: Optional[Budget] = None) -> List[int]:
        """Vertices settled at the current depth; advances the cursor.

        A budget is charged one unit per vertex in the level *before*
        any expansion work, so exhaustion leaves the settled map and the
        stream's lower bound consistent.
        """
        charge_expansions(budget, len(self._levels.get(self.depth, [])))
        if OBS.enabled:
            OBS.metrics.inc("search.levels_expanded")
        if self._static:
            level = self._levels.get(self.depth, [])
            self.depth += 1
            return level
        level = self._levels.get(self.depth, [])
        # Expand one step backward to prepare the next level; the nearest
        # origin is canonical (smallest id on equal distance).
        if self.depth < self.d_max:
            reached: Dict[int, int] = {}
            in_neighbors = self._in_neighbors
            for v in self._frontier:
                origin = self.settled[v][1]
                for u in in_neighbors(v):
                    if u in self.settled:
                        continue
                    prev = reached.get(u)
                    if prev is None or origin < prev:
                        reached[u] = origin
            next_frontier = sorted(reached)
            for u in next_frontier:
                self.settled[u] = (self.depth + 1, reached[u])
            self._frontier = next_frontier
            self._levels[self.depth + 1] = next_frontier
        else:
            self._frontier = []
        self.depth += 1
        return level


class BlinksSearcher(GraphSearcher):
    """Blinks bound to one graph with its index built."""

    def __init__(
        self,
        graph: Graph,
        index,
        d_max: int,
        k: Optional[int],
        scr: ScoreFunction,
    ) -> None:
        super().__init__(graph)
        self.index = index
        self.d_max = d_max
        self.k = k
        self.scr = scr

    def search(
        self,
        query: KeywordQuery,
        budget: Optional[Budget] = None,
        k: object = USE_BOUND_K,
    ) -> List[Answer]:
        """Distinct-root top-k via round-robin backward expansion.

        Collects discovered answers and stops once the k-th best score is
        at most the stream's lower bound — every undiscovered root must
        then score worse.
        """
        k = self._resolve_k(k)
        answers: List[Answer] = []
        try:
            for answer in self.iter_search(query, budget=budget):
                answers.append(answer)
                if k is not None and len(answers) >= k:
                    kth = sorted(a.score for a in answers)[k - 1]
                    if kth <= self.stream_lower_bound:
                        break
        except BudgetExceeded as exc:
            # Unseen roots score at least the stream bound, so the
            # emitted answers strictly below it are a ranking prefix.
            lower_bound = self.stream_lower_bound
            exc.partial = top_k(
                [a for a in answers if a.score < lower_bound], k
            )
            exc.lower_bound = lower_bound
            raise
        return top_k(answers, k)

    #: Lower bound on the score of every answer the current / most recent
    #: ``iter_search`` stream has not yielded yet.  Consumers use it for
    #: sound early termination without requiring a fully sorted stream.
    stream_lower_bound: float = 0.0

    def iter_search(self, query: KeywordQuery, budget: Optional[Budget] = None):
        """Lazily yield distinct-root answers as they are discovered.

        Yields are *not* globally score-sorted (sorting would force full
        expansion before the first emission); instead
        :attr:`stream_lower_bound` always holds a sound lower bound on
        every unseen answer's score: a root not yet yielded is missing
        from at least one cursor's settled set, so its score is at least
        that cursor's next depth — at least the minimum active depth.
        """
        self.stream_lower_bound = 0.0
        cursors: Dict[str, _LazyBackwardCursor] = {}
        for keyword in query:
            cursor = _LazyBackwardCursor(self.graph, self.index, keyword, self.d_max)
            if not cursor.settled:
                self.stream_lower_bound = float("inf")
                return
            cursors[keyword] = cursor

        keywords = list(query.keywords)
        emitted: Set[int] = set()

        def settled_everywhere(v: int) -> Optional[Dict[str, Tuple[int, int]]]:
            info = {}
            for kw in keywords:
                entry = cursors[kw].settled.get(v)
                if entry is None:
                    return None
                info[kw] = entry
            return info

        while True:
            active = [kw for kw in keywords if not cursors[kw].exhausted]
            if not active:
                break
            # Round-robin: advance the cursor with the smallest depth
            # (ties by keyword order), the paper's expansion strategy.
            keyword = min(active, key=lambda kw: cursors[kw].depth)
            cursor = cursors[keyword]
            for vertex in cursor.take_level(budget):
                if vertex in emitted:
                    continue
                info = settled_everywhere(vertex)
                if info is not None:
                    emitted.add(vertex)
                    score = self.scr({kw: d for kw, (d, _) in info.items()})
                    yield self._materialize(vertex, info, score)
            active_now = [c for c in cursors.values() if not c.exhausted]
            self.stream_lower_bound = (
                min(c.depth for c in active_now) if active_now else float("inf")
            )
        self.stream_lower_bound = float("inf")

    def _materialize(
        self, root: int, info: Mapping[str, Tuple[int, int]], score: float
    ) -> Answer:
        keyword_nodes = {kw: origin for kw, (_, origin) in info.items()}
        return _materialize_tree(
            self.graph, root, keyword_nodes, score, self.d_max
        )


class Blinks(KeywordSearchAlgorithm):
    """The ``rkws`` algorithm: Blinks ranked keyword search.

    Parameters
    ----------
    d_max:
        Distance bound (the paper's pruning threshold ``tau_prune``; set to
        5 in Sec. 6.2).
    k:
        Top-k answers; ``None`` returns all qualifying roots.
    index_kind:
        ``"bi-level"`` (default, as in the paper's experiments) or
        ``"single-level"``.
    block_size:
        Average partition block size for the bi-level index (paper: 1000).
    scr:
        Score function over per-keyword root distances (default: sum).
    """

    name = "blinks"

    def __init__(
        self,
        d_max: int = 5,
        k: Optional[int] = None,
        index_kind: str = "bi-level",
        block_size: int = 1000,
        scr: ScoreFunction = distance_sum_score,
    ) -> None:
        if index_kind not in ("bi-level", "single-level"):
            raise QueryError(f"unknown Blinks index kind: {index_kind!r}")
        self.d_max = d_max
        self.k = k
        self.index_kind = index_kind
        self.block_size = block_size
        self.scr = scr

    def bind(self, graph: Graph) -> BlinksSearcher:
        """Build the configured index over ``graph`` and return a searcher."""
        if self.index_kind == "single-level":
            index = BlinksSingleLevelIndex(graph, self.d_max)
        else:
            index = BlinksBiLevelIndex(graph, self.d_max, self.block_size)
        return BlinksSearcher(graph, index, self.d_max, self.k, self.scr)

    def verify(
        self,
        graph: Graph,
        keyword_nodes: Mapping[str, int],
        query: KeywordQuery,
        root: Optional[int] = None,
    ) -> Optional[Answer]:
        """Exact-check a root + keyword-node assignment on ``graph``."""
        if root is None:
            return None
        targets = {}
        for keyword in query:
            node = keyword_nodes.get(keyword)
            if node is None or graph.label(node) != keyword:
                return None
            targets[keyword] = node
        found = _forward_distances_until(graph, root, set(targets.values()), self.d_max)
        distances: Dict[str, int] = {}
        for keyword, node in targets.items():
            d = found.get(node)
            if d is None:
                return None
            distances[keyword] = d
        return _materialize_tree(
            graph, root, dict(targets), self.scr(distances), self.d_max
        )

    def best_answer_for_root(
        self, graph: Graph, root: int, query: KeywordQuery
    ) -> Optional[Answer]:
        """Minimal-score answer rooted at ``root`` (used by boost-rkws).

        One forward BFS from the root that stops as soon as every keyword
        has been seen (or ``d_max`` is reached), so verification of a good
        candidate root touches a small ball.
        """
        found = nearest_labeled_forward(graph, root, set(query.keywords), self.d_max)
        if found is None:
            return None
        distances = {kw: d for kw, (d, _) in found.items()}
        keyword_nodes = {kw: v for kw, (_, v) in found.items()}
        return _materialize_tree(
            graph, root, keyword_nodes, self.scr(distances), self.d_max
        )


def _forward_distances_until(
    graph: Graph, root: int, targets: Set[int], d_max: int
) -> Dict[int, int]:
    """Forward BFS from ``root``, stopping once every target is settled."""
    out_neighbors = graph.csr().out_neighbors
    dist: Dict[int, int] = {root: 0}
    remaining = set(targets) - {root}
    frontier = [root]
    depth = 0
    while frontier and remaining and depth < d_max:
        next_frontier: List[int] = []
        for v in frontier:
            for w in out_neighbors(v):
                if w not in dist:
                    dist[w] = depth + 1
                    remaining.discard(w)
                    next_frontier.append(w)
        frontier = next_frontier
        depth += 1
    return {t: dist[t] for t in targets if t in dist}


def _materialize_tree(
    graph: Graph,
    root: int,
    keyword_nodes: Dict[str, int],
    score: float,
    d_max: int,
) -> Answer:
    """Answer tree from root-to-keyword shortest paths."""
    vertices: Set[int] = {root}
    edges: Set[Tuple[int, int]] = set()
    for node in keyword_nodes.values():
        path = shortest_path(graph, root, node, max_depth=d_max)
        if path is None:  # pragma: no cover - callers guarantee reachability
            continue
        vertices.update(path)
        edges.update(zip(path, path[1:]))
    return Answer.make(
        keyword_nodes, score=score, root=root, vertices=vertices, edges=edges
    )
