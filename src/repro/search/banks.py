"""BANKS-style backward keyword search (``bkws``, Sec. 5.1).

Semantics (Sec. 2, "Exact keyword search")
------------------------------------------
A query is ``(Q, d_max)``.  A match is a subtree ``T = {r, p_1, ..., p_n}``
of ``G`` rooted at ``r`` where each ``p_i`` is a leaf labeled ``q_i`` and
``dist(r, p_i) <= d_max`` (directed distance from the root).  Answers are
*distinct-root*: for each qualifying root the match minimizing
``sum_i dist(r, p_i)`` is reported, and answers are ranked by that sum.

Algorithm (Bhalotia et al., reproduced from Sec. 5.1)
-----------------------------------------------------
* *Initialization*: for each keyword ``q_i``, ``V_{q_i}`` is the set of
  vertices labeled ``q_i``.
* *Backward expansion*: iteratively grow per-keyword backward BFS frontiers
  (following in-edges) from ``V_{q_i}``.  In each step the keyword whose
  visited set ``V_i`` is smallest expands one frontier level — the paper's
  "the vertex set with the minimal size is processed" heuristic.
* *Answer discovery*: a vertex settled by every expansion is an answer root;
  its score is the sum of its per-keyword distances, which are exact
  because BFS settles vertices in distance order.

Expansion is bounded by ``d_max`` hops so the whole search touches only the
union of the keywords' ``d_max``-balls — the locality BiG-index exploits
when the same code runs on a much smaller summary graph.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graph.digraph import Graph
from repro.graph.traversal import (
    bfs_distances,
    nearest_labeled_forward,
    shortest_path,
)
from repro.search.base import (
    USE_BOUND_K,
    Answer,
    GraphSearcher,
    KeywordQuery,
    KeywordSearchAlgorithm,
    top_k,
)
from repro.obs.runtime import OBS, charge_expansions
from repro.utils.budget import Budget
from repro.utils.errors import BudgetExceeded, QueryError


class _BackwardExpansion:
    """Backward BFS from one keyword's vertex set, expandable level by level."""

    def __init__(self, graph: Graph, sources: Sequence[int], d_max: int) -> None:
        self.graph = graph
        self.d_max = d_max
        self._in_neighbors = graph.csr().in_neighbors
        #: settled vertex -> distance to the nearest source.
        self.dist: Dict[int, int] = {v: 0 for v in sources}
        #: settled vertex -> the nearest source vertex itself.
        self.origin: Dict[int, int] = {v: v for v in sources}
        self._frontier: List[int] = sorted(sources)
        self.depth = 0

    @property
    def exhausted(self) -> bool:
        """Whether the expansion has reached ``d_max`` or run out of frontier."""
        return not self._frontier or self.depth >= self.d_max

    def expand_level(self, budget: Optional[Budget] = None) -> List[int]:
        """Advance one BFS level backward; returns the newly settled vertices.

        Origins are canonical: when several frontier vertices reach the
        same new vertex, the smallest origin wins, so every equal-distance
        tie resolves to the minimum source vertex id (by induction each
        frontier vertex already carries its minimal origin).  Cross-mode
        answer comparison relies on this determinism.

        A budget is charged one unit per frontier vertex *before* the
        level expands, so exhaustion leaves the settled maps consistent
        at the previous depth — the basis of the prefix-soundness proof.
        """
        if self.exhausted:
            return []
        charge_expansions(budget, len(self._frontier))
        if OBS.enabled:
            OBS.metrics.inc("search.levels_expanded")
        reached: Dict[int, int] = {}
        in_neighbors = self._in_neighbors
        for v in self._frontier:
            origin = self.origin[v]
            for u in in_neighbors(v):
                if u in self.dist:
                    continue
                prev = reached.get(u)
                if prev is None or origin < prev:
                    reached[u] = origin
        next_frontier = sorted(reached)
        for u in next_frontier:
            self.dist[u] = self.depth + 1
            self.origin[u] = reached[u]
        self._frontier = next_frontier
        self.depth += 1
        return next_frontier

    def run_to_completion(self) -> None:
        """Expand until exhausted (used when all answers are requested)."""
        while not self.exhausted:
            self.expand_level()


class BanksSearcher(GraphSearcher):
    """Backward search bound to one graph (bkws keeps no persistent index)."""

    def __init__(self, graph: Graph, d_max: int, k: Optional[int]) -> None:
        super().__init__(graph)
        self.d_max = d_max
        self.k = k

    def search(
        self,
        query: KeywordQuery,
        budget: Optional[Budget] = None,
        k: object = USE_BOUND_K,
    ) -> List[Answer]:
        """Distinct-root answers ranked by total root-to-keyword distance."""
        k = self._resolve_k(k)
        expansions: Dict[str, _BackwardExpansion] = {}
        for keyword in query:
            sources = self.graph.sorted_vertices_with_label(keyword)
            if not sources:
                return []
            expansions[keyword] = _BackwardExpansion(
                self.graph, sources, self.d_max
            )

        # Expand the smallest visited set first (paper's strategy) until all
        # expansions are exhausted.  Exhaustive expansion is required for
        # distinct-root completeness; top-k truncation happens at the end
        # (early termination for k answers is exercised by the BiG-index
        # evaluator instead, Sec. 4.3.4).
        active = list(query.keywords)
        try:
            while active:
                active.sort(key=lambda kw: len(expansions[kw].dist))
                keyword = active[0]
                expansions[keyword].expand_level(budget)
                active = [kw for kw in active if not expansions[kw].exhausted]
        except BudgetExceeded as exc:
            lower_bound = _unseen_lower_bound(expansions)
            exc.partial = top_k(
                self._collect_answers(query, expansions, below=lower_bound),
                k,
            )
            exc.lower_bound = lower_bound
            raise

        answers = self._collect_answers(query, expansions)
        return top_k(answers, k)

    def _collect_answers(
        self,
        query: KeywordQuery,
        expansions: Mapping[str, _BackwardExpansion],
        below: float = float("inf"),
    ) -> List[Answer]:
        """Answers among the settled roots with score strictly below ``below``.

        A root settled by every expansion carries exact distances (BFS
        settles in distance order), so each returned answer's score is
        exact even when the expansions were interrupted mid-way.
        """
        keywords = list(query.keywords)
        first = expansions[keywords[0]]
        candidate_roots = set(first.dist)
        for keyword in keywords[1:]:
            candidate_roots &= set(expansions[keyword].dist)
        answers = []
        for root in candidate_roots:
            keyword_nodes = {
                keyword: expansions[keyword].origin[root] for keyword in keywords
            }
            score = sum(expansions[keyword].dist[root] for keyword in keywords)
            if score >= below:
                continue
            answers.append(
                _materialize_tree(self.graph, root, keyword_nodes, score, self.d_max)
            )
        return answers


def _unseen_lower_bound(
    expansions: Mapping[str, _BackwardExpansion],
) -> float:
    """Sound lower bound on the score of any root not settled everywhere.

    A root missing from a still-active expansion is at distance at least
    that expansion's next depth, so its score is at least ``depth + 1``.
    Exhausted expansions impose no bound: a root missing from one is not
    an answer at all (beyond ``d_max`` or unreachable).  Conversely every
    root scoring strictly below the bound is settled by all expansions,
    which makes the interrupted answer set an exact ranking prefix.
    """
    active = [e for e in expansions.values() if not e.exhausted]
    if not active:
        return float("inf")
    return float(min(e.depth + 1 for e in active))


class BackwardKeywordSearch(KeywordSearchAlgorithm):
    """The ``bkws`` algorithm: distinct-root backward keyword search.

    Parameters
    ----------
    d_max:
        Hop bound on every root-to-keyword distance.
    k:
        Number of answers to return; ``None`` returns all (used by the
        equivalence tests between ``eval`` and ``eval_Ont``).
    """

    name = "bkws"

    def __init__(self, d_max: int = 3, k: Optional[int] = None) -> None:
        if d_max < 0:
            raise QueryError("d_max must be non-negative")
        self.d_max = d_max
        self.k = k

    def bind(self, graph: Graph) -> BanksSearcher:
        """bkws has no persistent index; binding is O(1)."""
        return BanksSearcher(graph, self.d_max, self.k)

    def verify(
        self,
        graph: Graph,
        keyword_nodes: Mapping[str, int],
        query: KeywordQuery,
        root: Optional[int] = None,
    ) -> Optional[Answer]:
        """Check a root + keyword-node assignment on ``graph`` exactly.

        Requires each node to carry its keyword's label and to be within
        ``d_max`` of the root (directed).  Returns the scored, materialized
        answer tree or ``None``.
        """
        if root is None:
            return None
        dist_from_root = bfs_distances(
            graph, [root], max_depth=self.d_max, direction="forward"
        )
        score = 0
        for keyword in query:
            node = keyword_nodes.get(keyword)
            if node is None or graph.label(node) != keyword:
                return None
            d = dist_from_root.get(node)
            if d is None:
                return None
            score += d
        return _materialize_tree(graph, root, dict(keyword_nodes), score, self.d_max)

    def best_answer_for_root(
        self, graph: Graph, root: int, query: KeywordQuery
    ) -> Optional[Answer]:
        """The minimal-score answer rooted at ``root``, or ``None``.

        One forward BFS from the root finds the nearest vertex of each
        keyword label, stopping as soon as every keyword is found; used by
        the BiG-index evaluator to verify candidate roots coming out of
        specialization.
        """
        found = nearest_labeled_forward(
            graph, root, set(query.keywords), self.d_max
        )
        if found is None:
            return None
        keyword_nodes = {kw: v for kw, (_, v) in found.items()}
        score = sum(d for (d, _) in found.values())
        return _materialize_tree(graph, root, keyword_nodes, score, self.d_max)


def _materialize_tree(
    graph: Graph,
    root: int,
    keyword_nodes: Dict[str, int],
    score: float,
    d_max: int,
) -> Answer:
    """Build the answer tree: union of shortest root-to-keyword paths."""
    vertices: Set[int] = {root}
    edges: Set[Tuple[int, int]] = set()
    for node in keyword_nodes.values():
        path = shortest_path(graph, root, node, max_depth=d_max)
        if path is None:  # pragma: no cover - callers guarantee reachability
            continue
        vertices.update(path)
        edges.update(zip(path, path[1:]))
    return Answer.make(
        keyword_nodes,
        score=score,
        root=root,
        vertices=vertices,
        edges=edges,
    )
