"""Directed labeled graph substrate.

This package implements the data-graph model of Sec. 2 of the paper: a
directed graph :math:`G = (V, E, L, \\Sigma)` with a label per vertex, plus
the traversal primitives (BFS, bounded shortest distances, reachability),
serialization, r-hop subgraph sampling (used by the index cost model), and a
BFS-grow partitioner standing in for METIS (used by the Blinks bi-level
index).
"""

from repro.graph.digraph import Graph, LabelTable
from repro.graph.traversal import (
    bfs_distances,
    bfs_layers,
    bidirectional_distance,
    bounded_distance,
    is_connected_subset,
    reachable_within,
    shortest_path,
)
from repro.graph.sampling import sample_neighborhood, sample_neighborhoods
from repro.graph.partition import partition_bfs_grow, Partition
from repro.graph.io import (
    load_graph_tsv,
    save_graph_tsv,
    graph_from_edge_list,
)

__all__ = [
    "Graph",
    "LabelTable",
    "bfs_distances",
    "bfs_layers",
    "bidirectional_distance",
    "bounded_distance",
    "is_connected_subset",
    "reachable_within",
    "shortest_path",
    "sample_neighborhood",
    "sample_neighborhoods",
    "partition_bfs_grow",
    "Partition",
    "load_graph_tsv",
    "save_graph_tsv",
    "graph_from_edge_list",
]
