"""Graph traversal primitives.

All keyword-search algorithms reproduced in :mod:`repro.search` are built on
unweighted breadth-first traversals: backward expansion (BANKS, Blinks) and
bounded shortest distances (r-clique, answer verification).  The helpers here
take a ``direction`` argument because the paper's algorithms mix forward
("can this root reach the keyword?") and backward ("which vertices reach the
keyword node?") searches.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph.digraph import Graph
from repro.utils.errors import GraphError

#: Traversal direction constants.
FORWARD = "forward"
BACKWARD = "backward"
BOTH = "both"


def _neighbor_fn(graph: Graph, direction: str):
    # Traversals read the frozen CSR snapshot: contiguous int arrays beat
    # per-vertex adjacency lists, and ``graph.csr()`` rebuilds lazily after
    # any mutation, so a traversal started later always sees fresh edges.
    csr = graph.csr()
    if direction == FORWARD:
        return csr.out_neighbors
    if direction == BACKWARD:
        return csr.in_neighbors
    if direction == BOTH:
        # Splat instead of `+`: neighbor slices are memoryviews on an
        # mmap-loaded graph, and memoryview has no concatenation.
        return lambda v: [*csr.out_neighbors(v), *csr.in_neighbors(v)]
    raise GraphError(f"unknown traversal direction: {direction!r}")


def bfs_distances(
    graph: Graph,
    sources: Iterable[int],
    max_depth: Optional[int] = None,
    direction: str = FORWARD,
) -> Dict[int, int]:
    """Unweighted shortest distances from a set of sources.

    Parameters
    ----------
    graph:
        The graph to traverse.
    sources:
        One or more start vertices; distances are to the *nearest* source.
    max_depth:
        Stop expanding past this hop count (inclusive).  ``None`` explores
        everything reachable.
    direction:
        ``"forward"`` follows out-edges, ``"backward"`` in-edges, ``"both"``
        treats the graph as undirected.

    Returns
    -------
    dict
        Map of reached vertex -> hop distance (sources map to 0).
    """
    neighbors = _neighbor_fn(graph, direction)
    dist: Dict[int, int] = {}
    queue: deque = deque()
    for s in sources:
        if s not in dist:
            dist[s] = 0
            queue.append(s)
    while queue:
        v = queue.popleft()
        d = dist[v]
        if max_depth is not None and d >= max_depth:
            continue
        for w in neighbors(v):
            if w not in dist:
                dist[w] = d + 1
                queue.append(w)
    return dist


def bfs_layers(
    graph: Graph,
    source: int,
    max_depth: Optional[int] = None,
    direction: str = FORWARD,
) -> List[List[int]]:
    """BFS grouped by depth: ``result[d]`` lists vertices at distance ``d``."""
    dist = bfs_distances(graph, [source], max_depth=max_depth, direction=direction)
    if not dist:
        return []
    depth = max(dist.values())
    layers: List[List[int]] = [[] for _ in range(depth + 1)]
    for v, d in dist.items():
        layers[d].append(v)
    for layer in layers:
        layer.sort()
    return layers


def reachable_within(
    graph: Graph,
    source: int,
    hops: int,
    direction: str = FORWARD,
) -> Set[int]:
    """Vertices reachable from ``source`` within ``hops`` edges.

    Used by the cost-model sampler (Sec. 3.2): sample graphs are the
    node-induced subgraphs of such r-hop balls.
    """
    return set(bfs_distances(graph, [source], max_depth=hops, direction=direction))


def bounded_distance(
    graph: Graph,
    source: int,
    target: int,
    max_depth: Optional[int] = None,
    direction: str = FORWARD,
) -> Optional[int]:
    """Shortest distance from ``source`` to ``target``; ``None`` if farther
    than ``max_depth`` (or unreachable)."""
    if source == target:
        return 0
    neighbors = _neighbor_fn(graph, direction)
    dist: Dict[int, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        v = queue.popleft()
        d = dist[v]
        if max_depth is not None and d >= max_depth:
            continue
        for w in neighbors(v):
            if w in dist:
                continue
            if w == target:
                return d + 1
            dist[w] = d + 1
            queue.append(w)
    return None


def bidirectional_distance(
    graph: Graph,
    source: int,
    target: int,
    max_depth: Optional[int] = None,
) -> Optional[int]:
    """Directed shortest distance via simultaneous forward/backward BFS.

    The forward frontier grows from ``source`` along out-edges and the
    backward frontier from ``target`` along in-edges; they meet in the
    middle.  This mirrors the bidirectional traversal motivating Example 1.1
    of the paper and is asymptotically faster than one-sided BFS on
    small-world graphs.
    """
    if source == target:
        return 0
    csr = graph.csr()
    fwd: Dict[int, int] = {source: 0}
    bwd: Dict[int, int] = {target: 0}
    fwd_frontier: List[int] = [source]
    bwd_frontier: List[int] = [target]
    best: Optional[int] = None
    while fwd_frontier and bwd_frontier:
        # Expand the smaller frontier, a standard bidirectional heuristic.
        expand_forward = len(fwd_frontier) <= len(bwd_frontier)
        if expand_forward:
            frontier, dist, other = fwd_frontier, fwd, bwd
            neighbors = csr.out_neighbors
        else:
            frontier, dist, other = bwd_frontier, bwd, fwd
            neighbors = csr.in_neighbors
        next_frontier: List[int] = []
        for v in frontier:
            d = dist[v]
            if max_depth is not None and d >= max_depth:
                continue
            for w in neighbors(v):
                if w in dist:
                    continue
                dist[w] = d + 1
                if w in other:
                    candidate = d + 1 + other[w]
                    if best is None or candidate < best:
                        best = candidate
                next_frontier.append(w)
        if expand_forward:
            fwd_frontier = next_frontier
        else:
            bwd_frontier = next_frontier
        if best is not None:
            # The frontiers have met; any shorter path would already have
            # been found because BFS expands in distance order.
            min_pending = min(
                (fwd[v] for v in fwd_frontier), default=best
            ) + min((bwd[v] for v in bwd_frontier), default=best)
            if min_pending >= best:
                break
    if best is not None and max_depth is not None and best > max_depth:
        return None
    return best


def shortest_path(
    graph: Graph,
    source: int,
    target: int,
    max_depth: Optional[int] = None,
    direction: str = FORWARD,
) -> Optional[List[int]]:
    """One shortest path from ``source`` to ``target`` as a vertex list.

    Used during answer-graph materialization: BANKS-style answers are trees
    of root-to-keyword shortest paths.
    """
    if source == target:
        return [source]
    neighbors = _neighbor_fn(graph, direction)
    parent: Dict[int, int] = {source: source}
    dist: Dict[int, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        v = queue.popleft()
        d = dist[v]
        if max_depth is not None and d >= max_depth:
            continue
        for w in neighbors(v):
            if w in parent:
                continue
            parent[w] = v
            dist[w] = d + 1
            if w == target:
                path = [w]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(w)
    return None


def nearest_labeled_forward(
    graph: Graph, root: int, keywords: Set[str], d_max: int
) -> Optional[Dict[str, Tuple[int, int]]]:
    """Forward BFS recording the nearest vertex of each keyword label.

    Stops as soon as every keyword has been found (so verifying a good
    candidate answer root touches a small ball); returns ``None`` if any
    keyword is unreachable within ``d_max``.  Result maps each keyword to
    ``(distance, vertex)``.

    Ties are canonical: among equal-distance matches of a keyword the
    smallest vertex id wins, so direct evaluation and BiG-index
    root-verification produce identical answer signatures (the
    differential oracle compares them vertex-for-vertex).
    """
    found: Dict[str, Tuple[int, int]] = {}
    remaining = set(keywords)
    root_label = graph.label(root)
    if root_label in remaining:
        found[root_label] = (0, root)
        remaining.discard(root_label)
    dist: Dict[int, int] = {root: 0}
    frontier = [root]
    depth = 0
    out_neighbors = graph.csr().out_neighbors
    while frontier and remaining and depth < d_max:
        next_frontier: List[int] = []
        for v in frontier:
            for w in out_neighbors(v):
                if w in dist:
                    continue
                dist[w] = depth + 1
                next_frontier.append(w)
        # Resolve keyword matches after the whole level is settled so the
        # choice does not depend on adjacency-list order.
        for w in next_frontier:
            label = graph.label(w)
            if label in remaining:
                best = found.get(label)
                if best is None or w < best[1]:
                    found[label] = (depth + 1, w)
        remaining -= found.keys()
        frontier = next_frontier
        depth += 1
    if remaining:
        return None
    return found


def is_connected_subset(
    graph: Graph, vertex_subset: Sequence[int], direction: str = BOTH
) -> bool:
    """Whether ``vertex_subset`` induces a connected subgraph.

    Answer graphs must be connected (Sec. 5.1); verification uses the
    undirected sense by default.
    """
    members = set(vertex_subset)
    if not members:
        return True
    start = next(iter(members))
    neighbors = _neighbor_fn(graph, direction)
    seen = {start}
    queue: deque = deque([start])
    while queue:
        v = queue.popleft()
        for w in neighbors(v):
            if w in members and w not in seen:
                seen.add(w)
                queue.append(w)
    return seen == members


def pairwise_distances_within(
    graph: Graph,
    vertex_subset: Sequence[int],
    max_depth: Optional[int] = None,
) -> Dict[Tuple[int, int], Optional[int]]:
    """All-pairs directed distances among a small vertex set.

    r-clique answer verification needs every pairwise distance to be at most
    ``R`` (Sec. 5.2); ``None`` marks pairs farther than ``max_depth``.
    """
    result: Dict[Tuple[int, int], Optional[int]] = {}
    for u in vertex_subset:
        dist = bfs_distances(graph, [u], max_depth=max_depth, direction=FORWARD)
        for v in vertex_subset:
            if u == v:
                continue
            result[(u, v)] = dist.get(v)
    return result
