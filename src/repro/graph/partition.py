"""Balanced graph partitioning (METIS substitute).

The Blinks bi-level index (Sec. 5.3 / 6.2) partitions the data graph into
blocks of roughly constant size (the paper uses METIS with average block
size 1000) and stores intra-block distance indexes plus *portal* vertices —
vertices incident to an edge that crosses blocks.

METIS is a native library we neither ship nor need at reproduction scale, so
this module implements a deterministic BFS-grow partitioner: repeatedly seed
an unassigned vertex and grow a block breadth-first (ignoring direction)
until the block reaches the target size.  Blocks are therefore connected in
the undirected sense whenever the graph region is, which is the property the
bi-level index actually relies on; edge-cut quality only shifts constants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.graph.digraph import Graph
from repro.utils.errors import GraphError


@dataclass
class Partition:
    """A disjoint partition of a graph's vertices into numbered blocks."""

    #: block id for every vertex (dense list indexed by vertex id).
    block_of: List[int]
    #: vertex lists per block.
    blocks: List[List[int]]
    #: portal vertices: endpoints of edges crossing block boundaries.
    portals: Set[int] = field(default_factory=set)

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the partition."""
        return len(self.blocks)

    def block_members(self, block_id: int) -> List[int]:
        """The vertices of one block."""
        try:
            return self.blocks[block_id]
        except IndexError:
            raise GraphError(f"unknown block id: {block_id}") from None

    def is_portal(self, v: int) -> bool:
        """Whether ``v`` touches an inter-block edge."""
        return v in self.portals

    def cut_edges(self, graph: Graph) -> List[Tuple[int, int]]:
        """All edges whose endpoints live in different blocks.

        Sorted by ``(src, dst)`` so the ordering is deterministic no
        matter how the graph stores adjacency — shard planning and the
        sharded manifest digests both key off this list.
        """
        return sorted(
            (u, v)
            for (u, v) in graph.edges()
            if self.block_of[u] != self.block_of[v]
        )


def partition_bfs_grow(graph: Graph, target_block_size: int) -> Partition:
    """Partition ``graph`` into blocks of about ``target_block_size`` vertices.

    Deterministic: seeds are chosen in ascending vertex id order and BFS
    visits neighbors in adjacency order, so repeated runs produce identical
    partitions (important for reproducible benchmarks).

    Parameters
    ----------
    graph:
        Graph to partition.
    target_block_size:
        Soft upper bound on block vertex count (the last block per region
        may be smaller).

    Returns
    -------
    Partition
        Blocks, vertex->block map, and the derived portal set.
    """
    if target_block_size <= 0:
        raise GraphError("target_block_size must be positive")
    n = graph.num_vertices
    block_of = [-1] * n
    blocks: List[List[int]] = []
    for seed in range(n):
        if block_of[seed] != -1:
            continue
        block_id = len(blocks)
        members: List[int] = []
        queue: deque = deque([seed])
        block_of[seed] = block_id
        while queue and len(members) < target_block_size:
            v = queue.popleft()
            members.append(v)
            for w in [*graph.out_neighbors(v), *graph.in_neighbors(v)]:
                if block_of[w] == -1 and len(members) + len(queue) < target_block_size:
                    block_of[w] = block_id
                    queue.append(w)
        # Return any over-provisioned queue entries to the pool.
        while queue:
            leftover = queue.popleft()
            block_of[leftover] = -1
        blocks.append(members)
    portals: Set[int] = set()
    for u, v in graph.edges():
        if block_of[u] != block_of[v]:
            portals.add(u)
            portals.add(v)
    return Partition(block_of=block_of, blocks=blocks, portals=portals)
