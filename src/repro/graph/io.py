"""Graph serialization.

Real-world inputs for the paper's datasets (YAGO3, DBpedia, IMDB) arrive as
edge lists plus vertex-label tables.  This module reads and writes a simple
TSV format so users with the actual dumps can load them:

``<path>.nodes``::

    <vertex-id>\t<label>[\t<name>]

``<path>.edges``::

    <source-id>\t<target-id>

Vertex ids in files may be arbitrary non-negative integers; they are
compacted to dense ids on load (the returned mapping reports the
correspondence).
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.digraph import Graph, LabelTable
from repro.utils.errors import GraphError


def graph_from_edge_list(
    labels: Sequence[str],
    edges: Iterable[Tuple[int, int]],
    label_table: Optional[LabelTable] = None,
    names: Optional[Dict[int, str]] = None,
) -> Graph:
    """Build a graph from a dense label list and an edge iterable.

    ``labels[i]`` is the label of vertex ``i``; every edge must reference
    ids below ``len(labels)``.
    """
    graph = Graph(label_table)
    for i, label in enumerate(labels):
        name = names.get(i) if names else None
        graph.add_vertex(label, name=name)
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def save_graph_tsv(graph: Graph, path_prefix: str) -> Tuple[str, str]:
    """Write ``<prefix>.nodes`` and ``<prefix>.edges``; returns both paths."""
    nodes_path = path_prefix + ".nodes"
    edges_path = path_prefix + ".edges"
    with open(nodes_path, "w", encoding="utf-8") as nodes_file:
        for v in graph.vertices():
            name = graph.names.get(v)
            if name is not None:
                nodes_file.write(f"{v}\t{graph.label(v)}\t{name}\n")
            else:
                nodes_file.write(f"{v}\t{graph.label(v)}\n")
    with open(edges_path, "w", encoding="utf-8") as edges_file:
        for u, v in graph.edges():
            edges_file.write(f"{u}\t{v}\n")
    return nodes_path, edges_path


def load_graph_tsv(
    path_prefix: str, label_table: Optional[LabelTable] = None
) -> Tuple[Graph, Dict[int, int]]:
    """Load a graph saved by :func:`save_graph_tsv`.

    Returns the graph and a map from file vertex ids to dense graph ids.
    """
    nodes_path = path_prefix + ".nodes"
    edges_path = path_prefix + ".edges"
    if not os.path.exists(nodes_path):
        raise GraphError(f"missing node file: {nodes_path}")
    if not os.path.exists(edges_path):
        raise GraphError(f"missing edge file: {edges_path}")

    graph = Graph(label_table)
    id_map: Dict[int, int] = {}
    with open(nodes_path, "r", encoding="utf-8") as nodes_file:
        for line_no, raw in enumerate(nodes_file, start=1):
            line = raw.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) < 2:
                raise GraphError(
                    f"{nodes_path}:{line_no}: expected '<id>\\t<label>', got {line!r}"
                )
            try:
                file_id = int(parts[0])
            except ValueError:
                raise GraphError(
                    f"{nodes_path}:{line_no}: non-integer vertex id {parts[0]!r}"
                ) from None
            if file_id in id_map:
                raise GraphError(f"{nodes_path}:{line_no}: duplicate id {file_id}")
            name = parts[2] if len(parts) > 2 else None
            id_map[file_id] = graph.add_vertex(parts[1], name=name)

    with open(edges_path, "r", encoding="utf-8") as edges_file:
        for line_no, raw in enumerate(edges_file, start=1):
            line = raw.strip()
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise GraphError(
                    f"{edges_path}:{line_no}: expected '<src>\\t<dst>', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise GraphError(
                    f"{edges_path}:{line_no}: non-integer endpoint in {line!r}"
                ) from None
            if u not in id_map or v not in id_map:
                raise GraphError(
                    f"{edges_path}:{line_no}: edge references unknown vertex"
                )
            graph.add_edge(id_map[u], id_map[v])
    return graph, id_map
