"""r-hop neighborhood sampling for compress-ratio estimation.

Sec. 3.2 of the paper estimates the compression ratio of a configuration
without summarizing the whole graph: it samples ``n`` node-induced subgraphs
whose radii are ``r`` (keyword search semantics are bounded by a small hop
count) and averages their compress values.  The sample size comes from the
estimation-of-proportion formula ``n = 0.25 * (z / E)**2``; with the paper's
running example ``E = 5%`` and ``z = 1.96`` this gives ``n = 384.16``,
reported as 400.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from repro.graph.digraph import Graph
from repro.graph.traversal import FORWARD, reachable_within
from repro.utils.errors import GraphError


def required_sample_size(error_bound: float, z: float = 1.96) -> int:
    """Sample count for a confidence level ``z`` and error bound ``E``.

    Implements ``n = 0.5 * 0.5 * (z / E)**2`` from Sec. 3.2, rounded up.

    >>> required_sample_size(0.05)
    385
    """
    if error_bound <= 0:
        raise ValueError("error bound must be positive")
    return math.ceil(0.25 * (z / error_bound) ** 2)


def sample_neighborhood(
    graph: Graph,
    rng: random.Random,
    radius: int,
    direction: str = FORWARD,
    root: Optional[int] = None,
) -> Tuple[Graph, Dict[int, int]]:
    """One node-induced r-hop ball around a (random) root vertex.

    Returns the induced subgraph together with the original->sample vertex
    id mapping.
    """
    if graph.num_vertices == 0:
        raise GraphError("cannot sample from an empty graph")
    if root is None:
        root = rng.randrange(graph.num_vertices)
    ball = reachable_within(graph, root, hops=radius, direction=direction)
    return graph.induced_subgraph(ball)


def sample_neighborhoods(
    graph: Graph,
    num_samples: int,
    radius: int,
    seed: int = 0,
    direction: str = FORWARD,
) -> List[Graph]:
    """``num_samples`` independent r-hop ball subgraphs.

    Roots are drawn uniformly with replacement, matching the paper's
    "randomly select a vertex v" sampler.  Deterministic given ``seed``.
    """
    rng = random.Random(seed)
    samples: List[Graph] = []
    for _ in range(num_samples):
        subgraph, _ = sample_neighborhood(graph, rng, radius, direction=direction)
        samples.append(subgraph)
    return samples
