"""Core directed labeled graph.

The paper (Sec. 2) models a knowledge graph as a directed graph
:math:`G = (V, E, L, \\Sigma)` where every vertex carries exactly one label
drawn from :math:`\\Sigma`.  Labels model entity values, attribute values,
types and keywords interchangeably.

Design notes
------------
* Vertices are dense integers ``0..n-1`` so adjacency is a list of lists and
  per-layer vertex maps in the BiG-index hierarchy are plain arrays.
* Labels are interned through :class:`LabelTable`; a vertex stores a label
  *id*.  Graph generalization (Sec. 3.1) then reduces to an ``O(|V|)``
  label-id rewrite, and keyword matching is an inverted-index lookup.
* Reverse adjacency is maintained eagerly because every keyword search
  algorithm in the paper expands *backward* (Sec. 5).
* ``|G| = |V| + |E|`` as in the paper (used by the compression ratio).
"""

from __future__ import annotations

from array import array
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.obs.runtime import OBS
from repro.utils.errors import GraphError


class LabelTable:
    """Bidirectional interning table between label strings and dense ids.

    A single :class:`LabelTable` can be shared between a data graph and the
    summary graphs derived from it so label ids stay comparable across the
    BiG-index hierarchy.
    """

    def __init__(self, labels: Optional[Iterable[str]] = None) -> None:
        self._to_id: Dict[str, int] = {}
        self._to_label: List[str] = []
        if labels is not None:
            for label in labels:
                self.intern(label)

    def intern(self, label: str) -> int:
        """Return the id for ``label``, assigning a fresh one if unseen."""
        existing = self._to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._to_label)
        self._to_id[label] = new_id
        self._to_label.append(label)
        return new_id

    def id_of(self, label: str) -> int:
        """Return the id of a known label, raising for unknown ones."""
        try:
            return self._to_id[label]
        except KeyError:
            raise GraphError(f"unknown label: {label!r}") from None

    def get_id(self, label: str) -> Optional[int]:
        """Return the id of ``label`` or ``None`` if it was never interned."""
        return self._to_id.get(label)

    def label_of(self, label_id: int) -> str:
        """Return the string for a label id."""
        try:
            return self._to_label[label_id]
        except IndexError:
            raise GraphError(f"unknown label id: {label_id}") from None

    def __contains__(self, label: str) -> bool:
        return label in self._to_id

    def __len__(self) -> int:
        return len(self._to_label)

    def __iter__(self) -> Iterator[str]:
        return iter(self._to_label)


class CSRView:
    """A frozen compressed-sparse-row snapshot of a graph's adjacency.

    The traversal and refinement hot paths iterate neighbor lists millions
    of times; list-of-lists adjacency pays a pointer chase and a bounds
    check per ``out_neighbors`` call.  A CSR view packs both directions
    into four ``array('i')`` buffers so the inner loops become two offset
    lookups and one contiguous slice:

    ``out_targets[out_offsets[v]:out_offsets[v + 1]]`` — successors of ``v``
    ``in_targets[in_offsets[v]:in_offsets[v + 1]]``  — predecessors of ``v``

    Views are immutable snapshots owned by :meth:`Graph.csr`: the graph
    builds one lazily and drops it on any topology mutation, so holding a
    view across mutations never observes stale adjacency — re-fetch via
    ``graph.csr()`` after mutating.
    """

    __slots__ = (
        "num_vertices",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_targets",
    )

    def __init__(self, out_adj: List[List[int]], in_adj: List[List[int]]) -> None:
        self.num_vertices = len(out_adj)
        self.out_offsets, self.out_targets = _pack_csr(out_adj)
        self.in_offsets, self.in_targets = _pack_csr(in_adj)

    def out_neighbors(self, v: int) -> Sequence[int]:
        """Successors of ``v`` as a contiguous slice (do not mutate)."""
        return self.out_targets[self.out_offsets[v] : self.out_offsets[v + 1]]

    def in_neighbors(self, v: int) -> Sequence[int]:
        """Predecessors of ``v`` as a contiguous slice (do not mutate)."""
        return self.in_targets[self.in_offsets[v] : self.in_offsets[v + 1]]

    def out_degree(self, v: int) -> int:
        return self.out_offsets[v + 1] - self.out_offsets[v]

    def in_degree(self, v: int) -> int:
        return self.in_offsets[v + 1] - self.in_offsets[v]

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        out_offsets: Sequence[int],
        out_targets: Sequence[int],
        in_offsets: Sequence[int],
        in_targets: Sequence[int],
    ) -> "CSRView":
        """Wrap pre-packed offset/target buffers without re-packing.

        The zero-copy load path (index format v4) hands in ``memoryview``
        slices over an mmap; heap callers may pass ``array('i')``.  The
        buffers must already satisfy the CSR invariants — this is a
        trusted constructor, validation happens in the persistence layer.
        """
        view = cls.__new__(cls)
        view.num_vertices = num_vertices
        view.out_offsets = out_offsets
        view.out_targets = out_targets
        view.in_offsets = in_offsets
        view.in_targets = in_targets
        return view


class FrozenAdjacency:
    """The retained zero-copy payload of an mmap-loaded graph.

    Holds the CSR buffers and packed postings (``memoryview`` slices
    into the container mmap, or arrays on the big-endian fallback) plus
    a reference to the owning reader so the mapping outlives every view.
    A frozen :class:`Graph` keeps one of these instead of ``_out`` /
    ``_in`` / ``_edge_set`` / ``_label_index``; the first mutation
    materializes heap structures and drops it (see
    :meth:`Graph._materialize`).
    """

    __slots__ = (
        "num_vertices",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_targets",
        "post_labels",
        "post_offsets",
        "post_ids",
        "owner",
        "_post_row",
    )

    def __init__(
        self,
        out_offsets: Sequence[int],
        out_targets: Sequence[int],
        in_offsets: Sequence[int],
        in_targets: Sequence[int],
        post_labels: Sequence[int],
        post_offsets: Sequence[int],
        post_ids: Sequence[int],
        owner: object = None,
    ) -> None:
        self.num_vertices = len(out_offsets) - 1
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_targets = in_targets
        self.post_labels = post_labels
        self.post_offsets = post_offsets
        self.post_ids = post_ids
        self.owner = owner
        self._post_row: Optional[Dict[int, int]] = None

    def make_csr(self) -> CSRView:
        return CSRView.from_arrays(
            self.num_vertices,
            self.out_offsets,
            self.out_targets,
            self.in_offsets,
            self.in_targets,
        )

    def _row_of(self, label_id: int) -> Optional[int]:
        if self._post_row is None:
            self._post_row = {
                lid: row for row, lid in enumerate(self.post_labels)
            }
        return self._post_row.get(label_id)

    def posting(self, label_id: int) -> Sequence[int]:
        """Sorted vertex ids carrying ``label_id`` (zero-copy slice)."""
        row = self._row_of(label_id)
        if row is None:
            return ()
        return self.post_ids[
            self.post_offsets[row] : self.post_offsets[row + 1]
        ]

    def label_ids(self) -> Sequence[int]:
        """Label ids with at least one vertex."""
        return self.post_labels


def _pack_csr(adjacency: List[List[int]]) -> Tuple[array, array]:
    """Pack a list-of-lists adjacency into (offsets, targets) int arrays."""
    offsets = array("i", bytes(4 * (len(adjacency) + 1)))
    total = 0
    for v, row in enumerate(adjacency):
        offsets[v] = total
        total += len(row)
    offsets[len(adjacency)] = total
    targets = array("i", bytes(4 * total))
    pos = 0
    for row in adjacency:
        for w in row:
            targets[pos] = w
            pos += 1
    return offsets, targets


class Graph:
    """A directed graph with one string label per vertex.

    Parameters
    ----------
    label_table:
        Optional shared :class:`LabelTable`.  When omitted a private table is
        created.

    Example
    -------
    >>> g = Graph()
    >>> a = g.add_vertex("Person")
    >>> b = g.add_vertex("Univ.")
    >>> g.add_edge(a, b)
    >>> g.out_neighbors(a)
    [1]
    >>> g.label(a)
    'Person'
    """

    def __init__(self, label_table: Optional[LabelTable] = None) -> None:
        self.labels: List[int] = []
        self._out: List[List[int]] = []
        self._in: List[List[int]] = []
        self._edge_set: Set[Tuple[int, int]] = set()
        self._label_index: Dict[int, Set[int]] = {}
        self._num_edges = 0
        self.label_table = label_table if label_table is not None else LabelTable()
        #: Optional human-readable vertex names (entity names in examples).
        self.names: Dict[int, str] = {}
        #: Monotone counter bumped by every effective mutation (vertex or
        #: edge insertion, edge removal, relabel).  Derived-data caches
        #: outside the graph (evaluator result caches, BiG-index memos)
        #: key their validity on it; see ``repro.core.querycache``.
        self.mutation_epoch: int = 0
        # Lazily built caches, dropped on mutation (see csr()).
        self._csr: Optional[CSRView] = None
        self._posting_cache: Dict[int, Tuple[int, ...]] = {}
        # Copy-on-write bookkeeping (see cow_clone()).  ``None`` means the
        # graph owns every row/set outright and mutators work in place;
        # on a clone these hold the ids whose row/set the clone has
        # privately copied, so shared structure is never written through.
        self._cow_out: Optional[Set[int]] = None
        self._cow_in: Optional[Set[int]] = None
        self._cow_labels: Optional[Set[int]] = None
        # Zero-copy payload of an mmap-loaded graph; ``None`` for heap
        # graphs.  While set (and _out is None) adjacency and postings
        # are served from its buffers (see from_frozen / _materialize).
        self._frozen: Optional[FrozenAdjacency] = None

    @classmethod
    def from_frozen(
        cls,
        label_table: LabelTable,
        labels: Sequence[int],
        frozen: FrozenAdjacency,
        names: Optional[Dict[int, str]] = None,
    ) -> "Graph":
        """A graph served directly from loaded zero-copy buffers.

        ``labels`` and the buffers inside ``frozen`` are typically
        ``memoryview`` slices over an index container mmap; nothing is
        parsed or copied here, so constructing the graph is O(1) in the
        graph size.  The result answers every read exactly like a
        heap-built twin; the first mutation detaches to heap structures
        exactly once (:meth:`_materialize`), so the WAL-replay and
        copy-on-write mutation paths work unchanged.
        """
        graph = cls.__new__(cls)
        graph.labels = labels  # type: ignore[assignment] - read-only view
        graph._out = None  # type: ignore[assignment]
        graph._in = None  # type: ignore[assignment]
        graph._edge_set = None  # type: ignore[assignment]
        graph._label_index = None  # type: ignore[assignment]
        graph._num_edges = len(frozen.out_targets)
        graph.label_table = label_table
        graph.names = dict(names) if names else {}
        graph.mutation_epoch = 0
        graph._csr = None
        graph._posting_cache = {}
        graph._cow_out = None
        graph._cow_in = None
        graph._cow_labels = None
        graph._frozen = frozen
        return graph

    @property
    def is_mmap_backed(self) -> bool:
        """Whether reads are still served from loaded zero-copy buffers.

        Flips to ``False`` permanently after the first mutation
        (:meth:`_materialize` detaches to heap structures).
        """
        return self._out is None

    def _materialize(self) -> None:
        """Detach an mmap-backed graph to owned heap structures, once.

        Called by every mutator before it writes.  Rebuilds ``_out`` /
        ``_in`` in CSR order (which is insertion order — the v4 writer
        preserves it), the edge set, and the label index, then drops the
        frozen payload; subsequent mutations take the normal in-place
        path.  A no-op for heap graphs, so the hot mutation path pays
        one ``is not None`` check.
        """
        if self._out is not None:
            return
        csr = self.csr()
        n = csr.num_vertices
        out_targets, out_offsets = csr.out_targets, csr.out_offsets
        in_targets, in_offsets = csr.in_targets, csr.in_offsets
        self._out = [
            list(out_targets[out_offsets[v] : out_offsets[v + 1]])
            for v in range(n)
        ]
        self._in = [
            list(in_targets[in_offsets[v] : in_offsets[v + 1]])
            for v in range(n)
        ]
        self._edge_set = {
            (u, v) for u in range(n) for v in self._out[u]
        }
        self.labels = list(self.labels)
        label_index: Dict[int, Set[int]] = {}
        for v, label_id in enumerate(self.labels):
            label_index.setdefault(label_id, set()).add(v)
        self._label_index = label_index
        self._cow_out = None
        self._cow_in = None
        self._cow_labels = None
        self._frozen = None
        self._csr = None
        if OBS.enabled:
            OBS.metrics.inc("persist.mmap.detaches")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: str, name: Optional[str] = None) -> int:
        """Add a vertex with ``label`` and return its id."""
        self._materialize()
        vid = len(self.labels)
        label_id = self.label_table.intern(label)
        self.labels.append(label_id)
        self._out.append([])
        self._in.append([])
        self._own_label_set(label_id).add(vid)
        self.mutation_epoch += 1
        self._drop_csr()
        self._posting_cache.pop(label_id, None)
        if name is not None:
            self.names[vid] = name
        return vid

    def add_vertex_with_label_id(self, label_id: int) -> int:
        """Add a vertex by pre-interned label id (fast path for builders)."""
        if not 0 <= label_id < len(self.label_table):
            raise GraphError(f"label id {label_id} not in label table")
        self._materialize()
        vid = len(self.labels)
        self.labels.append(label_id)
        self._out.append([])
        self._in.append([])
        self._own_label_set(label_id).add(vid)
        self.mutation_epoch += 1
        self._drop_csr()
        self._posting_cache.pop(label_id, None)
        return vid

    def add_edge(self, u: int, v: int) -> bool:
        """Add the directed edge ``(u, v)``.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed (the graph is simple: parallel edges collapse).
        """
        self._check_vertex(u)
        self._check_vertex(v)
        self._materialize()
        if (u, v) in self._edge_set:
            return False
        self._edge_set.add((u, v))
        self._own_out_row(u).append(v)
        self._own_in_row(v).append(u)
        self._num_edges += 1
        self.mutation_epoch += 1
        self._drop_csr()
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the directed edge ``(u, v)``; raise if absent."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) not in graph")
        self._materialize()
        self._edge_set.remove((u, v))
        self._own_out_row(u).remove(v)
        self._own_in_row(v).remove(u)
        self._num_edges -= 1
        self.mutation_epoch += 1
        self._drop_csr()

    def _own_out_row(self, v: int) -> List[int]:
        """Out-adjacency row of ``v``, privately owned before mutation.

        On a :meth:`cow_clone` the outer ``_out`` list is private but the
        rows are shared with the parent; the first write to a row copies
        it.  A graph that owns everything (``_cow_out is None``) returns
        the row directly, so the non-COW mutation path is unchanged.
        """
        if self._cow_out is not None and v not in self._cow_out:
            self._out[v] = list(self._out[v])
            self._cow_out.add(v)
        return self._out[v]

    def _own_in_row(self, v: int) -> List[int]:
        """In-adjacency row of ``v``, privately owned before mutation."""
        if self._cow_in is not None and v not in self._cow_in:
            self._in[v] = list(self._in[v])
            self._cow_in.add(v)
        return self._in[v]

    def _own_label_set(self, label_id: int) -> Set[int]:
        """Posting set of ``label_id``, privately owned before mutation."""
        vertex_set = self._label_index.get(label_id)
        if vertex_set is None:
            vertex_set = set()
            self._label_index[label_id] = vertex_set
            if self._cow_labels is not None:
                self._cow_labels.add(label_id)
        elif self._cow_labels is not None and label_id not in self._cow_labels:
            vertex_set = set(vertex_set)
            self._label_index[label_id] = vertex_set
            self._cow_labels.add(label_id)
        return vertex_set

    def _drop_csr(self) -> None:
        """Invalidate the CSR snapshot after a topology mutation.

        Counts as an invalidation only when a snapshot actually existed —
        appending vertices to a never-snapshotted graph is not churn.
        """
        if self._csr is not None:
            self._csr = None
            if OBS.enabled:
                OBS.metrics.inc("csr.invalidations")

    def relabel_vertex(self, v: int, new_label: str) -> None:
        """Change the label of ``v``, keeping the inverted index consistent."""
        self._check_vertex(v)
        new_id = self.label_table.intern(new_label)
        self.relabel_vertex_by_id(v, new_id)

    def relabel_vertex_by_id(self, v: int, new_label_id: int) -> None:
        """Change the label of ``v`` to a pre-interned label id."""
        old_id = self.labels[v]
        if old_id == new_label_id:
            return
        self._materialize()
        old_set = self._own_label_set(old_id)
        old_set.discard(v)
        if not old_set:
            del self._label_index[old_id]
        self.labels[v] = new_label_id
        self._own_label_set(new_label_id).add(v)
        self.mutation_epoch += 1
        self._posting_cache.pop(old_id, None)
        self._posting_cache.pop(new_label_id, None)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return self._num_edges

    @property
    def size(self) -> int:
        """Graph size ``|G| = |V| + |E|`` as defined in Sec. 2."""
        return self.num_vertices + self._num_edges

    def vertices(self) -> range:
        """Iterate over all vertex ids."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all edges as ``(u, v)`` pairs."""
        if self._out is None:
            csr = self.csr()
            offsets, targets = csr.out_offsets, csr.out_targets
            for u in range(self.num_vertices):
                for k in range(offsets[u], offsets[u + 1]):
                    yield (u, targets[k])
            return
        for u in range(self.num_vertices):
            for v in self._out[u]:
                yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether edge ``(u, v)`` exists (O(1) on heap graphs)."""
        if self._edge_set is None:
            if not (
                0 <= u < self.num_vertices and 0 <= v < self.num_vertices
            ):
                return False
            return v in self.csr().out_neighbors(u)
        return (u, v) in self._edge_set

    def out_neighbors(self, v: int) -> Sequence[int]:
        """Successors of ``v`` (owned by the graph; do not mutate)."""
        self._check_vertex(v)
        if self._out is None:
            return self.csr().out_neighbors(v)
        return self._out[v]

    def in_neighbors(self, v: int) -> Sequence[int]:
        """Predecessors of ``v`` (owned by the graph; do not mutate)."""
        self._check_vertex(v)
        if self._in is None:
            return self.csr().in_neighbors(v)
        return self._in[v]

    def out_degree(self, v: int) -> int:
        """Number of out-edges of ``v``."""
        self._check_vertex(v)
        if self._out is None:
            return self.csr().out_degree(v)
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        """Number of in-edges of ``v``."""
        self._check_vertex(v)
        if self._in is None:
            return self.csr().in_degree(v)
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Total degree (in + out) of ``v``; used for joint-vertex detection."""
        return self.in_degree(v) + self.out_degree(v)

    def label(self, v: int) -> str:
        """String label of ``v``."""
        self._check_vertex(v)
        return self.label_table.label_of(self.labels[v])

    def label_id(self, v: int) -> int:
        """Interned label id of ``v``."""
        self._check_vertex(v)
        return self.labels[v]

    def name(self, v: int) -> str:
        """Human-readable name of ``v`` (falls back to its label)."""
        return self.names.get(v, self.label(v))

    def csr(self) -> CSRView:
        """The current CSR adjacency snapshot, built lazily.

        The view is rebuilt (O(|V| + |E|)) on first access after any
        topology mutation; between mutations repeated calls return the
        same frozen object, so hot loops can hoist its arrays into locals.
        """
        view = self._csr
        if view is None:
            if self._out is None:
                # mmap-backed: the CSR is the loaded buffers themselves —
                # resurrecting after drop_caches() costs five slot writes.
                view = self._frozen.make_csr()
            else:
                view = CSRView(self._out, self._in)
            self._csr = view
            if OBS.enabled:
                OBS.metrics.inc("csr.builds")
        elif OBS.enabled:
            OBS.metrics.inc("csr.hits")
        return view

    def sorted_vertices_with_label_id(self, label_id: int) -> Tuple[int, ...]:
        """Sorted vertices carrying ``label_id``, cached (do not mutate).

        The searchers seed their per-keyword frontiers from this inverted
        index; unlike :meth:`vertices_with_label_id` it neither copies nor
        re-sorts on repeated lookups of the same label.
        """
        cached = self._posting_cache.get(label_id)
        if cached is None:
            if self._label_index is None:
                # Loaded postings are already sorted; the tuple copy is
                # per *queried* label, so cold start stays O(1) and does
                # not count as a postings *build* (v4 loads start warm).
                cached = tuple(self._frozen.posting(label_id))
            else:
                cached = tuple(sorted(self._label_index.get(label_id, ())))
                if OBS.enabled:
                    OBS.metrics.inc("postings.build")
            self._posting_cache[label_id] = cached
        return cached

    def sorted_vertices_with_label(self, label: str) -> Tuple[int, ...]:
        """Sorted vertices labeled ``label`` (empty for unknown labels)."""
        label_id = self.label_table.get_id(label)
        if label_id is None:
            return ()
        return self.sorted_vertices_with_label_id(label_id)

    def postings_snapshot(self) -> Dict[str, List[int]]:
        """Every label's sorted posting list, as plain JSON-able data.

        Builds the complete inverted keyword index (label → sorted vertex
        ids) regardless of what is cached; persistence ships this with a
        saved index so a freshly loaded graph answers its first keyword
        lookup warm.
        """
        return {
            self.label_table.label_of(label_id): list(posting)
            for label_id, posting in self.postings_items_by_id()
        }

    def postings_items_by_id(self) -> List[Tuple[int, Sequence[int]]]:
        """``(label_id, sorted vertex ids)`` pairs in ascending label id.

        The building block for persistence writers: on a heap graph the
        lists are sorted fresh from the label index; on an mmap-backed
        graph they are zero-copy slices of the loaded posting arrays, so
        re-saving a loaded index never materializes the inverted index.
        Only labels with at least one vertex appear (same contract as
        :meth:`postings_snapshot`).
        """
        if self._label_index is None:
            frozen = self._frozen
            return [
                (label_id, frozen.posting(label_id))
                for label_id in sorted(frozen.label_ids())
            ]
        return [
            (label_id, sorted(vertex_set))
            for label_id, vertex_set in sorted(self._label_index.items())
        ]

    def preload_postings(self, postings: Mapping[str, Sequence[int]]) -> None:
        """Install precomputed posting lists (e.g. from a saved index).

        Every list is validated against the live label index — a posting
        that disagrees with the graph would make keyword seeding silently
        wrong, so a mismatch raises :class:`GraphError` instead of being
        trusted.  Unknown labels are rejected the same way.
        """
        staged: Dict[int, Tuple[int, ...]] = {}
        for label, ids in postings.items():
            label_id = self.label_table.get_id(label)
            if label_id is None:
                raise GraphError(
                    f"posting list for unknown label {label!r}"
                )
            posting = tuple(ids)
            if self._label_index is None:
                expected = list(self._frozen.posting(label_id))
            else:
                expected = sorted(self._label_index.get(label_id, ()))
            if list(posting) != expected:
                raise GraphError(
                    f"posting list for label {label!r} does not match the "
                    "graph's label index"
                )
            staged[label_id] = posting
        self._posting_cache.update(staged)
        if OBS.enabled:
            OBS.metrics.inc("postings.preload", len(staged))

    def drop_caches(self) -> None:
        """Discard the lazily built CSR view and label postings.

        Used by the cold-query benchmark and tests to return the graph to
        its just-constructed state; the structures rebuild on demand.
        """
        self._csr = None
        self._posting_cache.clear()

    def vertices_with_label(self, label: str) -> Set[int]:
        """All vertices labeled ``label`` (empty set for unknown labels)."""
        label_id = self.label_table.get_id(label)
        if label_id is None:
            return set()
        return self.vertices_with_label_id(label_id)

    def vertices_with_label_id(self, label_id: int) -> Set[int]:
        """All vertices with the interned label id (empty set when absent)."""
        if self._label_index is None:
            return set(self._frozen.posting(label_id))
        return set(self._label_index.get(label_id, ()))

    def label_support(self, label: str) -> int:
        """Number of vertices carrying ``label`` (the paper's ``|V_l|``)."""
        label_id = self.label_table.get_id(label)
        if label_id is None:
            return 0
        if self._label_index is None:
            return len(self._frozen.posting(label_id))
        return len(self._label_index.get(label_id, ()))

    def distinct_labels(self) -> Set[str]:
        """The set of labels actually used by some vertex."""
        return {
            self.label_table.label_of(label_id)
            for label_id in self.distinct_label_ids()
        }

    def distinct_label_ids(self) -> Set[int]:
        """The set of label ids actually used by some vertex."""
        if self._label_index is None:
            return set(self._frozen.label_ids())
        return set(self._label_index)

    def label_histogram(self) -> Dict[str, int]:
        """Map of label -> number of vertices carrying it."""
        return {
            self.label_table.label_of(label_id): len(posting)
            for label_id, posting in self.postings_items_by_id()
        }

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self, share_label_table: bool = True) -> "Graph":
        """Deep-copy the topology and labels.

        ``share_label_table`` keeps a single interning table across copies,
        which the BiG-index hierarchy relies on for cross-layer label ids.
        """
        table = self.label_table if share_label_table else LabelTable(
            iter(self.label_table)
        )
        clone = Graph(table)
        clone.labels = list(self.labels)
        if self._out is None:
            # mmap-backed: build the heap copy from the CSR buffers
            # without detaching this graph (it stays zero-copy).
            csr = self.csr()
            n = csr.num_vertices
            clone._out = [list(csr.out_neighbors(v)) for v in range(n)]
            clone._in = [list(csr.in_neighbors(v)) for v in range(n)]
            clone._edge_set = {
                (u, v) for u in range(n) for v in clone._out[u]
            }
            clone._label_index = {
                label_id: set(posting)
                for label_id, posting in self.postings_items_by_id()
            }
        else:
            clone._out = [list(adj) for adj in self._out]
            clone._in = [list(adj) for adj in self._in]
            clone._edge_set = set(self._edge_set)
            clone._label_index = {
                label_id: set(vertex_set)
                for label_id, vertex_set in self._label_index.items()
            }
        clone._num_edges = self._num_edges
        clone.names = dict(self.names)
        return clone

    def cow_clone(self) -> "Graph":
        """Copy-on-write clone sharing all unmutated structure.

        The clone gets private *outer* containers (adjacency lists, edge
        set, label-index dict, labels, names) whose *contents* — the
        per-vertex rows and per-label posting sets — stay shared with this
        graph until the clone's first write to each (see
        :meth:`_own_out_row` and friends).  The CSR view and posting-tuple
        cache are immutable snapshots, so they are shared outright and the
        clone's own mutators invalidate only the clone's references.

        The parent must be treated as frozen for the clone's lifetime (the
        serve runtime guarantees this: a published snapshot is never
        mutated in place).  O(|V| + |labels|) instead of copy()'s
        O(|V| + |E|).
        """
        clone = Graph.__new__(Graph)
        if self._out is None:
            # mmap-backed: share the frozen buffers outright.  The
            # clone's first mutation runs _materialize(), which builds
            # fully private heap structures — detaching *is* the
            # copy-on-write step, so no per-row bookkeeping is needed.
            clone.labels = self.labels
            clone._out = None
            clone._in = None
            clone._edge_set = None
            clone._label_index = None
            clone._cow_out = None
            clone._cow_in = None
            clone._cow_labels = None
            clone._frozen = self._frozen
        else:
            clone.labels = list(self.labels)
            clone._out = list(self._out)
            clone._in = list(self._in)
            clone._edge_set = set(self._edge_set)
            clone._label_index = dict(self._label_index)
            clone._cow_out = set()
            clone._cow_in = set()
            clone._cow_labels = set()
            clone._frozen = None
        clone._num_edges = self._num_edges
        clone.label_table = self.label_table
        clone.names = dict(self.names)
        clone.mutation_epoch = self.mutation_epoch
        clone._csr = self._csr
        clone._posting_cache = dict(self._posting_cache)
        if OBS.enabled:
            OBS.metrics.inc("cow.graph.clones")
        return clone

    def induced_subgraph(
        self, vertex_subset: Iterable[int]
    ) -> Tuple["Graph", Dict[int, int]]:
        """Node-induced subgraph of ``vertex_subset``.

        Returns the subgraph (sharing this graph's label table) and the map
        from original vertex ids to subgraph ids.  Used by the cost-model
        sampler (Sec. 3.2).
        """
        ordered = sorted(set(vertex_subset))
        sub = Graph(self.label_table)
        mapping: Dict[int, int] = {}
        for v in ordered:
            self._check_vertex(v)
            mapping[v] = sub.add_vertex_with_label_id(self.labels[v])
        member = set(ordered)
        successors = (
            self.csr().out_neighbors if self._out is None
            else self._out.__getitem__
        )
        for v in ordered:
            for w in successors(v):
                if w in member:
                    sub.add_edge(mapping[v], mapping[w])
        return sub, mapping

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self.labels):
            raise GraphError(f"vertex {v} not in graph of size {len(self.labels)}")

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"|Sigma|={len(self.distinct_label_ids())})"
        )


def validate_same_topology(left: Graph, right: Graph) -> bool:
    """Return whether two graphs share vertex count and edge set.

    Generalization (Sec. 3.1) must only rewrite labels; this check is used
    in tests to assert the topology is untouched.
    """
    if left.num_vertices != right.num_vertices:
        return False

    def edge_set(graph: Graph) -> Set[Tuple[int, int]]:
        if graph._edge_set is None:  # noqa: SLF001 - mmap-backed graph
            return set(graph.edges())
        return graph._edge_set  # noqa: SLF001 - deliberate

    return edge_set(left) == edge_set(right)
