"""Exception hierarchy for the BiG-index reproduction.

Every error raised by the library derives from :class:`BigIndexError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing the subsystem that failed.
"""


class BigIndexError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(BigIndexError):
    """Raised for invalid graph operations (unknown vertices, bad edges)."""


class OntologyError(BigIndexError):
    """Raised for invalid ontology structures or lookups (cycles, unknown types)."""


class ConfigurationError(BigIndexError):
    """Raised when a generalization configuration violates its invariants.

    A configuration must map each label to one of its direct supertypes in
    the ontology graph (Sec. 2 of the paper), and must be label-preserving
    (Def. 2.2).
    """


class QueryError(BigIndexError):
    """Raised for malformed keyword queries (empty, unknown keywords, ...)."""


class IndexError_(BigIndexError):
    """Raised when an index is used before being built or with a foreign graph.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class IndexPersistenceError(BigIndexError):
    """Base class for failures loading a persisted index directory.

    Subclasses classify the failure so callers can act on it: a
    :class:`IndexVersionError` calls for a rebuild with the current code,
    a :class:`IndexCorruptedError` calls for restoring from a good copy
    (see ``docs/ROBUSTNESS.md`` for the recovery runbook).
    """


class IndexCorruptedError(IndexPersistenceError):
    """The on-disk index is damaged: checksum mismatch, truncated or
    unparsable file, or structurally inconsistent contents.

    A corrupted index never loads as a *wrong* index — the loader raises
    this instead of returning a silently half-loaded hierarchy.
    """


class IndexVersionError(IndexPersistenceError):
    """The on-disk index uses a format version this code cannot read."""


class WALError(IndexPersistenceError):
    """Base class for mutation write-ahead-log failures.

    See :mod:`repro.core.wal` for the log format and the acked-durable
    contract it backs.
    """


class WALCorruptedError(WALError):
    """The file at the WAL path is not a mutation log (bad magic).

    Unlike a torn tail this cannot be recovered by truncation — nothing
    in the file can be trusted.
    """


class WALTornTailError(WALError):
    """The log ends in a damaged tail after a valid record prefix.

    Raised by strict reads (``read_wal(..., on_tail="error")``); recovery
    paths truncate the tail instead.  Attributes locate the damage:

    Attributes
    ----------
    kind:
        ``"truncated-header"`` / ``"truncated-payload"`` (torn final
        write) or ``"checksum-mismatch"`` / ``"unparsable-payload"`` /
        ``"implausible-length"`` (damaged tail bytes).
    valid_records:
        Number of records in the recoverable prefix.
    valid_bytes:
        File offset at which the valid prefix ends.
    """

    def __init__(
        self, path: str, kind: str, valid_records: int, valid_bytes: int
    ) -> None:
        super().__init__(
            f"{path}: damaged WAL tail ({kind}) after {valid_records} "
            f"valid record(s) / {valid_bytes} byte(s)"
        )
        self.path = path
        self.kind = kind
        self.valid_records = valid_records
        self.valid_bytes = valid_bytes


class BudgetExceeded(BigIndexError):
    """An execution budget ran out before the operation completed.

    Attributes
    ----------
    reason:
        ``"deadline"``, ``"expansions"`` or ``"cancelled"``.
    expansions:
        Node expansions charged to the budget when it tripped.
    partial:
        Sound partial answers found before exhaustion.  Searchers
        guarantee the *prefix-soundness* contract: ``partial`` is sorted
        and equals the full search's ranking truncated at
        :attr:`lower_bound` — every answer the search did not get to
        scores at least ``lower_bound``.
    lower_bound:
        Sound lower bound on the score of every answer not in
        ``partial``; ``None`` when the raiser had no answer context
        (e.g. the budget tripped inside a bare charge).
    """

    def __init__(
        self,
        reason: str,
        expansions: int = 0,
        partial=(),
        lower_bound=None,
    ) -> None:
        super().__init__(
            f"execution budget exceeded ({reason}) after "
            f"{expansions} node expansion(s)"
        )
        self.reason = reason
        self.expansions = expansions
        self.partial = list(partial)
        self.lower_bound = lower_bound
