"""Exception hierarchy for the BiG-index reproduction.

Every error raised by the library derives from :class:`BigIndexError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing the subsystem that failed.
"""


class BigIndexError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(BigIndexError):
    """Raised for invalid graph operations (unknown vertices, bad edges)."""


class OntologyError(BigIndexError):
    """Raised for invalid ontology structures or lookups (cycles, unknown types)."""


class ConfigurationError(BigIndexError):
    """Raised when a generalization configuration violates its invariants.

    A configuration must map each label to one of its direct supertypes in
    the ontology graph (Sec. 2 of the paper), and must be label-preserving
    (Def. 2.2).
    """


class QueryError(BigIndexError):
    """Raised for malformed keyword queries (empty, unknown keywords, ...)."""


class IndexError_(BigIndexError):
    """Raised when an index is used before being built or with a foreign graph.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """
