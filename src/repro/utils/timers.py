"""Timing helpers used by the benchmark harness.

The paper's Exp-1 figures break query time into three phases: exploring the
summary graphs, pruning/specialization, and final answer generation.
:class:`TimeBreakdown` accumulates named phases so the harness can print the
same breakdown.

:data:`monotonic_now` is the one clock every timing path uses — the
benchmark harness, budgets, the tracer, and these helpers all read it so
their timestamps are mutually comparable and immune to wall-clock steps
(NTP adjustments, DST).  It aliases :func:`time.perf_counter`, the
highest-resolution monotonic clock CPython offers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

#: The repo-wide monotonic clock: seconds as a float, arbitrary epoch,
#: never goes backwards.  Do not mix with ``time.time()`` in timing code.
monotonic_now = time.perf_counter


class Stopwatch:
    """A simple restartable stopwatch measuring wall-clock seconds."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) timing from now."""
        self._start = monotonic_now()
        return self

    def stop(self) -> float:
        """Stop timing and add the interval to :attr:`elapsed`."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += monotonic_now() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time and clear any running interval."""
        self._start = None
        self.elapsed = 0.0


class TimeBreakdown:
    """Accumulates wall-clock time under named phases.

    Example
    -------
    >>> breakdown = TimeBreakdown()
    >>> with breakdown.phase("explore"):
    ...     pass
    >>> sorted(breakdown.totals) == ["explore"]
    True
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager timing one phase; time accumulates across uses."""
        start = monotonic_now()
        try:
            yield
        finally:
            self.totals[name] = self.totals.get(name, 0.0) + (
                monotonic_now() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to phase ``name`` directly."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        """Sum of all phases."""
        return sum(self.totals.values())

    def merge(self, other: "TimeBreakdown") -> None:
        """Fold another breakdown's phases into this one."""
        for name, seconds in other.totals.items():
            self.add(name, seconds)

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the phase totals."""
        return dict(self.totals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.4f}s" for k, v in sorted(self.totals.items()))
        return f"TimeBreakdown({parts})"
