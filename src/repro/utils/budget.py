"""Execution budgets: deadlines, expansion caps, cooperative cancellation.

The paper's searches are unbounded — a pathological query on a dense
layer can spin for as long as the graph allows.  A :class:`Budget` makes
every search leg *cooperatively* bounded: the searchers and the
hierarchical evaluator charge it one unit per node expansion, and the
charge raises :class:`~repro.utils.errors.BudgetExceeded` the moment any
limit trips.  The raiser attaches whatever sound partial answers it has,
so callers can degrade gracefully instead of failing
(see ``docs/ROBUSTNESS.md``).

Three independent limits, any subset of which may be set:

* ``deadline`` — wall-clock seconds from budget creation.  Elapsed time
  is measured monotonically even under clock skew: a clock that jumps
  backward never *un*-expires a budget (expiry is sticky, and the
  largest observed elapsed value wins).
* ``max_expansions`` — total node expansions across every search leg the
  budget is threaded through, giving deterministic, machine-independent
  bounds (the fault-injection harness relies on this).
* ``token`` — a :class:`CancellationToken` another thread or callback
  can trip; the next charge observes it.

``sub()`` carves a child budget out of the remaining allowance; charges
to the child propagate to the parent, so "retry the remaining budget on
a coarser layer" is just charging the same parent again.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.utils.errors import BudgetExceeded
from repro.utils.timers import monotonic_now

#: Budget charge reasons, in check order.
REASONS = ("cancelled", "expansions", "deadline")


class CancellationToken:
    """A latch for cooperative cancellation.

    ``cancel()`` may be called from any thread; budgets observe it on
    their next charge.  Once cancelled, a token stays cancelled.
    """

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Trip the token; every budget sharing it expires on next check."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancellationToken(cancelled={self._cancelled})"


class Budget:
    """A cooperative execution budget threaded through search legs.

    Parameters
    ----------
    deadline:
        Wall-clock seconds allowed from construction; ``None`` = no
        time limit.
    max_expansions:
        Node expansions allowed; ``None`` = no expansion limit.
    token:
        Shared :class:`CancellationToken`; ``None`` creates a private one.
    clock:
        Seconds-returning callable (default
        :data:`repro.utils.timers.monotonic_now`, the repo-wide
        monotonic clock shared with the bench harness and tracer).
        Injectable for deterministic tests and clock-skew fault drills.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_expansions: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        clock: Callable[[], float] = monotonic_now,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        if max_expansions is not None and max_expansions < 0:
            raise ValueError("max_expansions must be non-negative")
        self.deadline = deadline
        self.max_expansions = max_expansions
        self.token = token if token is not None else CancellationToken()
        self._clock = clock
        self._start = clock()
        self._max_elapsed = 0.0
        self.expansions = 0
        self._expired_reason: Optional[str] = None
        self._parent: Optional["Budget"] = None

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Monotone elapsed seconds: backward clock jumps never reduce it."""
        now = self._clock() - self._start
        if now > self._max_elapsed:
            self._max_elapsed = now
        return self._max_elapsed

    def remaining_time(self) -> Optional[float]:
        """Seconds left before the deadline, or ``None`` without one."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def remaining_expansions(self) -> Optional[int]:
        """Expansions left, or ``None`` without an expansion cap."""
        if self.max_expansions is None:
            return None
        return max(0, self.max_expansions - self.expansions)

    # ------------------------------------------------------------------
    def exhausted_reason(self) -> Optional[str]:
        """The tripped limit's reason, or ``None``.  Expiry is sticky."""
        if self._expired_reason is not None:
            return self._expired_reason
        reason: Optional[str] = None
        if self.token.cancelled:
            reason = "cancelled"
        elif (
            self.max_expansions is not None
            and self.expansions >= self.max_expansions
        ):
            reason = "expansions"
        elif self.deadline is not None and self.elapsed() >= self.deadline:
            reason = "deadline"
        elif self._parent is not None:
            reason = self._parent.exhausted_reason()
        if reason is not None:
            self._expired_reason = reason
        return reason

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason() is not None

    def charge(self, expansions: int = 1) -> None:
        """Record ``expansions`` node expansions, then enforce every limit.

        Raises :class:`BudgetExceeded` the first time a limit trips.
        ``charge(0)`` is a pure checkpoint (deadline/cancellation probe)
        for loops whose per-iteration work is not expansion-shaped.
        """
        self.expansions += expansions
        if self._parent is not None:
            # Parent counts (and may trip) first: its limits dominate.
            self._parent.expansions += expansions
            parent_reason = self._parent.exhausted_reason()
            if parent_reason is not None:
                self._expired_reason = parent_reason
                raise BudgetExceeded(parent_reason, expansions=self.expansions)
        reason = self.exhausted_reason()
        if reason is not None:
            raise BudgetExceeded(reason, expansions=self.expansions)

    def check(self) -> None:
        """Checkpoint without charging (same as ``charge(0)``)."""
        self.charge(0)

    # ------------------------------------------------------------------
    def sub(self, fraction: float = 0.5) -> "Budget":
        """A child budget over ``fraction`` of the remaining allowance.

        The child shares the token and clock; its charges propagate to
        this (parent) budget, so after the child trips, retrying against
        the parent naturally runs on whatever the child left unspent.
        The child is guaranteed at least one expansion and a strictly
        positive time slice so progress is always possible.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        rem_exp = self.remaining_expansions()
        rem_time = self.remaining_time()
        child = Budget(
            deadline=(
                None if rem_time is None else max(rem_time * fraction, 1e-9)
            ),
            max_expansions=(
                None if rem_exp is None else max(1, int(rem_exp * fraction))
            ),
            token=self.token,
            clock=self._clock,
        )
        child._parent = self
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Budget(deadline={self.deadline}, "
            f"max_expansions={self.max_expansions}, "
            f"expansions={self.expansions}, "
            f"exhausted={self._expired_reason!r})"
        )
