"""Shared utilities: errors, deterministic RNG helpers, and timers."""

from repro.utils.errors import (
    BigIndexError,
    GraphError,
    OntologyError,
    ConfigurationError,
    QueryError,
)
from repro.utils.timers import Stopwatch, TimeBreakdown

__all__ = [
    "BigIndexError",
    "GraphError",
    "OntologyError",
    "ConfigurationError",
    "QueryError",
    "Stopwatch",
    "TimeBreakdown",
]
