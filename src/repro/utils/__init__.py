"""Shared utilities: errors, execution budgets, and timers."""

from repro.utils.budget import Budget, CancellationToken
from repro.utils.errors import (
    BigIndexError,
    BudgetExceeded,
    GraphError,
    IndexCorruptedError,
    IndexPersistenceError,
    IndexVersionError,
    OntologyError,
    ConfigurationError,
    QueryError,
)
from repro.utils.timers import Stopwatch, TimeBreakdown

__all__ = [
    "BigIndexError",
    "Budget",
    "BudgetExceeded",
    "CancellationToken",
    "GraphError",
    "IndexCorruptedError",
    "IndexPersistenceError",
    "IndexVersionError",
    "OntologyError",
    "ConfigurationError",
    "QueryError",
    "Stopwatch",
    "TimeBreakdown",
]
