"""Prometheus text exposition (and a strict parser) for the registry.

``GET /metrics`` content-negotiates between the original JSON snapshot
and this text format (``Accept: text/plain`` or ``application/
openmetrics-text``), so a stock Prometheus scrape works against
``repro-bigindex serve`` with zero adapters.  The emitted format is the
classic ``text/plain; version=0.0.4`` exposition:

* counters  -> ``# TYPE <name> counter`` + one sample,
* gauges    -> ``# TYPE <name> gauge`` + one sample,
* histograms -> ``# TYPE <name> histogram`` + cumulative
  ``<name>_bucket{le="..."}`` samples (``+Inf`` last), ``<name>_sum``
  and ``<name>_count``.

Dotted registry names (``serve.latency_seconds``) are sanitized to the
Prometheus grammar (``serve_latency_seconds``).

:func:`parse_prometheus` is the strict reader the tests and the CI
serve-smoke use to *prove* the output is well-formed: it rejects bad
metric names, unparsable samples, non-monotone histogram buckets, a
missing ``+Inf`` bucket, and ``_count``/``+Inf`` disagreement — rather
than best-effort-skipping them the way a real scraper might.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Prometheus metric-name grammar.
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus grammar."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not METRIC_NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(snapshot: Mapping[str, object]) -> str:
    """The registry's :meth:`~MetricsRegistry.snapshot` as exposition text.

    Name collisions after sanitization ("a.b" and "a_b") keep the first
    name in sorted order and drop the rest — emitting the same family
    twice would be invalid exposition, and the registry's dotted naming
    convention never collides in practice.
    """
    lines: List[str] = []
    seen: set = set()

    def claim(name: str) -> Optional[str]:
        cleaned = sanitize_metric_name(name)
        if cleaned in seen:
            return None
        seen.add(cleaned)
        return cleaned

    counters = snapshot.get("counters") or {}
    for name in sorted(counters):  # type: ignore[arg-type]
        cleaned = claim(name)
        if cleaned is None:
            continue
        lines.append(f"# TYPE {cleaned} counter")
        lines.append(f"{cleaned} {_format_value(float(counters[name]))}")

    gauges = snapshot.get("gauges") or {}
    for name in sorted(gauges):  # type: ignore[arg-type]
        cleaned = claim(name)
        if cleaned is None:
            continue
        lines.append(f"# TYPE {cleaned} gauge")
        lines.append(f"{cleaned} {_format_value(float(gauges[name]))}")

    histograms = snapshot.get("histograms") or {}
    for name in sorted(histograms):  # type: ignore[arg-type]
        cleaned = claim(name)
        if cleaned is None:
            continue
        hist = histograms[name]  # type: ignore[index]
        lines.append(f"# TYPE {cleaned} histogram")
        buckets: Mapping[str, int] = hist.get("buckets") or {}

        def bound_key(raw: str) -> float:
            return float("inf") if raw == "+Inf" else float(raw)

        for raw in sorted(buckets, key=bound_key):
            le = _escape_label(raw)
            lines.append(
                f'{cleaned}_bucket{{le="{le}"}} '
                f"{_format_value(float(buckets[raw]))}"
            )
        lines.append(f"{cleaned}_sum {_format_value(float(hist['sum']))}")
        lines.append(f"{cleaned}_count {_format_value(float(hist['count']))}")

    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Strict parsing (tests + CI smoke)
# ----------------------------------------------------------------------
@dataclass
class PromFamily:
    """One metric family: its declared type and every sample seen."""

    name: str
    type: str = "untyped"
    #: ``(labels, value)`` per sample line, in file order.
    samples: List[Tuple[Dict[str, str], float]] = field(default_factory=list)


def _parse_value(raw: str) -> float:
    lowered = raw.lower()
    if lowered in ("+inf", "inf"):
        return float("inf")
    if lowered == "-inf":
        return float("-inf")
    if lowered == "nan":
        return float("nan")
    return float(raw)


def _parse_labels(raw: Optional[str], lineno: int) -> Dict[str, str]:
    if not raw:
        return {}
    labels: Dict[str, str] = {}
    rest = raw.strip().rstrip(",")
    while rest:
        match = _LABEL_RE.match(rest)
        if not match:
            raise ValueError(f"line {lineno}: malformed label pair in {raw!r}")
        name = match.group("name")
        if name in labels:
            raise ValueError(f"line {lineno}: duplicate label {name!r}")
        labels[name] = (
            match.group("value")
            .replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        rest = rest[match.end():].lstrip(",").strip()
    return labels


def parse_prometheus(text: str) -> Dict[str, PromFamily]:
    """Parse exposition text, raising ``ValueError`` on any violation.

    Beyond line-level syntax, enforces the histogram contract for every
    family declared ``histogram``: each ``_bucket`` sample carries an
    ``le`` label, cumulative counts are non-decreasing as ``le`` grows,
    the ``+Inf`` bucket exists, and it equals ``_count``.
    """
    families: Dict[str, PromFamily] = {}

    def family_for(sample_name: str, lineno: int) -> PromFamily:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = sample_name[: -len(suffix)]
            if (
                sample_name.endswith(suffix)
                and stripped in families
                and families[stripped].type == "histogram"
            ):
                base = stripped
                break
        if base not in families:
            families[base] = PromFamily(name=base)
        return families[base]

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            name = parts[2]
            if not METRIC_NAME_RE.match(name):
                raise ValueError(
                    f"line {lineno}: invalid metric name {name!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(
                        f"line {lineno}: invalid TYPE line {line!r}"
                    )
                if name in families and families[name].samples:
                    raise ValueError(
                        f"line {lineno}: TYPE for {name!r} after samples"
                    )
                families.setdefault(name, PromFamily(name=name)).type = (
                    parts[3]
                )
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: unparsable sample {line!r}")
        labels = _parse_labels(match.group("labels"), lineno)
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: unparsable value {match.group('value')!r}"
            )
        family_for(match.group("name"), lineno).samples.append(
            (dict(labels, __name__=match.group("name")), value)
        )

    for family in families.values():
        if family.type == "histogram":
            _check_histogram(family)
    return families


def _check_histogram(family: PromFamily) -> None:
    buckets: List[Tuple[float, float]] = []
    count: Optional[float] = None
    for labels, value in family.samples:
        sample_name = labels["__name__"]
        if sample_name == family.name + "_bucket":
            if "le" not in labels:
                raise ValueError(
                    f"{family.name}: bucket sample without an le label"
                )
            buckets.append((_parse_value(labels["le"]), value))
        elif sample_name == family.name + "_count":
            count = value
    if not buckets:
        raise ValueError(f"{family.name}: histogram with no buckets")
    bounds = [bound for bound, _ in buckets]
    if bounds != sorted(bounds):
        raise ValueError(f"{family.name}: bucket bounds out of order")
    cumulative = [value for _, value in buckets]
    if any(b < a for a, b in zip(cumulative, cumulative[1:])):
        raise ValueError(f"{family.name}: bucket counts are not monotone")
    if not math.isinf(bounds[-1]):
        raise ValueError(f"{family.name}: missing the +Inf bucket")
    if count is None:
        raise ValueError(f"{family.name}: missing the _count sample")
    if cumulative[-1] != count:
        raise ValueError(
            f"{family.name}: +Inf bucket {cumulative[-1]} != _count {count}"
        )
