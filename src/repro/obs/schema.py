"""Validators for the JSONL telemetry files the toolchain emits.

Two kinds (``--kind``):

* ``trace`` (default) — Chrome-trace event lines from ``--trace-out``.
  ``"X"`` (complete) events need ``name``/``ts``/``dur``/``pid``/
  ``tid``/``args``; the single optional ``"i"`` (instant) event carries
  the final metrics snapshot.
* ``access`` — structured access/slow-query log lines from
  ``repro-bigindex serve --access-log`` (see docs/OBSERVABILITY.md for
  the field table): every line must carry a request ID, route, status,
  outcome class, and latency.

Runs standalone for the CI smoke jobs::

    python -m repro.obs.schema trace.jsonl --min-phases 4
    python -m repro.obs.schema access.jsonl --kind access

which fail (exit 1) on any malformed line, or — for traces — when the
file contains fewer distinct span names than ``--min-phases``, the
acceptance bar that a query trace shows at least layer selection,
translation, search, and answer recovery.
"""

from __future__ import annotations

import argparse
import json
import numbers
from typing import Dict, List, Optional, Sequence, Tuple


def validate_event(event: object) -> List[str]:
    """Schema errors for one parsed event (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, expected object"]
    phase = event.get("ph")
    if phase not in ("X", "i"):
        errors.append(f"ph must be 'X' or 'i', got {phase!r}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append("name must be a non-empty string")
    for key in ("ts",) + (("dur",) if phase == "X" else ()):
        value = event.get(key)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            errors.append(f"{key} must be a number, got {value!r}")
        elif value < 0:
            errors.append(f"{key} must be >= 0, got {value!r}")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            errors.append(f"{key} must be an integer")
    args = event.get("args")
    if args is not None and not isinstance(args, dict):
        errors.append("args must be an object when present")
    return errors


def validate_lines(
    lines: Sequence[str],
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Parse and validate JSONL trace content.

    Returns ``(events, errors)`` where each error names its 1-based line.
    """
    events: List[Dict[str, object]] = []
    errors: List[str] = []
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        try:
            event = json.loads(text)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
            continue
        event_errors = validate_event(event)
        if event_errors:
            errors.extend(f"line {lineno}: {msg}" for msg in event_errors)
        else:
            events.append(event)
    if not events and not errors:
        errors.append("trace is empty")
    return events, errors


def distinct_phases(events: Sequence[Dict[str, object]]) -> List[str]:
    """Distinct span names among the complete ("X") events, sorted."""
    return sorted({
        str(event["name"]) for event in events if event.get("ph") == "X"
    })


def validate_file(
    path: str, min_phases: int = 0
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Validate a trace file; enforce a distinct-span-name floor."""
    with open(path, "r", encoding="utf-8") as handle:
        events, errors = validate_lines(handle.readlines())
    if min_phases:
        phases = distinct_phases(events)
        if len(phases) < min_phases:
            errors.append(
                f"trace has {len(phases)} distinct span name(s)"
                f" {phases}, expected >= {min_phases}"
            )
    return events, errors


# ----------------------------------------------------------------------
# Access-log lines (repro-bigindex serve --access-log)
# ----------------------------------------------------------------------
#: Every access/slow-query log line must carry these fields.
ACCESS_REQUIRED_FIELDS = (
    "ts", "request_id", "method", "path", "status", "latency_ms", "outcome",
)

#: The closed set of ``outcome`` classes the service emits.
ACCESS_OUTCOMES = ("ok", "degraded", "shed", "bad-request", "fault")


def validate_access_record(record: object) -> List[str]:
    """Schema errors for one parsed access-log record (empty = valid)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    for key in ACCESS_REQUIRED_FIELDS:
        if key not in record:
            errors.append(f"missing required field {key!r}")
    for key in ("ts", "latency_ms"):
        value = record.get(key)
        if key in record and (
            not isinstance(value, numbers.Real)
            or isinstance(value, bool)
            or value < 0
        ):
            errors.append(f"{key} must be a number >= 0, got {value!r}")
    for key in ("request_id", "method", "path"):
        value = record.get(key)
        if key in record and (not isinstance(value, str) or not value):
            errors.append(f"{key} must be a non-empty string, got {value!r}")
    status = record.get("status")
    if "status" in record and (
        isinstance(status, bool)
        or not isinstance(status, int)
        or not 100 <= status <= 599
    ):
        errors.append(f"status must be an HTTP status code, got {status!r}")
    outcome = record.get("outcome")
    if "outcome" in record and outcome not in ACCESS_OUTCOMES:
        errors.append(
            f"outcome must be one of {list(ACCESS_OUTCOMES)}, got {outcome!r}"
        )
    if "slow" in record and not isinstance(record["slow"], bool):
        errors.append(f"slow must be a boolean, got {record['slow']!r}")
    epoch = record.get("epoch")
    if epoch is not None and "epoch" in record:
        if not (
            isinstance(epoch, list)
            and all(isinstance(part, int) for part in epoch)
        ):
            errors.append(f"epoch must be a list of integers, got {epoch!r}")
    serial = record.get("serial")
    if serial is not None and "serial" in record:
        if isinstance(serial, bool) or not isinstance(serial, int):
            errors.append(f"serial must be an integer, got {serial!r}")
    return errors


def validate_access_lines(
    lines: Sequence[str],
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Parse and validate access-log JSONL content (same contract as
    :func:`validate_lines`)."""
    records: List[Dict[str, object]] = []
    errors: List[str] = []
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
            continue
        record_errors = validate_access_record(record)
        if record_errors:
            errors.extend(f"line {lineno}: {msg}" for msg in record_errors)
        else:
            records.append(record)
    if not records and not errors:
        errors.append("access log is empty")
    return records, errors


def validate_access_file(
    path: str,
) -> Tuple[List[Dict[str, object]], List[str]]:
    with open(path, "r", encoding="utf-8") as handle:
        return validate_access_lines(handle.readlines())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="Validate a telemetry JSONL file (trace or access log).",
    )
    parser.add_argument("trace", help="path to the JSONL file")
    parser.add_argument(
        "--kind",
        choices=("trace", "access"),
        default="trace",
        help="file flavor: Chrome-trace events (default) or serve "
             "access-log records",
    )
    parser.add_argument(
        "--min-phases",
        type=int,
        default=0,
        metavar="N",
        help="require at least N distinct span names among X events "
             "(trace kind only)",
    )
    args = parser.parse_args(argv)
    try:
        if args.kind == "access":
            records, errors = validate_access_file(args.trace)
        else:
            records, errors = validate_file(
                args.trace, min_phases=args.min_phases
            )
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}")
        return 2
    if errors:
        for message in errors:
            print(f"error: {message}")
        return 1
    if args.kind == "access":
        ids = {str(record["request_id"]) for record in records}
        print(
            f"ok: {len(records)} access record(s), "
            f"{len(ids)} distinct request id(s)"
        )
        return 0
    phases = distinct_phases(records)
    print(
        f"ok: {len(records)} event(s), {len(phases)} distinct span name(s):"
        f" {', '.join(phases)}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke job
    raise SystemExit(main())
