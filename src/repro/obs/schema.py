"""Validator for the JSONL trace files emitted by ``--trace-out``.

Each line must be one Chrome-trace event object.  ``"X"`` (complete)
events need ``name``/``ts``/``dur``/``pid``/``tid``/``args``; the single
optional ``"i"`` (instant) event carries the final metrics snapshot.

Runs standalone for the CI trace smoke job::

    python -m repro.obs.schema trace.jsonl --min-phases 4

which fails (exit 1) on any malformed line, or when the trace contains
fewer distinct span names than ``--min-phases`` — the acceptance bar
that a query trace shows at least layer selection, translation, search,
and answer recovery.
"""

from __future__ import annotations

import argparse
import json
import numbers
from typing import Dict, List, Optional, Sequence, Tuple


def validate_event(event: object) -> List[str]:
    """Schema errors for one parsed event (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, expected object"]
    phase = event.get("ph")
    if phase not in ("X", "i"):
        errors.append(f"ph must be 'X' or 'i', got {phase!r}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append("name must be a non-empty string")
    for key in ("ts",) + (("dur",) if phase == "X" else ()):
        value = event.get(key)
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            errors.append(f"{key} must be a number, got {value!r}")
        elif value < 0:
            errors.append(f"{key} must be >= 0, got {value!r}")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            errors.append(f"{key} must be an integer")
    args = event.get("args")
    if args is not None and not isinstance(args, dict):
        errors.append("args must be an object when present")
    return errors


def validate_lines(
    lines: Sequence[str],
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Parse and validate JSONL trace content.

    Returns ``(events, errors)`` where each error names its 1-based line.
    """
    events: List[Dict[str, object]] = []
    errors: List[str] = []
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        try:
            event = json.loads(text)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc.msg})")
            continue
        event_errors = validate_event(event)
        if event_errors:
            errors.extend(f"line {lineno}: {msg}" for msg in event_errors)
        else:
            events.append(event)
    if not events and not errors:
        errors.append("trace is empty")
    return events, errors


def distinct_phases(events: Sequence[Dict[str, object]]) -> List[str]:
    """Distinct span names among the complete ("X") events, sorted."""
    return sorted({
        str(event["name"]) for event in events if event.get("ph") == "X"
    })


def validate_file(
    path: str, min_phases: int = 0
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Validate a trace file; enforce a distinct-span-name floor."""
    with open(path, "r", encoding="utf-8") as handle:
        events, errors = validate_lines(handle.readlines())
    if min_phases:
        phases = distinct_phases(events)
        if len(phases) < min_phases:
            errors.append(
                f"trace has {len(phases)} distinct span name(s)"
                f" {phases}, expected >= {min_phases}"
            )
    return events, errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="Validate a --trace-out JSONL trace file.",
    )
    parser.add_argument("trace", help="path to the JSONL trace")
    parser.add_argument(
        "--min-phases",
        type=int,
        default=0,
        metavar="N",
        help="require at least N distinct span names among X events",
    )
    args = parser.parse_args(argv)
    try:
        events, errors = validate_file(args.trace, min_phases=args.min_phases)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}")
        return 2
    if errors:
        for message in errors:
            print(f"error: {message}")
        return 1
    phases = distinct_phases(events)
    print(
        f"ok: {len(events)} event(s), {len(phases)} distinct span name(s):"
        f" {', '.join(phases)}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke job
    raise SystemExit(main())
