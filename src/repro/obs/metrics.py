"""Metrics registry: counters, gauges, and histograms for query telemetry.

The registry is deliberately minimal — plain dict-backed counters with
string names — because its hot-path cost matters more than its feature
set.  Instrumented code guards every call behind ``if OBS.enabled:`` (see
:mod:`repro.obs.runtime`), so when observability is off the registry is
never touched at all; :data:`NULL_METRICS` exists only as a safe default
for code that stores a registry reference up front.

Naming convention (documented in docs/OBSERVABILITY.md): dot-separated,
``<subsystem>.<event>`` — e.g. ``search.expansions``, ``refine.rounds``,
``csr.invalidations``.  Counters count events, gauges record last-seen
values, histograms accumulate (count, sum, min, max) of observations.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Fixed ``le`` bucket bounds (seconds) shared by every histogram, so
#: p50/p95/p99 are derivable by any Prometheus scraper and two
#: registries merge bucket-for-bucket.  Spans sub-millisecond cache hits
#: through multi-second degraded searches; everything beyond the last
#: bound lands in the implicit ``+Inf`` overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _Histogram:
    """Streaming summary of observed values: count/sum/min/max plus
    fixed-bound buckets (Prometheus ``le`` semantics: a value counts in
    the first bucket whose upper bound it does not exceed)."""

    __slots__ = ("count", "total", "min", "max", "bounds", "bucket_counts")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # One slot per bound plus the +Inf overflow; non-cumulative.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``q`` in [0, 1]).

        Linear interpolation inside the covering bucket, the same
        estimate ``histogram_quantile()`` computes server-side; exact at
        the recorded min/max, which also bound the result.
        """
        if not self.count:
            return 0.0
        assert self.min is not None and self.max is not None
        target = q * self.count
        running = 0.0
        lower = 0.0
        for bound, n in zip(self.bounds, self.bucket_counts):
            if running + n >= target and n:
                position = (target - running) / n
                estimate = lower + (bound - lower) * position
                return min(max(estimate, self.min), self.max)
            running += n
            lower = bound
        return self.max  # target falls in the +Inf overflow bucket

    def as_dict(self) -> Dict[str, object]:
        buckets = {
            ("+Inf" if bound == float("inf") else f"{bound:g}"): cum
            for bound, cum in self.cumulative_buckets()
        }
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "buckets": buckets,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def copy(self) -> "_Histogram":
        """An independent deep copy (for merge-under-lock snapshots)."""
        twin = _Histogram(self.bounds)
        twin.count = self.count
        twin.total = self.total
        twin.min = self.min
        twin.max = self.max
        twin.bucket_counts = list(self.bucket_counts)
        return twin

    def merge(self, other: "_Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        if self.bounds == other.bounds:
            for i, n in enumerate(other.bucket_counts):
                self.bucket_counts[i] += n
        else:  # mismatched layouts: re-bucket by each upper bound
            for bound, n in zip(other.bounds, other.bucket_counts):
                if n:
                    slot = bisect.bisect_left(self.bounds, bound)
                    self.bucket_counts[slot] += n
            self.bucket_counts[-1] += other.bucket_counts[-1]


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by dotted metric names.

    Thread-safe: the serve handlers record from every request thread and
    ``/metrics`` snapshots concurrently, so each operation holds a lock.
    The naive ``get-then-set`` increment would drop counts under
    concurrency (the cache-threading battery pins the fixed behavior).
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record the last-seen value of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            hist.observe(value)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """All counters, sorted by name (a copy; safe to serialize)."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges(self) -> Dict[str, float]:
        """All gauges, sorted by name (a copy)."""
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def histograms(self) -> Dict[str, Dict[str, object]]:
        """All histograms as {name: {count, sum, min, max, mean, buckets,
        p50, p95, p99}}."""
        with self._lock:
            return {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            }

    def histogram_quantile(self, name: str, q: float) -> float:
        """Bucket-interpolated quantile of histogram ``name`` (0 when
        the histogram has no observations)."""
        with self._lock:
            hist = self._histograms.get(name)
            return hist.quantile(q) if hist is not None else 0.0

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serializable dict of everything recorded.

        Taken under a single lock hold so the three sections are
        mutually consistent even while request threads keep recording.
        """
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.as_dict()
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges take
        the other's last value, histograms combine)."""
        # Lock ordering: other first, to copy its state atomically, then
        # self; merge is only ever called parent <- worker so the two
        # registries are distinct and no cycle is possible.  Histograms
        # are deep-copied under the lock: folding the live objects in
        # later would race concurrent observe() on the same histogram
        # and merge torn count/sum/bucket triples.
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            hists = {
                name: hist.copy()
                for name, hist in other._histograms.items()
            }
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(gauges)
            for name, hist in hists.items():
                mine = self._histograms.get(name)
                if mine is None:
                    mine = self._histograms[name] = _Histogram()
                mine.merge(hist)

    def format(self, prefixes: Optional[Mapping[str, None]] = None) -> str:
        """Human-readable multi-line dump, optionally filtered by prefix.

        ``prefixes`` (an iterable of name prefixes; a mapping's keys work
        too) limits the output to matching metric names.
        """
        wanted = tuple(prefixes) if prefixes is not None else None

        def keep(name: str) -> bool:
            return wanted is None or name.startswith(wanted)

        counters = self.counters()
        gauges = self.gauges()
        histograms = self.histograms()
        lines: List[str] = []
        for name, value in counters.items():
            if keep(name):
                lines.append(f"  {name} = {value}")
        for name, value in gauges.items():
            if keep(name):
                lines.append(f"  {name} = {value:g} (gauge)")
        for name, hist in histograms.items():
            if keep(name):
                lines.append(
                    f"  {name} = count={hist['count']} mean={hist['mean']:.3g}"
                    f" min={hist['min']:g} max={hist['max']:g} (histogram)"
                )
        return "\n".join(lines)


class NullMetrics(MetricsRegistry):
    """A registry that drops everything.

    Exists so un-guarded code paths holding a registry reference stay
    correct when instrumentation is disabled; the hot paths never reach
    it because they gate on ``OBS.enabled`` first.
    """

    __slots__ = ()

    def inc(self, name: str, amount: int = 1) -> None:  # pragma: no cover
        pass

    def gauge(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    def observe(self, name: str, value: float) -> None:  # pragma: no cover
        pass


#: Shared do-nothing registry used while instrumentation is disabled.
NULL_METRICS = NullMetrics()
