"""Metrics registry: counters, gauges, and histograms for query telemetry.

The registry is deliberately minimal — plain dict-backed counters with
string names — because its hot-path cost matters more than its feature
set.  Instrumented code guards every call behind ``if OBS.enabled:`` (see
:mod:`repro.obs.runtime`), so when observability is off the registry is
never touched at all; :data:`NULL_METRICS` exists only as a safe default
for code that stores a registry reference up front.

Naming convention (documented in docs/OBSERVABILITY.md): dot-separated,
``<subsystem>.<event>`` — e.g. ``search.expansions``, ``refine.rounds``,
``csr.invalidations``.  Counters count events, gauges record last-seen
values, histograms accumulate (count, sum, min, max) of observations.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional


class _Histogram:
    """Streaming summary of observed values: count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }

    def merge(self, other: "_Histogram") -> None:
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by dotted metric names.

    Thread-safe: the serve handlers record from every request thread and
    ``/metrics`` snapshots concurrently, so each operation holds a lock.
    The naive ``get-then-set`` increment would drop counts under
    concurrency (the cache-threading battery pins the fixed behavior).
    """

    __slots__ = ("_counters", "_gauges", "_histograms", "_lock")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record the last-seen value of gauge ``name``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram()
            hist.observe(value)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """All counters, sorted by name (a copy; safe to serialize)."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def gauges(self) -> Dict[str, float]:
        """All gauges, sorted by name (a copy)."""
        with self._lock:
            return dict(sorted(self._gauges.items()))

    def histograms(self) -> Dict[str, Dict[str, float]]:
        """All histograms as {name: {count, sum, min, max, mean}}."""
        with self._lock:
            return {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            }

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serializable dict of everything recorded."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters add, gauges take
        the other's last value, histograms combine)."""
        # Lock ordering: other first, to copy its state atomically, then
        # self; merge is only ever called parent <- worker so the two
        # registries are distinct and no cycle is possible.
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            hists = {name: hist for name, hist in other._histograms.items()}
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(gauges)
            for name, hist in hists.items():
                mine = self._histograms.get(name)
                if mine is None:
                    mine = self._histograms[name] = _Histogram()
                mine.merge(hist)

    def format(self, prefixes: Optional[Mapping[str, None]] = None) -> str:
        """Human-readable multi-line dump, optionally filtered by prefix.

        ``prefixes`` (an iterable of name prefixes; a mapping's keys work
        too) limits the output to matching metric names.
        """
        wanted = tuple(prefixes) if prefixes is not None else None

        def keep(name: str) -> bool:
            return wanted is None or name.startswith(wanted)

        counters = self.counters()
        gauges = self.gauges()
        histograms = self.histograms()
        lines: List[str] = []
        for name, value in counters.items():
            if keep(name):
                lines.append(f"  {name} = {value}")
        for name, value in gauges.items():
            if keep(name):
                lines.append(f"  {name} = {value:g} (gauge)")
        for name, hist in histograms.items():
            if keep(name):
                lines.append(
                    f"  {name} = count={hist['count']} mean={hist['mean']:.3g}"
                    f" min={hist['min']:g} max={hist['max']:g} (histogram)"
                )
        return "\n".join(lines)


class NullMetrics(MetricsRegistry):
    """A registry that drops everything.

    Exists so un-guarded code paths holding a registry reference stay
    correct when instrumentation is disabled; the hot paths never reach
    it because they gate on ``OBS.enabled`` first.
    """

    __slots__ = ()

    def inc(self, name: str, amount: int = 1) -> None:  # pragma: no cover
        pass

    def gauge(self, name: str, value: float) -> None:  # pragma: no cover
        pass

    def observe(self, name: str, value: float) -> None:  # pragma: no cover
        pass


#: Shared do-nothing registry used while instrumentation is disabled.
NULL_METRICS = NullMetrics()
