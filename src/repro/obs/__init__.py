"""Observability: span tracing, metrics, and the EXPLAIN surface.

Zero-overhead-when-disabled instrumentation for the whole query and
build path.  See docs/OBSERVABILITY.md for the span taxonomy and metric
name reference.
"""

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.promtext import parse_prometheus, render_prometheus
from repro.obs.reqlog import RequestLog, SloWindow, mint_request_id
from repro.obs.runtime import OBS, Instrumentation, charge_expansions, instrumented
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    write_trace,
)

__all__ = [
    "OBS",
    "Instrumentation",
    "instrumented",
    "charge_expansions",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "write_trace",
    "FlightRecorder",
    "RequestLog",
    "SloWindow",
    "mint_request_id",
    "render_prometheus",
    "parse_prometheus",
]
