"""Observability: span tracing, metrics, and the EXPLAIN surface.

Zero-overhead-when-disabled instrumentation for the whole query and
build path.  See docs/OBSERVABILITY.md for the span taxonomy and metric
name reference.
"""

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.runtime import OBS, Instrumentation, charge_expansions, instrumented
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    write_trace,
)

__all__ = [
    "OBS",
    "Instrumentation",
    "instrumented",
    "charge_expansions",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "write_trace",
]
