"""A bounded lock-free flight recorder for the serve stack.

The last ``capacity`` request records — id, route, status, outcome,
epoch/serial, latency, and (for admin mutations) the op itself — in a
preallocated ring.  Writers never take a lock: the slot index comes from
``itertools.count()`` (a single C-level atomic step under the GIL) and
the slot store is one list assignment, so a recorder on the hot path
costs two bytecode-cheap operations plus building the record dict.

Readers (:meth:`dump` — ``GET /admin/flight``, the ``SIGUSR2`` handler,
and the chaos drill's pre-kill capture) snapshot the slot list and sort
by sequence number; a record being overwritten mid-dump yields either
the old or the new complete record, never a torn one (slot assignment
is atomic).  That is exactly the black-box property the chaos drill
needs: after SIGKILL, the pre-kill dump is an attributable timeline of
what the dead process had acked, diffable against the recovered WAL.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional


class FlightRecorder:
    """Last-N request ring; ``capacity == 0`` disables recording."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(0, int(capacity))
        self._slots: List[Optional[Dict[str, object]]] = (
            [None] * self.capacity
        )
        self._seq = itertools.count()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, entry: Dict[str, object]) -> None:
        """Stamp ``entry`` with a sequence number and store it.

        ``entry`` must not be mutated by the caller afterwards — dumps
        return the stored object itself.
        """
        if not self.capacity:
            return
        seq = next(self._seq)
        entry["seq"] = seq
        self._slots[seq % self.capacity] = entry

    def dump(self) -> List[Dict[str, object]]:
        """The live records, oldest first (by sequence number)."""
        snapshot = list(self._slots)  # one atomic-ish copy of the ring
        records = [entry for entry in snapshot if entry is not None]
        records.sort(key=lambda entry: entry["seq"])  # type: ignore[arg-type]
        return records

    def __len__(self) -> int:
        return sum(1 for entry in self._slots if entry is not None)
