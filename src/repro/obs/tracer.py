"""Nested span tracing with a no-op fast path.

A :class:`Tracer` records a tree of named spans (wall-clock intervals
with attributes) per traced operation.  Spans nest lexically::

    with tracer.span("query", algorithm="bkws") as sp:
        with tracer.span("layer-selection"):
            ...
        sp.annotate(layer=2)

When instrumentation is disabled the module-level :data:`NULL_TRACER`
stands in: its ``span()`` returns one shared, stateless context manager,
so the disabled path costs a single attribute check plus a no-op
``with`` — no allocation, no clock read.

Traces serialize two ways:

* :meth:`Tracer.format_tree` — the human ``--explain`` rendering, with
  repeated identical siblings aggregated as ``name ×N``.
* :meth:`Tracer.to_events` / :func:`write_trace` — Chrome-trace-format
  "X" (complete) events, one JSON object per line.  Load in
  ``chrome://tracing`` / Perfetto after wrapping in a JSON array
  (``jq -s . trace.jsonl``).
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional, TextIO, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.utils.timers import monotonic_now


class Span:
    """One named interval in the trace tree."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, object] = {}
        self.children: List["Span"] = []

    def annotate(self, **attrs: object) -> None:
        """Attach key/value attributes (shown in --explain and traces)."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


class _SpanContext:
    """Context manager that opens/closes one span on the tracer's stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._span, exc)
        return False


class _NullSpan:
    """Shared stateless stand-in for a span when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        pass


#: The one null span every disabled ``span()`` call returns.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of nested spans with monotonic timestamps."""

    def __init__(self, clock: Callable[[], float] = monotonic_now) -> None:
        self._clock = clock
        #: tracer start time; Chrome-trace timestamps are relative to it.
        self.epoch = clock()
        #: top-level spans, in start order.
        self.roots: List[Span] = []
        #: every span, in start order (for serialization).
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a child span of the current span (or a new root)."""
        return _SpanContext(self, name, attrs)

    def _open(self, name: str, attrs: Dict[str, object]) -> Span:
        span = Span(name, self._clock())
        if attrs:
            span.attrs.update(attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Optional[Span], exc: Optional[BaseException]) -> None:
        if span is None:
            return
        span.end = self._clock()
        if exc is not None:
            span.attrs.setdefault("error", type(exc).__name__)
        # Tolerate mispaired exits rather than corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)

    # -- serialization --------------------------------------------------
    def to_events(
        self, metrics: Optional[MetricsRegistry] = None
    ) -> List[Dict[str, object]]:
        """Chrome-trace events: one "X" per span, plus an optional final
        "i" instant event carrying the metrics snapshot."""
        now = self._clock()
        pid = os.getpid()
        events: List[Dict[str, object]] = []
        for span in self.spans:
            end = span.end if span.end is not None else now
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start - self.epoch) * 1e6,
                    "dur": (end - span.start) * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "cat": span.name.split(".")[0].split("-")[0] or "repro",
                    "args": dict(span.attrs),
                }
            )
        if metrics is not None:
            events.append(
                {
                    "name": "metrics",
                    "ph": "i",
                    "ts": (now - self.epoch) * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "s": "g",
                    "cat": "metrics",
                    "args": metrics.snapshot(),
                }
            )
        return events

    def write(
        self, stream: TextIO, metrics: Optional[MetricsRegistry] = None
    ) -> int:
        """Write events to ``stream`` as JSON lines; returns event count."""
        events = self.to_events(metrics=metrics)
        for event in events:
            stream.write(json.dumps(event, sort_keys=True, default=str))
            stream.write("\n")
        return len(events)

    # -- human rendering ------------------------------------------------
    def format_tree(self) -> str:
        """Indented per-phase tree with durations and attributes.

        Runs of siblings with identical (name, attrs) collapse into one
        ``name ×N`` line whose duration is their sum — the evaluator's
        per-level ``explore`` spans would otherwise drown the tree.
        """
        lines: List[str] = []

        def attr_text(attrs: Dict[str, object]) -> str:
            if not attrs:
                return ""
            parts = []
            for key in sorted(attrs):
                value = attrs[key]
                if isinstance(value, float):
                    parts.append(f"{key}={value:.4g}")
                else:
                    parts.append(f"{key}={value}")
            return "  [" + " ".join(parts) + "]"

        def render(span_group: List[Span], depth: int) -> None:
            # Aggregate identical siblings while preserving first-seen order.
            grouped: Dict[Tuple[str, str], List[Span]] = {}
            order: List[Tuple[str, str]] = []
            for child in span_group:
                key = (child.name, repr(sorted(child.attrs.items(),
                                               key=lambda kv: kv[0])))
                if key not in grouped:
                    grouped[key] = []
                    order.append(key)
                grouped[key].append(child)
            for key in order:
                members = grouped[key]
                head = members[0]
                total = sum(m.duration for m in members)
                count = f" ×{len(members)}" if len(members) > 1 else ""
                lines.append(
                    f"{'  ' * depth}{head.name}{count}"
                    f"  {total * 1000:.3f} ms{attr_text(head.attrs)}"
                )
                merged_children: List[Span] = []
                for member in members:
                    merged_children.extend(member.children)
                if merged_children:
                    render(merged_children, depth + 1)

        render(self.roots, 0)
        return "\n".join(lines)


class NullTracer(Tracer):
    """Tracer whose spans cost nothing; active while tracing is off."""

    def __init__(self) -> None:
        # Skip Tracer.__init__ entirely: no clock read, no lists.
        pass

    def span(self, name: str, **attrs: object) -> _NullSpan:  # type: ignore[override]
        return NULL_SPAN

    def to_events(self, metrics=None) -> List[Dict[str, object]]:
        return []

    def write(self, stream, metrics=None) -> int:
        return 0

    def format_tree(self) -> str:
        return ""


#: Shared do-nothing tracer used while instrumentation is disabled.
NULL_TRACER = NullTracer()


def write_trace(
    path: str, tracer: Tracer, metrics: Optional[MetricsRegistry] = None
) -> int:
    """Write ``tracer``'s events to ``path`` as JSONL; returns event count."""
    with open(path, "w", encoding="utf-8") as handle:
        return tracer.write(handle, metrics=metrics)
