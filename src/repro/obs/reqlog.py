"""Request correlation, structured JSONL access logs, and SLO windows.

The serve-side observability substrate (see docs/OBSERVABILITY.md):

* :func:`mint_request_id` / :func:`valid_request_id` — every request
  carries an ``X-Request-Id``.  The server accepts a well-formed client
  ID or mints one, echoes it on the response, and stamps it on every
  access-log line, flight-recorder slot, and (when tracing) the request
  span — so one ID follows a request across client retries, logs, and
  traces.
* :class:`RequestLog` — a thread-safe JSONL appender with size-based
  rotation (``file`` -> ``file.1``), used for both the access log and
  the slow-query log.  One JSON object per line, schema-validated by
  ``python -m repro.obs.schema --kind access``.
* :class:`SloWindow` — per-endpoint latency quantiles and error/shed
  rates over a sliding time window, surfaced in ``/healthz`` (``slo``
  section) and exported as ``slo.*`` gauges for the Prometheus scrape.

Everything here is opt-in from the service's point of view: a server
with no access log, no flight recorder, and a zero-width SLO window
takes the same no-op fast path PR 4's contract demands.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import uuid
from typing import Dict, List, Optional, Tuple

#: Client-supplied request IDs must match this or be re-minted: one
#: header token, no whitespace/quotes, bounded length (log hygiene).
REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._\-]{1,128}$")

#: Statuses an SLO window classifies (everything else counts as "ok").
_DEGRADED, _SHED = 429, 503


def mint_request_id() -> str:
    """A fresh 32-hex request ID (UUID4; thread-safe, no coordination)."""
    return uuid.uuid4().hex


def valid_request_id(candidate: object) -> Optional[str]:
    """``candidate`` if it is a usable request ID, else ``None``."""
    if isinstance(candidate, str) and REQUEST_ID_RE.match(candidate):
        return candidate
    return None


class RequestLog:
    """Append-only JSONL log with size-based rotation.

    Parameters
    ----------
    path:
        Log file; the single rotated generation lives at ``path + ".1"``.
    max_bytes:
        Rotate before a write would push the file past this size.  The
        bound is approximate by one record (the record that triggers
        rotation lands in the fresh file).
    flush_every:
        Routine (``outcome == "ok"``, not slow) records are flushed to
        the OS at most once per this many lines, keeping the hot path
        within the <=2% observability budget; anything worth alerting on
        — degraded, shed, fault, bad-request, or slow — flushes
        immediately so a tail of the live log always shows it.  A crash
        can lose at most ``flush_every - 1`` routine lines (never
        fsynced either way; durability belongs to the WAL, not the log).
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 16 * 1024 * 1024,
        flush_every: int = 32,
    ) -> None:
        self.path = path
        self.max_bytes = max(4096, int(max_bytes))
        self.flush_every = max(1, int(flush_every))
        self.rotations = 0
        self.lines = 0
        self._lock = threading.Lock()
        self._unflushed = 0
        self._handle = open(path, "a", encoding="utf-8")
        self._size = self._handle.tell()

    def write(self, record: Dict[str, object]) -> None:
        """Append one record as a JSON line (see ``flush_every``)."""
        # No sort_keys: callers build records with a fixed literal
        # layout, and re-sorting every line costs hot-path time.
        line = json.dumps(record, separators=(",", ":"))
        data = line + "\n"
        urgent = (
            record.get("outcome", "ok") != "ok" or bool(record.get("slow"))
        )
        with self._lock:
            if self._size and self._size + len(data) > self.max_bytes:
                self._rotate()
            self._handle.write(data)
            self._size += len(data)
            self.lines += 1
            self._unflushed += 1
            if urgent or self._unflushed >= self.flush_every:
                self._handle.flush()
                self._unflushed = 0

    def flush(self) -> None:
        """Push any buffered routine lines to the OS."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._unflushed = 0

    def _rotate(self) -> None:
        """Roll ``path`` to ``path.1`` (caller holds the lock).

        Closing the old handle flushes its buffer into the old file, so
        rotation never reorders or drops buffered lines."""
        self._handle.close()
        os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self._unflushed = 0
        self.rotations += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "RequestLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def outcome_for_status(status: int) -> str:
    """The access-log/flight ``outcome`` class for an HTTP status."""
    if status == _DEGRADED:
        return "degraded"
    if status == _SHED:
        return "shed"
    if status >= 500:
        return "fault"
    if status >= 400:
        return "bad-request"
    return "ok"


class SloWindow:
    """Per-endpoint rolling-window latency quantiles and error rates.

    Observations older than ``window_seconds`` are pruned lazily on both
    record and read; ``max_samples`` bounds memory per endpoint under
    sustained load (oldest samples drop first, which biases the window
    toward recent traffic — exactly what an SLO probe wants).
    """

    def __init__(
        self,
        window_seconds: float = 60.0,
        max_samples: int = 4096,
    ) -> None:
        self.window_seconds = float(window_seconds)
        self.max_samples = int(max_samples)
        self._lock = threading.Lock()
        #: endpoint -> list of (timestamp, latency, status).
        self._samples: Dict[str, List[Tuple[float, float, int]]] = {}

    def observe(
        self,
        endpoint: str,
        latency_seconds: float,
        status: int,
        now: Optional[float] = None,
    ) -> None:
        stamp = time.monotonic() if now is None else now
        with self._lock:
            samples = self._samples.setdefault(endpoint, [])
            samples.append((stamp, latency_seconds, status))
            if len(samples) > self.max_samples:
                del samples[: len(samples) - self.max_samples]
            self._prune(samples, stamp)

    def _prune(
        self, samples: List[Tuple[float, float, int]], now: float
    ) -> None:
        horizon = now - self.window_seconds
        cut = 0
        while cut < len(samples) and samples[cut][0] < horizon:
            cut += 1
        if cut:
            del samples[:cut]

    @staticmethod
    def _quantile(ordered: List[float], q: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(len(ordered) * q))]

    def summary(self, now: Optional[float] = None) -> Dict[str, Dict[str, object]]:
        """``{endpoint: {count, p50/p95/p99 (seconds), rates}}``."""
        stamp = time.monotonic() if now is None else now
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for endpoint, samples in sorted(self._samples.items()):
                self._prune(samples, stamp)
                if not samples:
                    continue
                latencies = sorted(lat for _, lat, _ in samples)
                count = len(samples)
                degraded = sum(1 for _, _, s in samples if s == _DEGRADED)
                shed = sum(1 for _, _, s in samples if s == _SHED)
                faults = sum(
                    1 for _, _, s in samples if s >= 500 and s != _SHED
                )
                out[endpoint] = {
                    "count": count,
                    "window_seconds": self.window_seconds,
                    "p50_seconds": self._quantile(latencies, 0.50),
                    "p95_seconds": self._quantile(latencies, 0.95),
                    "p99_seconds": self._quantile(latencies, 0.99),
                    "degraded_rate": degraded / count,
                    "shed_rate": shed / count,
                    "error_rate": faults / count,
                }
        return out

    def publish_gauges(self, metrics) -> Dict[str, Dict[str, object]]:
        """Compute :meth:`summary` and mirror it as ``slo.*`` gauges.

        Gauge names: ``slo.<endpoint>.<field>`` with the endpoint's
        leading slash dropped and inner slashes flattened, e.g.
        ``slo.query.p99_seconds``.
        """
        summary = self.summary()
        for endpoint, fields in summary.items():
            slug = endpoint.strip("/").replace("/", "_") or "root"
            for key, value in fields.items():
                if key == "window_seconds":
                    continue
                metrics.gauge(f"slo.{slug}.{key}", float(value))
        return summary
