"""Process-wide instrumentation switch and the authoritative expansion tap.

Hot-path contract
-----------------
All instrumented code gates on the module-level singleton::

    from repro.obs.runtime import OBS
    ...
    if OBS.enabled:
        OBS.metrics.inc("refine.rounds", rounds)

``OBS.enabled`` is a plain attribute read — when observability is off the
entire cost is that one check (plus, for spans, a shared no-op context
manager).  Code must *never* cache ``OBS.tracer``/``OBS.metrics`` across
calls: :func:`instrumented` swaps them for the duration of one traced
operation.

Enabling is scoped, not global-mutable-state-forever::

    with instrumented() as inst:
        evaluator.evaluate(query)
    print(inst.metrics.format())
    print(inst.tracer.format_tree())

The context manager saves and restores the previous state, so nested or
re-entrant uses (bench inside verify inside a traced CLI call) compose.

Authoritative expansion counting
--------------------------------
:func:`charge_expansions` is the single place a node expansion is
counted.  It increments the ``search.expansions`` metric *and* charges
the :class:`~repro.utils.budget.Budget` with the same amount — metric
first, so the increment that trips the budget cap is observed on both
sides.  ``Budget.charge`` itself increments ``budget.expansions`` before
raising, so after any search (completed or budget-exceeded)::

    metrics.counter("search.expansions") == budget.expansions

holds exactly; the fault-injection parity drill in ``verify/faults.py``
enforces it across the budget ladder.  Searchers call this helper
instead of ``budget.charge`` directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils.budget import Budget


class Instrumentation:
    """The current tracer + metrics pair and the master on/off flag."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self) -> None:
        self.enabled = False
        self.tracer: Tracer = NULL_TRACER
        self.metrics: MetricsRegistry = NULL_METRICS


#: Process-wide instrumentation state.  Read ``OBS.enabled`` in hot paths;
#: reconfigure only through :func:`instrumented`.
OBS = Instrumentation()


@contextmanager
def instrumented(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    *,
    trace: bool = True,
) -> Iterator[Instrumentation]:
    """Enable instrumentation for the duration of the block.

    Parameters
    ----------
    tracer, metrics:
        Pre-built sinks to record into; fresh ones are created when
        omitted.  ``trace=False`` forces the null tracer (metrics-only
        mode) — used by the verify/bench harnesses, where span volume
        over thousands of queries would be unbounded but counters are
        cheap.

    Yields the active :class:`Instrumentation`, whose ``tracer`` and
    ``metrics`` remain readable after the block exits.
    """
    handle = Instrumentation()
    handle.enabled = True
    handle.tracer = (tracer or Tracer()) if trace else NULL_TRACER
    handle.metrics = metrics or MetricsRegistry()

    saved = (OBS.enabled, OBS.tracer, OBS.metrics)
    OBS.enabled = True
    OBS.tracer = handle.tracer
    OBS.metrics = handle.metrics
    try:
        yield handle
    finally:
        OBS.enabled, OBS.tracer, OBS.metrics = saved


def charge_expansions(budget: Optional[Budget], amount: int = 1) -> None:
    """Count ``amount`` node expansions — the one authoritative tap.

    Increments the ``search.expansions`` counter (when instrumentation is
    on) and then charges ``budget`` (when one is given).  The metric is
    bumped first so the expansion that raises
    :class:`~repro.utils.errors.BudgetExceeded` is still counted,
    keeping the counter equal to ``budget.expansions`` on every exit
    path.
    """
    if amount <= 0:
        return
    if OBS.enabled:
        OBS.metrics.inc("search.expansions", amount)
    if budget is not None:
        budget.charge(amount)
