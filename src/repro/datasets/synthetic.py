"""Synthetic graphs (the ``synt-*`` rows of Tab. 2).

The paper's synthetic datasets pair random graphs of 1M-8M vertices with
generated ontologies of 5,000 types (average degree 5, height 7).  We keep
the vertex:edge ratios and the ontology shape and scale the counts down by
a configurable factor (default 1/1000, giving ``synt-1k`` .. ``synt-8k``).

Labels are drawn from the ontology's *leaf* types with a Zipf-like skew so
some labels are frequent (generalization merges a lot) and many are rare —
the regime in which BiG-index's cost model has real decisions to make.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.digraph import Graph
from repro.ontology.ontology import OntologyGraph, generate_ontology
from repro.utils.errors import GraphError

#: (name, |V|, |E|) scaled from Tab. 2's synt-1M..synt-8M by 1/1000.
SYNTHETIC_SCALES: Dict[str, Tuple[int, int]] = {
    "synt-1k": (1_000, 3_000),
    "synt-2k": (2_000, 6_000),
    "synt-4k": (4_000, 8_000),
    "synt-8k": (8_000, 16_000),
}

#: (name, layers, layer width, out-branching) for the deep layered DAGs.
DEEP_SCALES: Dict[str, Tuple[int, int, int]] = {
    "synt-deep-1k": (10, 100, 2),
    "synt-deep-3k": (30, 100, 2),
}

#: (name, |V|, |E|, community size, bridge edges per adjacent community)
#: for the locality-structured graphs that sharding benchmarks use.
COMMUNITY_SCALES: Dict[str, Tuple[int, int, int, int]] = {
    "synt-100k": (100_000, 220_000, 1_000, 4),
}


def zipf_choice(rng: random.Random, items: Sequence[str], exponent: float = 1.0) -> str:
    """Draw one item with probability proportional to ``1 / rank**exponent``."""
    n = len(items)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
    return rng.choices(items, weights=weights, k=1)[0]


class ZipfSampler:
    """Zipf-skewed sampler with O(n) setup and O(log n) draws.

    :func:`zipf_choice` rebuilds its weight vector on every call, which
    is fine for thousand-vertex graphs but makes labeling a 100k-vertex
    graph quadratic-ish in practice.  This sampler folds the weights
    into a cumulative table once and draws by binary search, so
    streaming construction stays O(V log L) with no per-draw
    temporaries.
    """

    def __init__(self, items: Sequence[str], exponent: float = 1.0) -> None:
        if not items:
            raise GraphError("cannot sample from an empty item list")
        self.items = list(items)
        self._cumulative = list(
            accumulate(
                1.0 / (rank + 1) ** exponent
                for rank in range(len(self.items))
            )
        )

    def draw(self, rng: random.Random) -> str:
        point = rng.random() * self._cumulative[-1]
        return self.items[bisect_right(self._cumulative, point)]


def generate_synthetic_graph(
    num_vertices: int,
    num_edges: int,
    ontology: OntologyGraph,
    seed: int = 0,
    zipf_exponent: float = 1.0,
    hub_fraction: float = 0.3,
) -> Graph:
    """A random directed graph labeled from the ontology's leaf types.

    Parameters
    ----------
    num_vertices / num_edges:
        Target sizes; parallel edges and self-loops are skipped, so the
        realized edge count can fall slightly short on dense requests.
    ontology:
        Supplies the leaf types used as labels.
    seed:
        RNG seed; generation is deterministic.
    zipf_exponent:
        Skew of the label distribution (0 = uniform).
    hub_fraction:
        Fraction of edges attached preferentially to already-popular
        targets, creating the hub structure real knowledge graphs have.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    rng = random.Random(seed)
    leaves = ontology.leaves()
    if not leaves:
        raise GraphError("ontology has no leaf types to label with")
    # Shuffle once so the Zipf head is not alphabetical.
    shuffled = list(leaves)
    rng.shuffle(shuffled)

    graph = Graph()
    for _ in range(num_vertices):
        graph.add_vertex(zipf_choice(rng, shuffled, zipf_exponent))

    popular: List[int] = []
    attempts = 0
    max_attempts = num_edges * 10
    while graph.num_edges < num_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(num_vertices)
        if popular and rng.random() < hub_fraction:
            v = rng.choice(popular)
        else:
            v = rng.randrange(num_vertices)
        if u == v:
            continue
        if graph.add_edge(u, v):
            popular.append(v)
            if len(popular) > 1000:
                popular = popular[-1000:]
    return graph


def generate_community_graph(
    num_vertices: int,
    num_edges: int,
    ontology: OntologyGraph,
    seed: int = 0,
    community_size: int = 1_000,
    bridge_edges: int = 4,
    zipf_exponent: float = 1.0,
) -> Graph:
    """A chain-of-communities graph with streamed construction.

    Vertices form consecutive communities of ``community_size``; edges
    are random *within* a community except for ``bridge_edges`` edges
    linking each community to the next.  The locality is what massive
    real graphs have (and what uniform random graphs lack): a balanced
    partitioner can split the chain into near-edge-disjoint shards
    whose cut stays a tiny fraction of the edge set, which is the
    regime the sharded BiG-index benchmarks need to exhibit.

    Construction is streamed: labels come from a precomputed
    :class:`ZipfSampler` table and edges are drawn community by
    community, so beyond the graph itself nothing O(V) or O(E) is ever
    materialized.  Deterministic in ``seed``.
    """
    if num_vertices <= 0:
        raise GraphError("num_vertices must be positive")
    if community_size <= 1:
        raise GraphError("community_size must be at least 2")
    rng = random.Random(seed)
    leaves = ontology.leaves()
    if not leaves:
        raise GraphError("ontology has no leaf types to label with")
    shuffled = list(leaves)
    rng.shuffle(shuffled)
    sampler = ZipfSampler(shuffled, zipf_exponent)

    graph = Graph()
    for _ in range(num_vertices):
        graph.add_vertex(sampler.draw(rng))

    num_communities = (num_vertices + community_size - 1) // community_size
    num_bridges = bridge_edges * max(0, num_communities - 1)
    intra_total = max(0, num_edges - num_bridges)
    base_quota = intra_total // num_communities
    remainder = intra_total - base_quota * num_communities
    for c in range(num_communities):
        lo = c * community_size
        hi = min(num_vertices, lo + community_size)
        quota = base_quota + (1 if c < remainder else 0)
        added = 0
        attempts = 0
        while added < quota and attempts < quota * 10:
            attempts += 1
            u = rng.randrange(lo, hi)
            v = rng.randrange(lo, hi)
            if u != v and graph.add_edge(u, v):
                added += 1
        if c + 1 < num_communities:
            next_lo = (c + 1) * community_size
            next_hi = min(num_vertices, next_lo + community_size)
            added = 0
            attempts = 0
            while added < bridge_edges and attempts < bridge_edges * 10:
                attempts += 1
                u = rng.randrange(lo, hi)
                v = rng.randrange(next_lo, next_hi)
                if graph.add_edge(u, v):
                    added += 1
    return graph


def community_dataset(
    name: str,
    seed: int = 0,
    ontology_types: int = 500,
    ontology_fanout: int = 5,
    ontology_height: int = 7,
) -> Tuple[Graph, OntologyGraph]:
    """One of the ``COMMUNITY_SCALES`` datasets with its ontology.

    Same ontology shape as :func:`synthetic_dataset`; the graph is the
    locality-structured chain of communities that the sharding
    benchmarks partition.
    """
    try:
        num_vertices, num_edges, community_size, bridges = COMMUNITY_SCALES[
            name
        ]
    except KeyError:
        raise GraphError(
            f"unknown community dataset {name!r}; "
            f"choose from {sorted(COMMUNITY_SCALES)}"
        ) from None
    ontology = generate_ontology(
        ontology_types,
        avg_fanout=ontology_fanout,
        height=ontology_height,
        seed=seed,
    )
    graph = generate_community_graph(
        num_vertices,
        num_edges,
        ontology,
        seed=seed,
        community_size=community_size,
        bridge_edges=bridges,
    )
    return graph, ontology


def generate_deep_graph(
    num_layers: int,
    layer_width: int,
    ontology: OntologyGraph,
    seed: int = 0,
    branching: int = 2,
) -> Graph:
    """A layered DAG whose bisimulation refinement is *deep*.

    ``num_layers`` layers of ``layer_width`` vertices; every vertex has
    ``branching`` out-edges into the next layer.  Each layer carries one
    leaf type, except the last layer which alternates two types — that
    single seam makes the partition refine one layer per round, so the
    refinement depth equals the number of layers.  Random graphs like
    :func:`generate_synthetic_graph` converge in 2–3 rounds and therefore
    never exercise the long-chain regime that dominates construction on
    real knowledge graphs (deep type hierarchies, citation chains); this
    shape is the corpus's depth stressor and the benchmark where
    worklist refinement shows its asymptotic advantage over the global
    re-signature loop.
    """
    if num_layers < 2:
        raise GraphError("a deep graph needs at least two layers")
    if layer_width <= 0 or branching <= 0:
        raise GraphError("layer_width and branching must be positive")
    leaves = ontology.leaves()
    if len(leaves) < num_layers + 1:
        raise GraphError(
            f"ontology has {len(leaves)} leaf types; "
            f"need {num_layers + 1} for {num_layers} layers plus the seam"
        )
    rng = random.Random(seed)
    shuffled = list(leaves)
    rng.shuffle(shuffled)
    seam_label = shuffled[num_layers]

    graph = Graph()
    for layer in range(num_layers):
        for position in range(layer_width):
            if layer == num_layers - 1 and position % 2:
                graph.add_vertex(seam_label)
            else:
                graph.add_vertex(shuffled[layer])
    for layer in range(num_layers - 1):
        base = layer * layer_width
        next_base = base + layer_width
        for position in range(layer_width):
            v = base + position
            for target in rng.sample(
                range(next_base, next_base + layer_width),
                min(branching, layer_width),
            ):
                graph.add_edge(v, target)
    return graph


def deep_dataset(
    name: str,
    seed: int = 0,
    ontology_types: int = 500,
    ontology_fanout: int = 5,
    ontology_height: int = 7,
) -> Tuple[Graph, OntologyGraph]:
    """One of the ``synt-deep-*`` layered datasets with its ontology.

    Same ontology shape as :func:`synthetic_dataset`; the graph is the
    deep layered DAG of :func:`generate_deep_graph`.

    >>> graph, ontology = deep_dataset("synt-deep-1k")
    >>> graph.num_vertices
    1000
    """
    try:
        num_layers, layer_width, branching = DEEP_SCALES[name]
    except KeyError:
        raise GraphError(
            f"unknown deep dataset {name!r}; choose from {sorted(DEEP_SCALES)}"
        ) from None
    ontology = generate_ontology(
        ontology_types,
        avg_fanout=ontology_fanout,
        height=ontology_height,
        seed=seed,
    )
    graph = generate_deep_graph(
        num_layers, layer_width, ontology, seed=seed, branching=branching
    )
    return graph, ontology


def verification_ontology() -> OntologyGraph:
    """The two-level toy ontology used by the verification corpus.

    ``A, B -> AB``, ``C, D -> CD``, ``E -> EF`` and everything to ``Top`` —
    small enough that collisions (Def. 4.1) and non-collisions both occur
    among two-keyword queries over the leaf alphabet.
    """
    ontology = OntologyGraph()
    for subtype, supertype in [
        ("A", "AB"),
        ("B", "AB"),
        ("C", "CD"),
        ("D", "CD"),
        ("E", "EF"),
        ("AB", "Top"),
        ("CD", "Top"),
        ("EF", "Top"),
    ]:
        ontology.add_subtype(subtype, supertype)
    return ontology


def verification_corpus(
    quick: bool = True, seed: int = 0
) -> List[Tuple[str, Graph, OntologyGraph]]:
    """Deterministic ``(name, graph, ontology)`` cases for ``repro verify``.

    The quick corpus is two small random graphs over the toy ontology —
    big enough to exercise multi-layer summarization, small enough for the
    exhaustive oracle comparisons CI runs on every push.  The full corpus
    adds the scaled ``synt-1k`` benchmark graph and the ``synt-deep-3k``
    layered DAG (the refinement-depth stressor), each with its generated
    ontology.
    """
    ontology = verification_ontology()
    cases: List[Tuple[str, Graph, OntologyGraph]] = [
        (
            "verify-toy-a",
            generate_synthetic_graph(40, 90, ontology, seed=seed),
            ontology,
        ),
        (
            "verify-toy-b",
            generate_synthetic_graph(
                60, 150, ontology, seed=seed + 1, zipf_exponent=0.0
            ),
            ontology,
        ),
    ]
    if not quick:
        graph, synt_ontology = synthetic_dataset("synt-1k", seed=seed)
        cases.append(("synt-1k", graph, synt_ontology))
        deep_graph, deep_ontology = deep_dataset("synt-deep-3k", seed=seed)
        cases.append(("synt-deep-3k", deep_graph, deep_ontology))
    return cases


def synthetic_dataset(
    name: str,
    seed: int = 0,
    ontology_types: int = 500,
    ontology_fanout: int = 5,
    ontology_height: int = 7,
) -> Tuple[Graph, OntologyGraph]:
    """One of the Tab. 2 synthetic datasets, scaled (``synt-1k``...).

    The ontology matches the paper's synthetic shape: average degree 5 and
    height 7 ("consistent with the heights and average degrees of the real
    ontology graphs"), with the type count scaled alongside the graph.

    Community-structured names (``synt-100k``) dispatch to
    :func:`community_dataset` so callers can treat every synthetic
    dataset uniformly.

    >>> graph, ontology = synthetic_dataset("synt-1k")
    >>> graph.num_vertices
    1000
    """
    if name in COMMUNITY_SCALES:
        return community_dataset(
            name,
            seed=seed,
            ontology_types=ontology_types,
            ontology_fanout=ontology_fanout,
            ontology_height=ontology_height,
        )
    try:
        num_vertices, num_edges = SYNTHETIC_SCALES[name]
    except KeyError:
        raise GraphError(
            f"unknown synthetic dataset {name!r}; "
            f"choose from "
            f"{sorted([*SYNTHETIC_SCALES, *COMMUNITY_SCALES])}"
        ) from None
    ontology = generate_ontology(
        ontology_types,
        avg_fanout=ontology_fanout,
        height=ontology_height,
        seed=seed,
    )
    graph = generate_synthetic_graph(
        num_vertices, num_edges, ontology, seed=seed
    )
    return graph, ontology
