"""Shape-preserving stand-ins for YAGO3, DBpedia and IMDB (Tab. 2).

Real knowledge graphs compress well under generalization + bisimulation
(Tab. 3: YAGO3's layer-1 summary is 27.9% of the data graph) because they
are *structurally repetitive*: large families of sibling entities share the
same few neighbors — the "100 Persons pointing at UC Berkeley" of Fig. 1.
Purely random graphs lack that repetition, which is why the paper's own
synthetic datasets compress far less (Tab. 3: 75-88%); our ``synt-*``
generators stay random for exactly that reason.

The generators here use an entity/hub community model:

* **hubs** — a small set of well-known vertices (universities, states,
  studios...) wired into chains (univ -> state) like Fig. 1's backbone;
* **communities** — batches of sibling entities that all point at *the
  same* target set (a few hubs); each community draws its entity labels
  from the leaf subtypes of one shared parent type, so the siblings become
  bisimilar only after one generalization step — the effect BiG-index
  exploits.  Successor-based bisimulation merges a community into one
  supernode because every member has an identical successor set;
* **noise** — a fraction of entities get an extra private random edge,
  which splits them off their community.  The noise rate is the knob that
  reproduces each dataset's compression ratio.

Dataset-specific parameters reproduce the originals' headline properties:

=============  ==========  ===========  =================================
dataset        |E| / |V|   ontology     behaviour reproduced
=============  ==========  ===========  =================================
yago-like      ~2.0        own          strong layer-1 compression (~0.3)
dbpedia-like   ~2.7        yago-like's  ~73% typing coverage, weaker
                                        compression (~0.6)
imdb-like      ~3.6        yago-like's  moderate compression (~0.4), dense
                                        neighborhoods that blow up
                                        r-clique's neighbor list
=============  ==========  ===========  =================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.digraph import Graph
from repro.ontology.ontology import OntologyGraph, generate_ontology
from repro.ontology.typing import TypeAssigner
from repro.utils.errors import GraphError


@dataclass
class Dataset:
    """A named benchmark dataset: graph + ontology + provenance note."""

    name: str
    graph: Graph
    ontology: OntologyGraph
    note: str = ""

    @property
    def stats(self) -> Dict[str, int]:
        """The Tab. 2 row: |V|, |E|, |V_ont|, |E_ont|."""
        return {
            "V": self.graph.num_vertices,
            "E": self.graph.num_edges,
            "V_ont": self.ontology.num_types,
            "E_ont": self.ontology.num_edges,
        }


def generate_knowledge_graph(
    num_vertices: int,
    ontology: OntologyGraph,
    seed: int = 0,
    hub_fraction: float = 0.03,
    avg_community: int = 30,
    targets_per_community: Tuple[int, int] = (1, 3),
    noise_ratio: float = 0.15,
    hub_out_degree: int = 2,
    two_level_fraction: float = 0.5,
) -> Graph:
    """An entity/hub community knowledge graph labeled from the ontology.

    Parameters
    ----------
    num_vertices:
        Total vertices (hubs + entities).
    ontology:
        Supplies parent types and their leaf subtypes.
    seed:
        RNG seed; generation is deterministic.
    hub_fraction:
        Fraction of vertices that become hubs.
    avg_community:
        Expected sibling-entity community size (exponentially distributed).
    targets_per_community:
        Inclusive range for how many hubs each community points at; this
        is the main edge-density knob (edges/vertex ~ mean(targets)
        + noise_ratio + hub_out_degree * hub_fraction).
    noise_ratio:
        Fraction of entities receiving one extra private random edge,
        splitting them from their community — the compression knob.
    hub_out_degree:
        Outgoing backbone edges per hub (hub -> hub chains).
    two_level_fraction:
        Fraction of communities built as two-level fans: members point at
        shared *representative* entities which point at the hubs (the
        "Person -> Univ. -> State" chains of Fig. 1).  Deeper in-trees
        make backward keyword expansion do real work, as on real
        knowledge graphs.
    """
    if num_vertices < 10:
        raise GraphError("num_vertices must be at least 10")
    rng = random.Random(seed)

    # Parent types whose children include leaves: communities draw labels
    # from the children so one generalization step unifies the community.
    parents: List[Tuple[str, List[str]]] = []
    for t in sorted(ontology.types()):
        children = [
            c for c in ontology.direct_subtypes(t) if not ontology.direct_subtypes(c)
        ]
        if children:
            parents.append((t, sorted(children)))
    if not parents:
        raise GraphError("ontology has no parent types with leaf children")

    graph = Graph()
    num_hubs = max(3, int(num_vertices * hub_fraction))

    # Hubs: labeled from a small shared pool (states, leagues, studios...)
    # so hub labels — the forward-reachable vocabulary keyword queries
    # lean on — have measurable support, and wired into short chains.
    # One child per parent keeps the pool semantically diverse: hub
    # keywords from different queries generalize to *different* parents,
    # as the paper's Club/Player/England-style queries do.
    pool_parents = rng.sample(parents, min(10, len(parents)))
    hub_label_pool = sorted(
        rng.choice(children) for _, children in pool_parents
    )
    hubs = []
    for _ in range(num_hubs):
        hubs.append(graph.add_vertex(rng.choice(hub_label_pool)))
    for hub in hubs:
        for _ in range(hub_out_degree):
            other = rng.choice(hubs)
            if other != hub:
                graph.add_edge(hub, other)

    # Communities of sibling entities pointing at a shared hub subset.
    # Parent types are drawn with a Zipf-like skew so the head labels
    # reach the several-percent supports real knowledge graphs show
    # (the paper's Tab. 4 keywords cover 0.1%-4.3% of YAGO3's vertices).
    shuffled_parents = list(parents)
    rng.shuffle(shuffled_parents)
    parent_weights = [1.0 / (rank + 1) for rank in range(len(shuffled_parents))]
    lo, hi = targets_per_community
    while graph.num_vertices < num_vertices:
        parent, children = rng.choices(
            shuffled_parents, weights=parent_weights, k=1
        )[0]
        size = min(
            max(2, int(rng.expovariate(1.0 / avg_community)) + 2),
            num_vertices - graph.num_vertices,
        )
        num_targets = rng.randint(lo, min(hi, len(hubs)))
        targets = rng.sample(hubs, num_targets)
        if rng.random() < two_level_fraction and size >= 4:
            # Two-level fan: representatives between members and hubs.
            # Representative labels use the same skewed draw so the
            # pointed-at vocabulary stays keyword-worthy.
            rep_parent, rep_children = rng.choices(
                shuffled_parents, weights=parent_weights, k=1
            )[0]
            num_reps = max(1, size // 8)
            reps = []
            for _ in range(num_reps):
                rep = graph.add_vertex(rng.choice(rep_children))
                for hub in targets:
                    graph.add_edge(rep, hub)
                reps.append(rep)
            # Same-label members share a representative so they stay
            # bisimilar after generalization (the compression BiG-index
            # needs survives the extra level).
            rep_for_label: Dict[str, int] = {}
            for _ in range(size - num_reps):
                if graph.num_vertices >= num_vertices:
                    break
                label = rng.choice(children)
                rep = rep_for_label.setdefault(label, rng.choice(reps))
                entity = graph.add_vertex(label)
                graph.add_edge(entity, rep)
        else:
            for _ in range(size):
                entity = graph.add_vertex(rng.choice(children))
                for hub in targets:
                    graph.add_edge(entity, hub)

    # Noise: extra private out-edges split entities off their community.
    entities = [v for v in graph.vertices() if v >= num_hubs]
    num_noisy = int(len(entities) * noise_ratio)
    for v in rng.sample(entities, min(num_noisy, len(entities))):
        target = rng.randrange(graph.num_vertices)
        if target != v:
            graph.add_edge(v, target)
    return graph


def _yago_ontology(seed: int, num_types: int) -> OntologyGraph:
    """The shared 'YAGO taxonomy' stand-in (avg fan-out 5, height 7)."""
    return generate_ontology(
        num_types, avg_fanout=5, height=7, seed=seed, label_prefix="Y"
    )


def yago_like(scale: float = 1.0, seed: int = 0) -> Dataset:
    """YAGO3 stand-in: |V| = 10,000 * scale, |E|/|V| ~ 2.0, fully typed."""
    num_vertices = max(100, int(10_000 * scale))
    ontology = _yago_ontology(seed, num_types=max(80, int(800 * scale)))
    graph = generate_knowledge_graph(
        num_vertices,
        ontology,
        seed=seed,
        avg_community=40,
        targets_per_community=(1, 3),
        noise_ratio=0.19,
    )
    return Dataset(
        name="yago-like",
        graph=graph,
        ontology=ontology,
        note="YAGO3 substitute: ~2.0 edges/vertex, fully ontology-typed",
    )


def dbpedia_like(scale: float = 1.0, seed: int = 1) -> Dataset:
    """DBpedia stand-in: denser, with ~27% of labels outside the ontology.

    The paper reuses YAGO3's ontology for DBpedia because DBpedia's own
    ontology covers under 20% of entities; 73.2% of entities then match
    some type and the rest map to the topmost type (Sec. 6.1.2).  We
    reproduce that by relabeling ~27% of vertices with out-of-ontology
    strings and running :class:`~repro.ontology.typing.TypeAssigner` with
    the default topmost-type fallback.  Small communities plus heavy
    noise yield the weaker compression DBpedia shows in Tab. 3 (~0.6).
    """
    num_vertices = max(100, int(12_000 * scale))
    ontology = _yago_ontology(seed=0, num_types=max(80, int(800 * scale)))
    graph = generate_knowledge_graph(
        num_vertices,
        ontology,
        seed=seed,
        avg_community=10,
        targets_per_community=(2, 3),
        noise_ratio=0.45,
    )
    rng = random.Random(seed + 10)
    foreign = [f"dbp_entity_{i}" for i in range(50)]
    for v in graph.vertices():
        if rng.random() < 0.268:
            graph.relabel_vertex(v, rng.choice(foreign))
    assigner = TypeAssigner(ontology)
    report = assigner.apply(graph)
    return Dataset(
        name="dbpedia-like",
        graph=graph,
        ontology=ontology,
        note=(
            "DBpedia substitute: ~2.7 edges/vertex, "
            f"typing coverage {report.coverage:.1%} before fallback"
        ),
    )


def imdb_like(scale: float = 1.0, seed: int = 2) -> Dataset:
    """IMDB stand-in: movie-style communities, dense neighborhoods.

    The defining property the paper measures on IMDB is that r-clique's
    ``O(mn)`` neighbor list explodes (average neighborhood ~105K, an
    estimated 16 TB); a dense hub backbone makes R-hop balls cover most
    of the graph, reproducing that blow-up at our scale.  Compression sits
    between YAGO's and DBpedia's, matching Tab. 3's 36.7%.
    """
    num_vertices = max(100, int(8_000 * scale))
    ontology = _yago_ontology(seed=0, num_types=max(80, int(800 * scale)))
    graph = generate_knowledge_graph(
        num_vertices,
        ontology,
        seed=seed,
        avg_community=25,
        targets_per_community=(3, 4),
        noise_ratio=0.30,
        hub_fraction=0.015,
        hub_out_degree=6,
    )
    return Dataset(
        name="imdb-like",
        graph=graph,
        ontology=ontology,
        note="IMDB substitute: ~3.6 edges/vertex, hub-heavy (dense balls)",
    )


def dataset_registry(
    scale: float = 1.0,
) -> Dict[str, Callable[[], Dataset]]:
    """Lazy constructors for the three real-dataset stand-ins."""
    return {
        "yago-like": lambda: yago_like(scale=scale),
        "dbpedia-like": lambda: dbpedia_like(scale=scale),
        "imdb-like": lambda: imdb_like(scale=scale),
    }
