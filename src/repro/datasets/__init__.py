"""Datasets and query workloads for the evaluation (Sec. 6.1).

The paper evaluates on YAGO3, DBpedia and IMDB plus synthetic graphs
(Tab. 2).  Those multi-million-vertex dumps are not redistributable and a
pure-Python reproduction targets laptop scale, so this package generates
*shape-preserving* synthetic stand-ins: each named generator matches its
original's vertex/edge ratio, label-frequency skew, and ontology coverage
at a configurable scale (see DESIGN.md's substitution table).  Users with
the real dumps can load them through :mod:`repro.graph.io` instead.
"""

from repro.datasets.synthetic import (
    generate_synthetic_graph,
    synthetic_dataset,
    SYNTHETIC_SCALES,
)
from repro.datasets.knowledge import (
    Dataset,
    dbpedia_like,
    imdb_like,
    yago_like,
    dataset_registry,
)
from repro.datasets.workloads import QuerySpec, benchmark_queries, generate_queries

__all__ = [
    "generate_synthetic_graph",
    "synthetic_dataset",
    "SYNTHETIC_SCALES",
    "Dataset",
    "yago_like",
    "dbpedia_like",
    "imdb_like",
    "dataset_registry",
    "QuerySpec",
    "benchmark_queries",
    "generate_queries",
]
