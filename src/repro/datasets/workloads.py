"""Query workloads (Sec. 6.1.3, Tab. 4).

The paper's YAGO3/DBpedia queries select 2-6 keywords from the ontology
graph that have *semantic relationships* — e.g. ``Q3 = {Club, Player,
England}`` ("the player who works in an England club") — each occurring
more than 3,000 times in the data graph.  We reproduce that recipe:

* keywords are sampled from the labels found inside a small-radius
  neighborhood of a random seed vertex, so the chosen keywords genuinely
  co-occur (answers exist);
* a minimum-support threshold filters rare labels, scaled from the
  paper's 3,000-on-2.6M-vertices to the generated graph's size;
* the benchmark set mirrors Tab. 4's arity mix: two 2-keyword queries,
  three 3-keyword, one 4-, one 5- and one 6-keyword query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.digraph import Graph
from repro.graph.traversal import reachable_within
from repro.search.base import KeywordQuery
from repro.utils.errors import QueryError

#: Tab. 4's keyword counts per query: Q1..Q8.
BENCHMARK_ARITIES: Tuple[int, ...] = (2, 2, 3, 3, 3, 4, 5, 6)


@dataclass(frozen=True)
class QuerySpec:
    """One benchmark query with its Tab. 4-style metadata."""

    qid: str
    keywords: Tuple[str, ...]
    #: per-keyword occurrence counts in the data graph (Tab. 4's third column).
    counts: Tuple[int, ...]

    @property
    def query(self) -> KeywordQuery:
        """The runnable :class:`KeywordQuery`."""
        return KeywordQuery(self.keywords)


def _related_labels(
    graph: Graph, rng: random.Random, radius: int, attempts: int = 200
) -> List[str]:
    """Labels co-occurring inside one random vertex's r-hop ball."""
    for _ in range(attempts):
        seed_vertex = rng.randrange(graph.num_vertices)
        ball = reachable_within(graph, seed_vertex, hops=radius, direction="both")
        labels = sorted({graph.label(v) for v in ball})
        if len(labels) >= 2:
            return labels
    return sorted(graph.distinct_labels())


def generate_queries(
    graph: Graph,
    arities: Sequence[int],
    seed: int = 0,
    min_support: Optional[int] = None,
    radius: int = 3,
    min_answers: int = 0,
    answer_d_max: int = 5,
    ontology=None,
) -> List[QuerySpec]:
    """Generate one query per requested arity.

    Parameters
    ----------
    graph:
        The data graph the keywords must occur in.
    arities:
        Keyword counts, one query each (e.g. ``BENCHMARK_ARITIES``).
    seed:
        RNG seed.
    min_support:
        Minimum occurrences per keyword; defaults to the paper's 3,000
        threshold scaled by ``|V| / 2.6M`` (at least 3).
    radius:
        Neighborhood radius used to find semantically related labels.
    min_answers:
        When positive, candidate queries are probed with a backward
        keyword search (``d_max = answer_d_max``) and kept only if they
        have at least this many distinct-root answers.  The paper's
        benchmarked queries are answer-rich by construction (keywords
        with >3000 occurrences on connected topics); this reproduces that
        selection at generation scale.
    answer_d_max:
        Distance bound used by the answer-count probe.
    ontology:
        Optional :class:`~repro.ontology.OntologyGraph`.  When given,
        keyword combinations whose members share a direct supertype are
        avoided — the paper's queries mix semantically distinct branches
        ("Club, Player, England"), which also keeps them distinct under
        one generalization step (Def. 4.1's condition 1 at layer 1).

    Raises
    ------
    QueryError
        When the graph's vocabulary cannot satisfy an arity.
    """
    if min_support is None:
        min_support = max(3, int(3000 * graph.num_vertices / 2_635_317))
    rng = random.Random(seed)
    histogram = graph.label_histogram()
    frequent = {label for label, count in histogram.items() if count >= min_support}
    if not frequent:
        raise QueryError(
            f"no label reaches the support threshold {min_support}"
        )

    probe = None
    if min_answers > 0:
        from repro.search.banks import BackwardKeywordSearch

        probe = BackwardKeywordSearch(d_max=answer_d_max, k=None).bind(graph)

    def answer_rich(keywords: List[str]) -> bool:
        if probe is None:
            return True
        try:
            answers = probe.search(KeywordQuery(keywords))
        except QueryError:
            return False
        return len(answers) >= min_answers

    def semantically_diverse(keywords: List[str]) -> bool:
        if ontology is None:
            return True
        seen_parents = set()
        for keyword in keywords:
            if keyword not in ontology:
                continue
            supers = ontology.direct_supertypes(keyword)
            parent = sorted(supers)[0] if supers else keyword
            if parent in seen_parents:
                return False
            seen_parents.add(parent)
        return True

    specs: List[QuerySpec] = []
    for i, arity in enumerate(arities, start=1):
        chosen: Optional[List[str]] = None
        for _ in range(300):
            related = [l for l in _related_labels(graph, rng, radius) if l in frequent]
            if len(related) < arity:
                continue
            candidate = rng.sample(related, arity)
            if semantically_diverse(candidate) and answer_rich(candidate):
                chosen = candidate
                break
        if chosen is None:
            # Fall back to frequent labels regardless of co-occurrence.
            pool = sorted(frequent)
            if len(pool) < arity:
                raise QueryError(
                    f"graph has only {len(pool)} frequent labels; "
                    f"cannot build a {arity}-keyword query"
                )
            for _ in range(300):
                candidate = rng.sample(pool, arity)
                if semantically_diverse(candidate) and answer_rich(candidate):
                    chosen = candidate
                    break
            if chosen is None:
                raise QueryError(
                    f"could not find a {arity}-keyword query with at least "
                    f"{min_answers} answers"
                )
        specs.append(
            QuerySpec(
                qid=f"Q{i}",
                keywords=tuple(chosen),
                counts=tuple(histogram[label] for label in chosen),
            )
        )
    return specs


def benchmark_queries(
    graph: Graph,
    seed: int = 0,
    min_support: Optional[int] = None,
    min_answers: int = 0,
    ontology=None,
) -> List[QuerySpec]:
    """The Tab. 4 benchmark workload: Q1-Q8 with the paper's arity mix."""
    return generate_queries(
        graph,
        BENCHMARK_ARITIES,
        seed=seed,
        min_support=min_support,
        min_answers=min_answers,
        ontology=ontology,
    )
