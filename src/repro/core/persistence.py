"""Saving and loading a built BiG-index.

The paper treats index construction as an offline step ("BiG-index takes
20 minutes ... to construct the indexes for YAGO3") whose product is
loaded at query time ("BiG-index loads the m-th layer from the disk",
Sec. 5.1).  This module provides that persistence: a built
:class:`~repro.core.index.BiGIndex` round-trips through a directory of
TSV/JSON files, so construction cost is paid once per dataset.

Layout (one directory per index)::

    meta.json                 {"num_layers": h, "direction": ..., "version": 1}
    base.nodes / base.edges   the data graph (repro.graph.io format)
    layer<i>.nodes / .edges   summary graph of layer i
    layer<i>.config.json      the configuration C^i
    layer<i>.parents.txt      parent_of: one supernode id per line

The extents are reconstructed from ``parent_of`` on load.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.core.config import Configuration
from repro.core.index import BiGIndex, Layer
from repro.graph.io import load_graph_tsv, save_graph_tsv
from repro.ontology.ontology import OntologyGraph
from repro.utils.errors import BigIndexError

FORMAT_VERSION = 1


def save_index(index: BiGIndex, directory: str) -> None:
    """Write ``index`` (graphs, configs, parent maps) under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    meta = {
        "version": FORMAT_VERSION,
        "num_layers": index.num_layers,
        "direction": index.direction.value,
    }
    with open(os.path.join(directory, "meta.json"), "w", encoding="utf-8") as f:
        json.dump(meta, f, indent=2)
    save_graph_tsv(index.base_graph, os.path.join(directory, "base"))
    for i, layer in enumerate(index.layers, start=1):
        prefix = os.path.join(directory, f"layer{i}")
        save_graph_tsv(layer.graph, prefix)
        with open(prefix + ".config.json", "w", encoding="utf-8") as f:
            json.dump(layer.config.mappings, f, indent=2, sort_keys=True)
        with open(prefix + ".parents.txt", "w", encoding="utf-8") as f:
            for supernode in layer.parent_of:
                f.write(f"{supernode}\n")


def load_index(directory: str, ontology: OntologyGraph) -> BiGIndex:
    """Load an index saved by :func:`save_index`.

    The ontology is not persisted (it is an input shared across indexes);
    pass the same one used at build time.  Configurations are *not*
    re-validated against it, so a changed ontology loads fine — matching
    the maintenance semantics of Sec. 3.2 (ontology additions never
    invalidate an index).
    """
    meta_path = os.path.join(directory, "meta.json")
    if not os.path.exists(meta_path):
        raise BigIndexError(f"not an index directory (missing {meta_path})")
    with open(meta_path, "r", encoding="utf-8") as f:
        meta = json.load(f)
    if meta.get("version") != FORMAT_VERSION:
        raise BigIndexError(
            f"unsupported index format version: {meta.get('version')!r}"
        )

    from repro.bisim.refinement import BisimDirection

    base_graph, base_map = load_graph_tsv(os.path.join(directory, "base"))
    _require_dense(base_map, "base")
    index = BiGIndex(
        base_graph, ontology, direction=BisimDirection(meta["direction"])
    )

    label_table = base_graph.label_table
    for i in range(1, meta["num_layers"] + 1):
        prefix = os.path.join(directory, f"layer{i}")
        graph, id_map = load_graph_tsv(prefix, label_table=label_table)
        _require_dense(id_map, f"layer{i}")
        with open(prefix + ".config.json", "r", encoding="utf-8") as f:
            config = Configuration(json.load(f))
        with open(prefix + ".parents.txt", "r", encoding="utf-8") as f:
            parent_of = [int(line) for line in f if line.strip()]
        below = index.layer_graph(i - 1)
        if len(parent_of) != below.num_vertices:
            raise BigIndexError(
                f"layer {i} parent map covers {len(parent_of)} vertices, "
                f"expected {below.num_vertices}"
            )
        extent: List[List[int]] = [[] for _ in range(graph.num_vertices)]
        for child, supernode in enumerate(parent_of):
            if not 0 <= supernode < graph.num_vertices:
                raise BigIndexError(
                    f"layer {i} parent map references unknown supernode "
                    f"{supernode}"
                )
            extent[supernode].append(child)
        if any(not members for members in extent):
            raise BigIndexError(f"layer {i} has an empty supernode extent")
        index.layers.append(
            Layer(
                config=config,
                graph=graph,
                parent_of=parent_of,
                extent=extent,
            )
        )
    return index


def _require_dense(id_map: Dict[int, int], what: str) -> None:
    """Saved indexes use dense ids; anything else indicates tampering."""
    for file_id, dense_id in id_map.items():
        if file_id != dense_id:
            raise BigIndexError(
                f"{what} graph ids are not dense (found {file_id} -> "
                f"{dense_id}); was the index directory edited?"
            )
