"""Saving and loading a built BiG-index, crash-safely.

The paper treats index construction as an offline step ("BiG-index takes
20 minutes ... to construct the indexes for YAGO3") whose product is
loaded at query time ("BiG-index loads the m-th layer from the disk",
Sec. 5.1).  This module provides that persistence: a built
:class:`~repro.core.index.BiGIndex` round-trips through a directory, so
construction cost is paid once per dataset.

Two formats are written:

* **v4 (default)** — one binary container holds every hot payload::

      meta.json                 {"num_layers": h, "direction": ..., "version": 4}
      manifest.json             {"algorithm": "sha256", "files": ..., "binary": ...}
      index.v4.bin              sectioned zero-copy container (repro.core.binfmt)
      layer<i>.config.json      the configuration C^i (small, human-auditable)

  The container packs CSR adjacency, per-label keyword postings,
  ``parent_of`` vectors and Bisim⁻¹ extent tables as little-endian i32
  sections.  Loading is ``mmap`` + ``memoryview.cast``: no per-element
  parsing, cold starts cost page-table setup instead of a JSON walk, and
  layers larger than RAM page in on demand.  Loaded graphs serve reads
  zero-copy and detach to heap structures on their first mutation
  (:meth:`repro.graph.digraph.Graph._materialize`), so WAL replay and
  the serve runtime's copy-on-write snapshots work unchanged.

* **v3 (``save_index(..., format=3)``)** — the legacy TSV/JSON layout::

      base.nodes / base.edges   the data graph (repro.graph.io format)
      base.postings.json        keyword postings: label -> sorted vertex ids
      layer<i>.nodes / .edges   summary graph of layer i
      layer<i>.config.json      the configuration C^i
      layer<i>.parents.txt      parent_of: one supernode id per line
      layer<i>.postings.json    keyword postings of layer i

  Extents are reconstructed from ``parent_of`` on load.  Version-2
  directories (no postings files) still load — postings are rebuilt
  lazily on first use.

Crash safety and integrity
--------------------------
:func:`save_index` never writes into the destination directly.  It stages
every file in a fresh temporary sibling directory, fsyncs them, writes a
``manifest.json`` with a SHA-256 checksum per file, and only then swaps
the staged directory into place with atomic renames (any previous index
briefly becomes ``<directory>.stale`` and is removed after the swap).  A
crash at any point leaves either the old index or the new one — never a
torn mix.

The v4 container is blessed at *section* granularity: the manifest's
``"binary"`` block records the SHA-256 of the section table and of every
section's bytes, plus a whole-file hash that also covers the header and
alignment padding.  Verification therefore reports corruption by section
name ("checksum mismatch for index.v4.bin section 'layer2.parent_of'")
instead of an opaque file-level mismatch.

:func:`load_index` verifies the manifest before trusting any file and
classifies failures:

* :class:`~repro.utils.errors.IndexVersionError` — the on-disk format
  version is not one this code reads (checked *before* checksums, so a
  foreign version is reported as such rather than as corruption);
* :class:`~repro.utils.errors.IndexCorruptedError` — missing files,
  checksum mismatches, or structurally invalid contents.

Both derive from :class:`~repro.utils.errors.IndexPersistenceError` (and
transitively ``BigIndexError``).  A corrupted directory never loads as a
silently wrong index.  Operators who edit index files deliberately can
re-bless the directory with :func:`write_manifest`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from array import array
from typing import Any, Dict, List

from repro.core.binfmt import (
    ExtentTable,
    IntVector,
    SectionFile,
    SectionWriter,
)
from repro.core.config import Configuration
from repro.core.index import BiGIndex, Layer
from repro.core.wal import WAL_NAME, recover_wal, replay_wal
from repro.graph.digraph import FrozenAdjacency, Graph, LabelTable
from repro.graph.io import load_graph_tsv, save_graph_tsv
from repro.obs.runtime import OBS
from repro.ontology.ontology import OntologyGraph
from repro.utils.errors import (
    BigIndexError,
    GraphError,
    IndexCorruptedError,
    IndexVersionError,
)

FORMAT_VERSION = 4

#: Format versions this build can read.  Version 2 predates the persisted
#: keyword postings (rebuilt lazily on load); version 3 is the TSV/JSON
#: layout; version 4 is the mmap-backed binary container.  Versions 3 and
#: 4 can both be written (``save_index(..., format=3)`` keeps an index
#: readable by older builds).
SUPPORTED_VERSIONS = (2, 3, 4)

#: Format versions :func:`save_index` can write.
WRITABLE_VERSIONS = (3, 4)

#: Name of the checksum manifest inside an index directory.
MANIFEST_NAME = "manifest.json"

#: Name of the v4 binary container inside an index directory.
BINARY_NAME = "index.v4.bin"


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def compute_manifest(directory: str) -> Dict[str, str]:
    """Checksum every regular file in ``directory`` except the manifest.

    Returns ``{filename: sha256-hex}`` sorted by name.  Subdirectories are
    ignored (an index directory has none).  The v4 container is excluded
    here — it is blessed per *section* under the manifest's ``"binary"``
    key so corruption can be reported by section name.
    """
    checksums: Dict[str, str] = {}
    for name in sorted(os.listdir(directory)):
        if name in (MANIFEST_NAME, WAL_NAME, BINARY_NAME):
            # The mutation WAL changes after every acked mutation and is
            # self-checksummed per record; blessing it in the manifest
            # would fail verification after the first append.  The binary
            # container gets its own section-granular manifest block.
            continue
        path = os.path.join(directory, name)
        if os.path.isfile(path):
            checksums[name] = _sha256_file(path)
    return checksums


def _binary_manifest(path: str) -> Dict[str, Any]:
    """Section-granular checksums for one v4 container file."""
    container = SectionFile(path)
    try:
        sections = container.section_digests()
        toc_sha = container.toc_sha256
    finally:
        container.close()
    return {
        "file_sha256": _sha256_file(path),
        "toc_sha256": toc_sha,
        "sections": sections,
    }


def write_manifest(directory: str) -> str:
    """(Re-)write ``manifest.json`` for ``directory``; returns its path.

    Used by :func:`save_index` while staging, and available to operators
    (and the fault-injection tests) to re-bless an index whose files were
    edited deliberately.  A present ``index.v4.bin`` is blessed section
    by section under the ``"binary"`` key.
    """
    manifest: Dict[str, Any] = {
        "algorithm": "sha256",
        "files": compute_manifest(directory),
    }
    binary_path = os.path.join(directory, BINARY_NAME)
    if os.path.isfile(binary_path):
        manifest["binary"] = {BINARY_NAME: _binary_manifest(binary_path)}
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.flush()
        os.fsync(f.fileno())
    return path


def _verify_manifest(directory: str) -> None:
    """Check every manifest entry; raise :class:`IndexCorruptedError`."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise IndexCorruptedError(
            f"index manifest missing: {manifest_path} (index was not "
            "written by save_index, or the write was interrupted)"
        )
    try:
        with open(manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
        files = manifest["files"]
        algorithm = manifest.get("algorithm", "sha256")
        binary = manifest.get("binary", {})
        if not isinstance(binary, dict):
            raise TypeError("'binary' is not an object")
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise IndexCorruptedError(
            f"unreadable index manifest {manifest_path}: {exc}"
        ) from exc
    if algorithm != "sha256":
        raise IndexCorruptedError(
            f"unsupported manifest checksum algorithm: {algorithm!r}"
        )
    for name, expected in sorted(files.items()):
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise IndexCorruptedError(f"index file missing: {path}")
        actual = _sha256_file(path)
        if actual != expected:
            raise IndexCorruptedError(
                f"checksum mismatch for {path}: manifest says "
                f"{expected[:12]}..., file hashes to {actual[:12]}... "
                "(truncated or tampered; re-bless with write_manifest "
                "if the edit was deliberate)"
            )
    for name, entry in sorted(binary.items()):
        _verify_binary(directory, name, entry, manifest_path)


def _verify_binary(
    directory: str, name: str, entry: Any, manifest_path: str
) -> None:
    """Verify one blessed v4 container, naming the damaged section."""
    if not isinstance(entry, dict) or not isinstance(
        entry.get("sections"), dict
    ):
        raise IndexCorruptedError(
            f"unreadable index manifest {manifest_path}: invalid binary "
            f"entry for {name!r}"
        )
    path = os.path.join(directory, name)
    if not os.path.exists(path):
        raise IndexCorruptedError(f"index file missing: {path}")
    # Opening parses header + section table; structural damage (bad
    # magic, out-of-bounds toc, truncated sections) raises with its own
    # precise message.
    container = SectionFile(path)
    try:
        expected_sections: Dict[str, str] = entry["sections"]
        if container.toc_sha256 != entry.get("toc_sha256"):
            raise IndexCorruptedError(
                f"checksum mismatch for {path} section table (torn write "
                "or tampered; re-bless with write_manifest if the edit "
                "was deliberate)"
            )
        actual_sections = container.section_digests()
        for section in sorted(expected_sections):
            if section not in actual_sections:
                raise IndexCorruptedError(
                    f"{path}: section {section!r} missing from container"
                )
            if actual_sections[section] != expected_sections[section]:
                raise IndexCorruptedError(
                    f"checksum mismatch for {path} section {section!r}: "
                    f"manifest says {expected_sections[section][:12]}..., "
                    f"section hashes to {actual_sections[section][:12]}... "
                    "(truncated or tampered; re-bless with write_manifest "
                    "if the edit was deliberate)"
                )
        extra = sorted(set(actual_sections) - set(expected_sections))
        if extra:
            raise IndexCorruptedError(
                f"{path}: sections {extra} not blessed by the manifest"
            )
    finally:
        container.close()
    # Whole-file hash last: catches damage outside any section (header
    # bytes, alignment padding) that the per-section pass cannot see.
    actual_file = _sha256_file(path)
    if actual_file != entry.get("file_sha256"):
        raise IndexCorruptedError(
            f"checksum mismatch for {path}: bytes outside the blessed "
            "sections changed (header or padding; truncated or tampered)"
        )


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def save_index(
    index: BiGIndex, directory: str, format: int = FORMAT_VERSION
) -> None:
    """Atomically write ``index`` (graphs, configs, parent maps).

    The files are staged in a temporary sibling directory, checksummed
    into ``manifest.json``, and swapped into place by rename — so a crash
    mid-save never leaves a torn index at ``directory``.  If the swap
    itself is interrupted the previous index survives at
    ``<directory>.stale`` (see docs/ROBUSTNESS.md for the runbook).

    ``format`` selects the on-disk layout: 4 (default) writes the binary
    zero-copy container, 3 the legacy TSV/JSON layout readable by older
    builds.
    """
    if format not in WRITABLE_VERSIONS:
        raise BigIndexError(
            f"cannot write index format version {format!r} "
            f"(writable versions: {WRITABLE_VERSIONS})"
        )
    directory = os.path.abspath(directory)
    parent = os.path.dirname(directory)
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(
        prefix=os.path.basename(directory) + ".tmp-", dir=parent
    )
    with OBS.tracer.span(
        "index-save", layers=index.num_layers, format=format
    ) as save_span:
        try:
            _write_index_files(index, staging, format=format)
            write_manifest(staging)
            if OBS.enabled:
                names = os.listdir(staging)
                OBS.metrics.inc("persist.saves")
                OBS.metrics.inc("persist.files_written", len(names))
                OBS.metrics.inc(
                    "persist.bytes_written",
                    sum(
                        os.path.getsize(os.path.join(staging, name))
                        for name in names
                    ),
                )
                save_span.annotate(files=len(names))
            stale = directory + ".stale"
            if os.path.exists(directory):
                if os.path.exists(stale):
                    shutil.rmtree(stale)
                os.rename(directory, stale)
            os.rename(staging, directory)
            if os.path.exists(stale):
                shutil.rmtree(stale)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise


def _write_index_files(
    index: BiGIndex, directory: str, format: int = FORMAT_VERSION
) -> None:
    """Write the index's files (without manifest) into ``directory``."""
    meta = {
        "version": format,
        "num_layers": index.num_layers,
        "direction": index.direction.value,
    }
    meta_path = os.path.join(directory, "meta.json")
    with open(meta_path, "w", encoding="utf-8") as f:
        json.dump(meta, f, indent=2)
        f.flush()
        os.fsync(f.fileno())
    for i, layer in enumerate(index.layers, start=1):
        config_path = os.path.join(directory, f"layer{i}.config.json")
        with open(config_path, "w", encoding="utf-8") as f:
            json.dump(layer.config.mappings, f, indent=2, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
    if format >= 4:
        _write_v4_container(index, os.path.join(directory, BINARY_NAME))
        return
    save_graph_tsv(index.base_graph, os.path.join(directory, "base"))
    _write_postings(index.base_graph, os.path.join(directory, "base"))
    for i, layer in enumerate(index.layers, start=1):
        prefix = os.path.join(directory, f"layer{i}")
        save_graph_tsv(layer.graph, prefix)
        _write_postings(layer.graph, prefix)
        with open(prefix + ".parents.txt", "w", encoding="utf-8") as f:
            for supernode in layer.parent_of:
                f.write(f"{supernode}\n")
            f.flush()
            os.fsync(f.fileno())


def _write_v4_container(index: BiGIndex, path: str) -> None:
    """Stream the index's hot payloads into one v4 binary container.

    Re-saving an mmap-loaded index stays zero-copy end to end: the CSR
    buffers, label vector and posting arrays are handed to the section
    writer as the loaded views themselves.
    """
    writer = SectionWriter(path)
    writer.add_json("labels.table", list(index.base_graph.label_table))
    _write_graph_sections(writer, "base", index.base_graph)
    for i, layer in enumerate(index.layers, start=1):
        tag = f"layer{i}"
        _write_graph_sections(writer, tag, layer.graph)
        writer.add_ints(f"{tag}.parent_of", layer.parent_of)
        offsets = array("i", [0])
        total = 0
        for members in layer.extent:
            total += len(members)
            offsets.append(total)
        writer.add_ints(f"{tag}.extent_offsets", offsets)
        writer.add_ints(
            f"{tag}.extent_children",
            (child for members in layer.extent for child in members),
        )
    writer.close()


def _write_graph_sections(
    writer: SectionWriter, tag: str, graph: Graph
) -> None:
    """Write one graph's sections (labels, CSR, postings, names)."""
    writer.add_ints(f"{tag}.labels", graph.labels)
    csr = graph.csr()
    writer.add_ints(f"{tag}.out_offsets", csr.out_offsets)
    writer.add_ints(f"{tag}.out_targets", csr.out_targets)
    writer.add_ints(f"{tag}.in_offsets", csr.in_offsets)
    writer.add_ints(f"{tag}.in_targets", csr.in_targets)
    items = graph.postings_items_by_id()
    post_labels = array("i")
    post_offsets = array("i", [0])
    total = 0
    for label_id, posting in items:
        post_labels.append(label_id)
        total += len(posting)
        post_offsets.append(total)
    writer.add_ints(f"{tag}.post_labels", post_labels)
    writer.add_ints(f"{tag}.post_offsets", post_offsets)
    writer.add_ints(
        f"{tag}.post_ids",
        (v for _label_id, posting in items for v in posting),
    )
    writer.add_json(
        f"{tag}.names",
        {str(v): name for v, name in sorted(graph.names.items())},
    )


def _write_postings(graph: Graph, prefix: str) -> None:
    """Write ``<prefix>.postings.json``: label -> sorted vertex ids.

    Streamed one label at a time: ``json.dump`` over the whole snapshot
    would materialize every posting list simultaneously, which defeats
    the point of zero-copy postings when re-saving a huge loaded index.
    The output is byte-identical to ``json.dump(..., sort_keys=True)``.
    """
    label_of = graph.label_table.label_of
    entries = sorted(
        (label_of(label_id), posting)
        for label_id, posting in graph.postings_items_by_id()
    )
    with open(prefix + ".postings.json", "w", encoding="utf-8") as f:
        f.write("{")
        first = True
        for label, posting in entries:
            if not first:
                f.write(", ")
            first = False
            f.write(json.dumps(label))
            f.write(": ")
            f.write(json.dumps(list(posting)))
        f.write("}")
        f.flush()
        os.fsync(f.fileno())


def _load_postings(graph: Graph, prefix: str) -> None:
    """Pre-warm ``graph`` from ``<prefix>.postings.json`` (format >= 3).

    The lists are fully validated against the loaded graph's own label
    index before being trusted, so a tampered postings file surfaces as
    :class:`IndexCorruptedError` rather than as silently wrong seed hits.
    """
    path = prefix + ".postings.json"
    try:
        with open(path, "r", encoding="utf-8") as f:
            postings = json.load(f)
    except FileNotFoundError as exc:
        raise IndexCorruptedError(f"index file missing: {path}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise IndexCorruptedError(
            f"unreadable postings file {path}: {exc}"
        ) from exc
    if not isinstance(postings, dict) or not all(
        isinstance(ids, list) and all(isinstance(v, int) for v in ids)
        for ids in postings.values()
    ):
        raise IndexCorruptedError(
            f"postings file {path} is not a label -> id-list object"
        )
    try:
        graph.preload_postings(postings)
    except GraphError as exc:
        raise IndexCorruptedError(f"invalid postings in {path}: {exc}") from exc


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def load_index(
    directory: str,
    ontology: OntologyGraph,
    replay_wal_tail: bool = True,
) -> BiGIndex:
    """Load an index saved by :func:`save_index`, verifying integrity.

    The ontology is not persisted (it is an input shared across indexes);
    pass the same one used at build time.  Configurations are *not*
    re-validated against it, so a changed ontology loads fine — matching
    the maintenance semantics of Sec. 3.2 (ontology additions never
    invalidate an index).

    A v4 directory loads zero-copy: graphs, parent maps and extent
    tables are views over the mmapped container, and answer every read
    exactly like their heap-built twins.  The first mutation (including
    a WAL replay below) detaches the affected graph to heap structures.

    When ``replay_wal_tail`` is true (the default) and the directory
    holds a ``mutations.wal``, its valid record prefix is replayed on
    top of the persisted files — recovering every mutation acked after
    the last :func:`save_index` — and a torn tail (a crash mid-append)
    is truncated in place.  Pass ``False`` to inspect the index exactly
    as the manifest blessed it.

    Raises :class:`~repro.utils.errors.IndexVersionError` for a foreign
    format version and :class:`~repro.utils.errors.IndexCorruptedError`
    for missing/tampered/structurally-invalid files (a WAL whose magic is
    wrong raises :class:`~repro.utils.errors.WALCorruptedError`, a
    subclass of the same persistence-error root).
    """
    with OBS.tracer.span("index-load") as load_span:
        index = _load_index_impl(directory, ontology)
        replayed = 0
        if replay_wal_tail:
            wal_path = os.path.join(directory, WAL_NAME)
            if os.path.exists(wal_path):
                records, _tail = recover_wal(wal_path)
                replayed = len(records)
                replay_wal(index, records)
        if OBS.enabled:
            OBS.metrics.inc("persist.loads")
            load_span.annotate(layers=index.num_layers, wal_replayed=replayed)
        return index


def _load_index_impl(directory: str, ontology: OntologyGraph) -> BiGIndex:
    meta_path = os.path.join(directory, "meta.json")
    if not os.path.exists(meta_path):
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            # A manifest without metadata is a damaged index, not a
            # directory that never held one.
            raise IndexCorruptedError(f"index file missing: {meta_path}")
        raise BigIndexError(f"not an index directory (missing {meta_path})")
    try:
        with open(meta_path, "r", encoding="utf-8") as f:
            meta = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise IndexCorruptedError(
            f"unreadable index metadata {meta_path}: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise IndexCorruptedError(
            f"index metadata {meta_path} is not a JSON object"
        )
    # Version before checksums: an index written by a different format
    # version fails its own way instead of as a checksum mismatch.
    version = meta.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise IndexVersionError(
            f"unsupported index format version: {version!r} "
            f"(this build reads versions {SUPPORTED_VERSIONS})"
        )
    _verify_manifest(directory)

    from repro.bisim.refinement import BisimDirection

    try:
        num_layers = int(meta["num_layers"])
        direction = BisimDirection(meta["direction"])
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexCorruptedError(
            f"invalid index metadata in {meta_path}: {exc}"
        ) from exc

    if version >= 4:
        return _load_v4(directory, ontology, num_layers, direction)

    base_prefix = os.path.join(directory, "base")
    base_graph, base_map = load_graph_tsv(base_prefix)
    _require_dense(base_map, "base")
    if version >= 3:
        _load_postings(base_graph, base_prefix)
    index = BiGIndex(base_graph, ontology, direction=direction)

    label_table = base_graph.label_table
    for i in range(1, num_layers + 1):
        prefix = os.path.join(directory, f"layer{i}")
        graph, id_map = load_graph_tsv(prefix, label_table=label_table)
        _require_dense(id_map, f"layer{i}")
        if version >= 3:
            _load_postings(graph, prefix)
        config = _load_config(prefix + ".config.json")
        parent_of = _load_parents(prefix + ".parents.txt")
        below = index.layer_graph(i - 1)
        if len(parent_of) != below.num_vertices:
            raise IndexCorruptedError(
                f"layer {i} parent map covers {len(parent_of)} vertices, "
                f"expected {below.num_vertices}"
            )
        extent: List[List[int]] = [[] for _ in range(graph.num_vertices)]
        for child, supernode in enumerate(parent_of):
            if not 0 <= supernode < graph.num_vertices:
                raise IndexCorruptedError(
                    f"layer {i} parent map references unknown supernode "
                    f"{supernode}"
                )
            extent[supernode].append(child)
        if any(not members for members in extent):
            raise IndexCorruptedError(
                f"layer {i} has an empty supernode extent"
            )
        index.layers.append(
            Layer(
                config=config,
                graph=graph,
                parent_of=parent_of,
                extent=extent,
            )
        )
    return index


def _load_v4(
    directory: str,
    ontology: OntologyGraph,
    num_layers: int,
    direction,
) -> BiGIndex:
    """Load a v4 directory: mmap the container, wrap views, validate.

    Validation is O(n) scans over int views (range checks, offset
    monotonicity) — the expensive content integrity was already settled
    by the manifest's per-section checksums.
    """
    container = SectionFile(os.path.join(directory, BINARY_NAME))
    label_strings = container.json("labels.table")
    if not isinstance(label_strings, list) or not all(
        isinstance(label, str) for label in label_strings
    ):
        raise IndexCorruptedError(
            f"{container.path}: section 'labels.table' is not a list of "
            "label strings"
        )
    label_table = LabelTable(label_strings)
    base_graph = _graph_from_sections(container, "base", label_table)
    index = BiGIndex(base_graph, ontology, direction=direction)

    for i in range(1, num_layers + 1):
        tag = f"layer{i}"
        graph = _graph_from_sections(container, tag, label_table)
        config = _load_config(os.path.join(directory, f"{tag}.config.json"))
        parent_of = container.ints(f"{tag}.parent_of")
        below = index.layer_graph(i - 1)
        if len(parent_of) != below.num_vertices:
            raise IndexCorruptedError(
                f"layer {i} parent map covers {len(parent_of)} vertices, "
                f"expected {below.num_vertices}"
            )
        n_super = graph.num_vertices
        if len(parent_of):
            lowest, highest = min(parent_of), max(parent_of)
            if lowest < 0 or highest >= n_super:
                bad = lowest if lowest < 0 else highest
                raise IndexCorruptedError(
                    f"layer {i} parent map references unknown supernode "
                    f"{bad}"
                )
        ext_offsets = container.ints(f"{tag}.extent_offsets")
        ext_children = container.ints(f"{tag}.extent_children")
        if (
            len(ext_offsets) != n_super + 1
            or ext_offsets[0] != 0
            or ext_offsets[n_super] != len(ext_children)
            or len(ext_children) != below.num_vertices
        ):
            raise IndexCorruptedError(
                f"layer {i} extent table is inconsistent with "
                f"{n_super} supernodes over {below.num_vertices} children"
            )
        for s in range(n_super):
            if ext_offsets[s + 1] <= ext_offsets[s]:
                raise IndexCorruptedError(
                    f"layer {i} has an empty supernode extent"
                )
        index.layers.append(
            Layer(
                config=config,
                graph=graph,
                parent_of=IntVector(parent_of),
                extent=ExtentTable(ext_offsets, ext_children),
            )
        )
    return index


def _graph_from_sections(
    container: SectionFile, tag: str, label_table: LabelTable
) -> Graph:
    """One graph as zero-copy views over the container's sections."""
    labels = container.ints(f"{tag}.labels")
    n = len(labels)
    out_offsets = container.ints(f"{tag}.out_offsets")
    out_targets = container.ints(f"{tag}.out_targets")
    in_offsets = container.ints(f"{tag}.in_offsets")
    in_targets = container.ints(f"{tag}.in_targets")
    for what, offsets, targets in (
        ("out", out_offsets, out_targets),
        ("in", in_offsets, in_targets),
    ):
        if (
            len(offsets) != n + 1
            or offsets[0] != 0
            or offsets[n] != len(targets)
        ):
            raise IndexCorruptedError(
                f"{container.path}: {tag} {what}-adjacency is inconsistent "
                f"with {n} vertices"
            )
    if len(out_targets) != len(in_targets):
        raise IndexCorruptedError(
            f"{container.path}: {tag} out/in edge counts disagree "
            f"({len(out_targets)} vs {len(in_targets)})"
        )
    if n and (min(labels) < 0 or max(labels) >= len(label_table)):
        raise IndexCorruptedError(
            f"{container.path}: {tag} labels reference an unknown label id"
        )
    post_labels = container.ints(f"{tag}.post_labels")
    post_offsets = container.ints(f"{tag}.post_offsets")
    post_ids = container.ints(f"{tag}.post_ids")
    if (
        len(post_offsets) != len(post_labels) + 1
        or post_offsets[0] != 0
        or post_offsets[len(post_labels)] != len(post_ids)
    ):
        raise IndexCorruptedError(
            f"{container.path}: {tag} posting offsets are inconsistent"
        )
    names_raw = container.json(f"{tag}.names")
    if not isinstance(names_raw, dict):
        raise IndexCorruptedError(
            f"{container.path}: section {tag + '.names'!r} is not an object"
        )
    try:
        names = {int(v): str(name) for v, name in names_raw.items()}
    except ValueError as exc:
        raise IndexCorruptedError(
            f"{container.path}: section {tag + '.names'!r} has a "
            f"non-integer vertex key: {exc}"
        ) from exc
    frozen = FrozenAdjacency(
        out_offsets,
        out_targets,
        in_offsets,
        in_targets,
        post_labels,
        post_offsets,
        post_ids,
        owner=container,
    )
    return Graph.from_frozen(label_table, labels, frozen, names)


def _load_config(path: str) -> Configuration:
    """Parse one ``layer<i>.config.json``."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            return Configuration(json.load(f))
    except FileNotFoundError as exc:
        raise IndexCorruptedError(f"index file missing: {path}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise IndexCorruptedError(
            f"unreadable layer config {path}: {exc}"
        ) from exc


def _load_parents(path: str) -> List[int]:
    """Parse a ``layer<i>.parents.txt``; corruption names the exact line."""
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError as exc:
        raise IndexCorruptedError(f"index file missing: {path}") from exc
    parent_of: List[int] = []
    with handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                parent_of.append(int(line))
            except ValueError as exc:
                raise IndexCorruptedError(
                    f"{path}:{lineno}: invalid supernode id {line!r} "
                    "(expected a non-negative integer)"
                ) from exc
    return parent_of


def _require_dense(id_map: Dict[int, int], what: str) -> None:
    """Saved indexes use dense ids; anything else indicates tampering."""
    for file_id, dense_id in id_map.items():
        if file_id != dense_id:
            raise IndexCorruptedError(
                f"{what} graph ids are not dense (found {file_id} -> "
                f"{dense_id}); was the index directory edited?"
            )
