"""Saving and loading a built BiG-index, crash-safely.

The paper treats index construction as an offline step ("BiG-index takes
20 minutes ... to construct the indexes for YAGO3") whose product is
loaded at query time ("BiG-index loads the m-th layer from the disk",
Sec. 5.1).  This module provides that persistence: a built
:class:`~repro.core.index.BiGIndex` round-trips through a directory of
TSV/JSON files, so construction cost is paid once per dataset.

Layout (one directory per index)::

    meta.json                 {"num_layers": h, "direction": ..., "version": 3}
    manifest.json             {"algorithm": "sha256", "files": {...}}
    base.nodes / base.edges   the data graph (repro.graph.io format)
    base.postings.json        keyword postings: label -> sorted vertex ids
    layer<i>.nodes / .edges   summary graph of layer i
    layer<i>.config.json      the configuration C^i
    layer<i>.parents.txt      parent_of: one supernode id per line
    layer<i>.postings.json    keyword postings of layer i

The extents are reconstructed from ``parent_of`` on load.  Postings are
new in format version 3: they pre-warm each graph's per-label seed-hit
index so a restarted server answers its first query without a postings
build.  Version-2 directories (no postings files) still load — the
postings are simply rebuilt lazily on first use.

Crash safety and integrity
--------------------------
:func:`save_index` never writes into the destination directly.  It stages
every file in a fresh temporary sibling directory, fsyncs them, writes a
``manifest.json`` with a SHA-256 checksum per file, and only then swaps
the staged directory into place with atomic renames (any previous index
briefly becomes ``<directory>.stale`` and is removed after the swap).  A
crash at any point leaves either the old index or the new one — never a
torn mix.

:func:`load_index` verifies the manifest before trusting any file and
classifies failures:

* :class:`~repro.utils.errors.IndexVersionError` — the on-disk format
  version is not this code's (checked *before* checksums, so a foreign
  version is reported as such rather than as corruption);
* :class:`~repro.utils.errors.IndexCorruptedError` — missing files,
  checksum mismatches, or structurally invalid contents.

Both derive from :class:`~repro.utils.errors.IndexPersistenceError` (and
transitively ``BigIndexError``).  A corrupted directory never loads as a
silently wrong index.  Operators who edit index files deliberately can
re-bless the directory with :func:`write_manifest`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from typing import Dict, List

from repro.core.config import Configuration
from repro.core.index import BiGIndex, Layer
from repro.core.wal import WAL_NAME, recover_wal, replay_wal
from repro.graph.digraph import Graph
from repro.graph.io import load_graph_tsv, save_graph_tsv
from repro.obs.runtime import OBS
from repro.ontology.ontology import OntologyGraph
from repro.utils.errors import (
    BigIndexError,
    GraphError,
    IndexCorruptedError,
    IndexVersionError,
)

FORMAT_VERSION = 3

#: Format versions this build can read; only the current one is written.
#: Version 2 predates the persisted keyword postings (label -> sorted
#: vertex ids per graph) and loads with lazily rebuilt postings instead.
SUPPORTED_VERSIONS = (2, 3)

#: Name of the checksum manifest inside an index directory.
MANIFEST_NAME = "manifest.json"


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def compute_manifest(directory: str) -> Dict[str, str]:
    """Checksum every regular file in ``directory`` except the manifest.

    Returns ``{filename: sha256-hex}`` sorted by name.  Subdirectories are
    ignored (an index directory has none).
    """
    checksums: Dict[str, str] = {}
    for name in sorted(os.listdir(directory)):
        if name == MANIFEST_NAME or name == WAL_NAME:
            # The mutation WAL changes after every acked mutation and is
            # self-checksummed per record; blessing it in the manifest
            # would fail verification after the first append.
            continue
        path = os.path.join(directory, name)
        if os.path.isfile(path):
            checksums[name] = _sha256_file(path)
    return checksums


def write_manifest(directory: str) -> str:
    """(Re-)write ``manifest.json`` for ``directory``; returns its path.

    Used by :func:`save_index` while staging, and available to operators
    (and the fault-injection tests) to re-bless an index whose files were
    edited deliberately.
    """
    manifest = {
        "algorithm": "sha256",
        "files": compute_manifest(directory),
    }
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.flush()
        os.fsync(f.fileno())
    return path


def _verify_manifest(directory: str) -> None:
    """Check every manifest entry; raise :class:`IndexCorruptedError`."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise IndexCorruptedError(
            f"index manifest missing: {manifest_path} (index was not "
            "written by save_index, or the write was interrupted)"
        )
    try:
        with open(manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
        files = manifest["files"]
        algorithm = manifest.get("algorithm", "sha256")
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise IndexCorruptedError(
            f"unreadable index manifest {manifest_path}: {exc}"
        ) from exc
    if algorithm != "sha256":
        raise IndexCorruptedError(
            f"unsupported manifest checksum algorithm: {algorithm!r}"
        )
    for name, expected in sorted(files.items()):
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise IndexCorruptedError(f"index file missing: {path}")
        actual = _sha256_file(path)
        if actual != expected:
            raise IndexCorruptedError(
                f"checksum mismatch for {path}: manifest says "
                f"{expected[:12]}..., file hashes to {actual[:12]}... "
                "(truncated or tampered; re-bless with write_manifest "
                "if the edit was deliberate)"
            )


# ----------------------------------------------------------------------
# Save
# ----------------------------------------------------------------------
def save_index(index: BiGIndex, directory: str) -> None:
    """Atomically write ``index`` (graphs, configs, parent maps).

    The files are staged in a temporary sibling directory, checksummed
    into ``manifest.json``, and swapped into place by rename — so a crash
    mid-save never leaves a torn index at ``directory``.  If the swap
    itself is interrupted the previous index survives at
    ``<directory>.stale`` (see docs/ROBUSTNESS.md for the runbook).
    """
    directory = os.path.abspath(directory)
    parent = os.path.dirname(directory)
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(
        prefix=os.path.basename(directory) + ".tmp-", dir=parent
    )
    with OBS.tracer.span(
        "index-save", layers=index.num_layers
    ) as save_span:
        try:
            _write_index_files(index, staging)
            write_manifest(staging)
            if OBS.enabled:
                names = os.listdir(staging)
                OBS.metrics.inc("persist.saves")
                OBS.metrics.inc("persist.files_written", len(names))
                OBS.metrics.inc(
                    "persist.bytes_written",
                    sum(
                        os.path.getsize(os.path.join(staging, name))
                        for name in names
                    ),
                )
                save_span.annotate(files=len(names))
            stale = directory + ".stale"
            if os.path.exists(directory):
                if os.path.exists(stale):
                    shutil.rmtree(stale)
                os.rename(directory, stale)
            os.rename(staging, directory)
            if os.path.exists(stale):
                shutil.rmtree(stale)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise


def _write_index_files(index: BiGIndex, directory: str) -> None:
    """Write the index's files (without manifest) into ``directory``."""
    meta = {
        "version": FORMAT_VERSION,
        "num_layers": index.num_layers,
        "direction": index.direction.value,
    }
    meta_path = os.path.join(directory, "meta.json")
    with open(meta_path, "w", encoding="utf-8") as f:
        json.dump(meta, f, indent=2)
        f.flush()
        os.fsync(f.fileno())
    save_graph_tsv(index.base_graph, os.path.join(directory, "base"))
    _write_postings(index.base_graph, os.path.join(directory, "base"))
    for i, layer in enumerate(index.layers, start=1):
        prefix = os.path.join(directory, f"layer{i}")
        save_graph_tsv(layer.graph, prefix)
        _write_postings(layer.graph, prefix)
        with open(prefix + ".config.json", "w", encoding="utf-8") as f:
            json.dump(layer.config.mappings, f, indent=2, sort_keys=True)
            f.flush()
            os.fsync(f.fileno())
        with open(prefix + ".parents.txt", "w", encoding="utf-8") as f:
            for supernode in layer.parent_of:
                f.write(f"{supernode}\n")
            f.flush()
            os.fsync(f.fileno())


def _write_postings(graph: Graph, prefix: str) -> None:
    """Write ``<prefix>.postings.json``: label -> sorted vertex ids."""
    with open(prefix + ".postings.json", "w", encoding="utf-8") as f:
        json.dump(graph.postings_snapshot(), f, sort_keys=True)
        f.flush()
        os.fsync(f.fileno())


def _load_postings(graph: Graph, prefix: str) -> None:
    """Pre-warm ``graph`` from ``<prefix>.postings.json`` (format >= 3).

    The lists are fully validated against the loaded graph's own label
    index before being trusted, so a tampered postings file surfaces as
    :class:`IndexCorruptedError` rather than as silently wrong seed hits.
    """
    path = prefix + ".postings.json"
    try:
        with open(path, "r", encoding="utf-8") as f:
            postings = json.load(f)
    except FileNotFoundError as exc:
        raise IndexCorruptedError(f"index file missing: {path}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise IndexCorruptedError(
            f"unreadable postings file {path}: {exc}"
        ) from exc
    if not isinstance(postings, dict) or not all(
        isinstance(ids, list) and all(isinstance(v, int) for v in ids)
        for ids in postings.values()
    ):
        raise IndexCorruptedError(
            f"postings file {path} is not a label -> id-list object"
        )
    try:
        graph.preload_postings(postings)
    except GraphError as exc:
        raise IndexCorruptedError(f"invalid postings in {path}: {exc}") from exc


# ----------------------------------------------------------------------
# Load
# ----------------------------------------------------------------------
def load_index(
    directory: str,
    ontology: OntologyGraph,
    replay_wal_tail: bool = True,
) -> BiGIndex:
    """Load an index saved by :func:`save_index`, verifying integrity.

    The ontology is not persisted (it is an input shared across indexes);
    pass the same one used at build time.  Configurations are *not*
    re-validated against it, so a changed ontology loads fine — matching
    the maintenance semantics of Sec. 3.2 (ontology additions never
    invalidate an index).

    When ``replay_wal_tail`` is true (the default) and the directory
    holds a ``mutations.wal``, its valid record prefix is replayed on
    top of the persisted files — recovering every mutation acked after
    the last :func:`save_index` — and a torn tail (a crash mid-append)
    is truncated in place.  Pass ``False`` to inspect the index exactly
    as the manifest blessed it.

    Raises :class:`~repro.utils.errors.IndexVersionError` for a foreign
    format version and :class:`~repro.utils.errors.IndexCorruptedError`
    for missing/tampered/structurally-invalid files (a WAL whose magic is
    wrong raises :class:`~repro.utils.errors.WALCorruptedError`, a
    subclass of the same persistence-error root).
    """
    with OBS.tracer.span("index-load") as load_span:
        index = _load_index_impl(directory, ontology)
        replayed = 0
        if replay_wal_tail:
            wal_path = os.path.join(directory, WAL_NAME)
            if os.path.exists(wal_path):
                records, _tail = recover_wal(wal_path)
                replayed = len(records)
                replay_wal(index, records)
        if OBS.enabled:
            OBS.metrics.inc("persist.loads")
            load_span.annotate(layers=index.num_layers, wal_replayed=replayed)
        return index


def _load_index_impl(directory: str, ontology: OntologyGraph) -> BiGIndex:
    meta_path = os.path.join(directory, "meta.json")
    if not os.path.exists(meta_path):
        if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
            # A manifest without metadata is a damaged index, not a
            # directory that never held one.
            raise IndexCorruptedError(f"index file missing: {meta_path}")
        raise BigIndexError(f"not an index directory (missing {meta_path})")
    try:
        with open(meta_path, "r", encoding="utf-8") as f:
            meta = json.load(f)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise IndexCorruptedError(
            f"unreadable index metadata {meta_path}: {exc}"
        ) from exc
    if not isinstance(meta, dict):
        raise IndexCorruptedError(
            f"index metadata {meta_path} is not a JSON object"
        )
    # Version before checksums: an index written by a different format
    # version fails its own way instead of as a checksum mismatch.
    version = meta.get("version")
    if version not in SUPPORTED_VERSIONS:
        raise IndexVersionError(
            f"unsupported index format version: {version!r} "
            f"(this build reads versions {SUPPORTED_VERSIONS})"
        )
    _verify_manifest(directory)

    from repro.bisim.refinement import BisimDirection

    try:
        num_layers = int(meta["num_layers"])
        direction = BisimDirection(meta["direction"])
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexCorruptedError(
            f"invalid index metadata in {meta_path}: {exc}"
        ) from exc

    base_prefix = os.path.join(directory, "base")
    base_graph, base_map = load_graph_tsv(base_prefix)
    _require_dense(base_map, "base")
    if version >= 3:
        _load_postings(base_graph, base_prefix)
    index = BiGIndex(base_graph, ontology, direction=direction)

    label_table = base_graph.label_table
    for i in range(1, num_layers + 1):
        prefix = os.path.join(directory, f"layer{i}")
        graph, id_map = load_graph_tsv(prefix, label_table=label_table)
        _require_dense(id_map, f"layer{i}")
        if version >= 3:
            _load_postings(graph, prefix)
        config_path = prefix + ".config.json"
        try:
            with open(config_path, "r", encoding="utf-8") as f:
                config = Configuration(json.load(f))
        except FileNotFoundError as exc:
            raise IndexCorruptedError(
                f"index file missing: {config_path}"
            ) from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise IndexCorruptedError(
                f"unreadable layer config {config_path}: {exc}"
            ) from exc
        parent_of = _load_parents(prefix + ".parents.txt")
        below = index.layer_graph(i - 1)
        if len(parent_of) != below.num_vertices:
            raise IndexCorruptedError(
                f"layer {i} parent map covers {len(parent_of)} vertices, "
                f"expected {below.num_vertices}"
            )
        extent: List[List[int]] = [[] for _ in range(graph.num_vertices)]
        for child, supernode in enumerate(parent_of):
            if not 0 <= supernode < graph.num_vertices:
                raise IndexCorruptedError(
                    f"layer {i} parent map references unknown supernode "
                    f"{supernode}"
                )
            extent[supernode].append(child)
        if any(not members for members in extent):
            raise IndexCorruptedError(
                f"layer {i} has an empty supernode extent"
            )
        index.layers.append(
            Layer(
                config=config,
                graph=graph,
                parent_of=parent_of,
                extent=extent,
            )
        )
    return index


def _load_parents(path: str) -> List[int]:
    """Parse a ``layer<i>.parents.txt``; corruption names the exact line."""
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError as exc:
        raise IndexCorruptedError(f"index file missing: {path}") from exc
    parent_of: List[int] = []
    with handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                parent_of.append(int(line))
            except ValueError as exc:
                raise IndexCorruptedError(
                    f"{path}:{lineno}: invalid supernode id {line!r} "
                    "(expected a non-negative integer)"
                ) from exc
    return parent_of


def _require_dense(id_map: Dict[int, int], what: str) -> None:
    """Saved indexes use dense ids; anything else indicates tampering."""
    for file_id, dense_id in id_map.items():
        if file_id != dense_id:
            raise IndexCorruptedError(
                f"{what} graph ids are not dense (found {file_id} -> "
                f"{dense_id}); was the index directory edited?"
            )
