"""Maintenance-aware caching primitives for the query-serving path.

PRs 3–4 made index *construction* fast; the remaining cold-start cost at
query time is derived data recomputed per query — ``Gen^m`` keyword
translations, ``Spec``/answer-recovery fan-outs, and whole query results
for repeated workloads.  This module provides the two pieces every such
cache needs:

* :class:`LRUCache` — a small thread-safe LRU with ``cache.hit`` /
  ``cache.miss`` telemetry, used for the evaluator's query-result cache
  and the index's specialization memo.
* :func:`budget_class` — the canonical "budget class" component of a
  query-result cache key.  Result caching is only sound when a replayed
  result is indistinguishable from a recomputed one; budgets make that
  subtle (see the function docstring), so the class is computed in one
  place and the cache simply refuses unclassifiable executions.

Invalidation is **epoch-based**: every :class:`~repro.graph.digraph.Graph`
carries a ``mutation_epoch`` bumped by its mutators, and
:class:`~repro.core.index.BiGIndex` exposes an ``epoch`` combining its
maintenance counter with the base graph's.  Cache owners remember the
epoch their entries were computed under and clear everything when it
moves — cached and uncached evaluation must stay byte-identical, which
the ``verify`` cache drill and the maintenance fuzzer enforce.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

from repro.obs.runtime import OBS
from repro.utils.budget import Budget


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss telemetry.

    Thread-safe: ``evaluate_many(workers=N)`` serves a shared cache from
    a thread pool, so get/put/clear take an internal lock.  Entries must
    be treated as immutable by callers — a hit returns the stored object
    itself.

    Parameters
    ----------
    maxsize:
        Entry cap; the least recently used entry is evicted beyond it.
    kind:
        Short tag for per-cache telemetry (``cache.hit.<kind>`` rides
        along next to the aggregate ``cache.hit``).
    """

    def __init__(self, maxsize: int, kind: str = "cache") -> None:
        if maxsize <= 0:
            raise ValueError("LRUCache needs a positive maxsize")
        self.maxsize = maxsize
        self.kind = kind
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Optional[object]:
        """The cached value, refreshing recency; ``None`` on miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                if OBS.enabled:
                    OBS.metrics.inc("cache.miss")
                    OBS.metrics.inc(f"cache.miss.{self.kind}")
                return None
            self._data.move_to_end(key)
        if OBS.enabled:
            OBS.metrics.inc("cache.hit")
            OBS.metrics.inc(f"cache.hit.{self.kind}")
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        evicted = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                evicted += 1
        if evicted and OBS.enabled:
            OBS.metrics.inc("cache.evictions", evicted)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # Taking the lock (rather than relying on a single dict op) keeps
        # the answer ordered against concurrent clear/evict — a caller
        # must never see ``key in cache`` succeed after a clear it
        # happened-before.
        with self._lock:
            return key in self._data


def budget_class(budget: Optional[Budget]) -> Optional[str]:
    """The budget component of a canonical query-result cache key.

    ``None`` (the return value) means *uncacheable*: the execution's
    outcome depends on state a replay would not reproduce.

    * No budget → class ``"none"``: evaluation is a pure function of the
      (index epoch, query, k, mode) key and both storing and serving are
      sound.
    * Any budget → uncacheable.  A :class:`~repro.utils.budget.Budget`
      is a *stateful ledger* shared across calls: whether a run completes
      depends on the expansions already charged, deadlines depend on the
      wall clock, and cancellation on an external token.  Serving a
      cached result would also skip the charges the uncached run makes,
      silently changing what the caller's remaining budget means.
      Degraded/partial results are additionally non-prefixes of each
      other across different remaining budgets, so there is no sound key
      short of the full ledger state.

    Callers put the class in the cache key and bypass the cache entirely
    when it is ``None``.
    """
    if budget is None:
        return "none"
    return None
