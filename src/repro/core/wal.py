"""Durable mutation write-ahead log for a persisted BiG-index.

The serve runtime acks an admin mutation only after the operation is
durable: the op is appended to ``mutations.wal`` inside the index
directory and fsynced *before* the new snapshot is published and the
HTTP 200 goes out.  On startup, :func:`repro.core.persistence.load_index`
replays the log tail on top of the persisted files, so a ``kill -9``
mid-stream loses nothing that was acked.  A fresh :func:`save_index`
writes a new manifest with no log, which truncates the history (the
persisted files already contain every replayed op).

File format
-----------
::

    magic   8 bytes   b"RBIGWAL1"
    record  repeated  [length u32 BE][crc32 u32 BE][payload: UTF-8 JSON]

``crc32`` covers the payload bytes only.  Records are self-delimiting
and self-checksummed, so the log needs no footer and tolerates a torn
tail: recovery keeps the longest valid record prefix and classifies the
damage (see :func:`read_wal`).  The log is deliberately *excluded* from
``manifest.json`` — it changes after every mutation, while the manifest
blesses the immutable base files.

Group commit
------------
:meth:`MutationWAL.commit` batches fsyncs with a leader/follower scheme:
the first committer in a burst becomes the leader, waits up to
``group_commit_window`` seconds for followers to append their records,
then pays a single ``fsync`` for the whole batch.  With a zero window
every commit fsyncs immediately (still coalescing under contention).
Durability is unconditional either way — ``commit`` never returns before
the record it wrote is on disk.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.runtime import OBS
from repro.utils.errors import (
    WALCorruptedError,
    WALError,
    WALTornTailError,
)

#: Name of the mutation log inside an index directory.
WAL_NAME = "mutations.wal"

#: File magic: identifies a mutation WAL and pins its format version.
WAL_MAGIC = b"RBIGWAL1"

_HEADER = struct.Struct(">II")  # (payload length, crc32 of payload)

#: Upper bound on a single record's payload; a length prefix beyond this
#: is treated as tail damage (a torn length word reads as garbage).
MAX_RECORD_BYTES = 1 << 24


@dataclass(frozen=True)
class WALRecord:
    """One durable mutation: its 1-based position and the op payload."""

    serial: int
    op: Dict[str, Any]


@dataclass(frozen=True)
class WALScan:
    """Result of scanning a log: the valid prefix plus tail diagnosis.

    ``tail_kind`` is ``None`` for a clean log, else one of
    ``"truncated-header"`` / ``"truncated-payload"`` (a crash tore the
    final write) or ``"checksum-mismatch"`` / ``"unparsable-payload"`` /
    ``"implausible-length"`` (the tail bytes are damaged).  Every kind
    ends replay at ``valid_bytes``; none invalidates the prefix.
    """

    records: List[WALRecord]
    valid_bytes: int
    tail_kind: Optional[str]


def encode_record(op: Dict[str, Any]) -> bytes:
    """Serialize one op as a length-prefixed, checksummed record."""
    payload = json.dumps(op, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_wal_bytes(data: bytes) -> WALScan:
    """Scan raw log bytes into the longest valid record prefix.

    Raises :class:`WALCorruptedError` when the magic is wrong — a file
    that is not a WAL at all cannot be partially trusted.  Tail damage is
    *returned*, not raised, so callers choose between recovering
    (truncate to ``valid_bytes``) and rejecting (:func:`read_wal` with
    ``on_tail="error"``).
    """
    if len(data) < len(WAL_MAGIC):
        if data and not WAL_MAGIC.startswith(data):
            raise WALCorruptedError(
                f"not a mutation WAL: bad magic {data[:8]!r}"
            )
        # Empty file (no damage) or a crash mid-magic: no valid records
        # either way, but the partial magic must be diagnosed so
        # recovery rewrites it before anything appends behind it.
        return WALScan(
            records=[],
            valid_bytes=0,
            tail_kind="truncated-header" if data else None,
        )
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WALCorruptedError(
            f"not a mutation WAL: bad magic {data[:8]!r}"
        )
    records: List[WALRecord] = []
    pos = len(WAL_MAGIC)
    valid = pos
    tail_kind: Optional[str] = None
    while pos < len(data):
        if pos + _HEADER.size > len(data):
            tail_kind = "truncated-header"
            break
        length, crc = _HEADER.unpack_from(data, pos)
        if length > MAX_RECORD_BYTES:
            tail_kind = "implausible-length"
            break
        start = pos + _HEADER.size
        end = start + length
        if end > len(data):
            tail_kind = "truncated-payload"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            tail_kind = "checksum-mismatch"
            break
        try:
            op = json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            tail_kind = "unparsable-payload"
            break
        if not isinstance(op, dict):
            tail_kind = "unparsable-payload"
            break
        records.append(WALRecord(serial=len(records) + 1, op=op))
        pos = end
        valid = pos
    return WALScan(records=records, valid_bytes=valid, tail_kind=tail_kind)


def read_wal(path: str, on_tail: str = "error") -> WALScan:
    """Read a mutation log, diagnosing its tail.

    ``on_tail`` selects the policy for a damaged tail:

    * ``"error"`` — raise :class:`WALTornTailError` (carrying the kind,
      the count of valid records, and the recoverable byte offset);
    * ``"keep"`` — return the scan with the tail diagnosis for the
      caller to act on (used by recovery, which truncates).

    A missing file reads as an empty log.  A wrong magic always raises
    :class:`WALCorruptedError`.
    """
    if on_tail not in ("error", "keep"):
        raise ValueError(f"on_tail must be 'error' or 'keep': {on_tail!r}")
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return WALScan(records=[], valid_bytes=0, tail_kind=None)
    scan = scan_wal_bytes(data)
    if scan.tail_kind is not None and on_tail == "error":
        raise WALTornTailError(
            path=path,
            kind=scan.tail_kind,
            valid_records=len(scan.records),
            valid_bytes=scan.valid_bytes,
        )
    return scan


def recover_wal(path: str) -> Tuple[List[WALRecord], Optional[str]]:
    """Read ``path`` and truncate any damaged tail in place.

    Returns the valid records and the dropped tail's kind (``None`` when
    the log was clean).  After recovery the file on disk ends exactly at
    the last valid record, so a subsequent open-for-append is safe.
    """
    scan = read_wal(path, on_tail="keep")
    if scan.tail_kind is not None:
        if scan.valid_bytes < len(WAL_MAGIC):
            # The crash tore the magic itself (truncating would only
            # zero-pad the partial magic): rewrite the empty log.
            with open(path, "wb") as f:
                f.write(WAL_MAGIC)
                f.flush()
                os.fsync(f.fileno())
        else:
            with open(path, "r+b") as f:
                f.truncate(scan.valid_bytes)
                f.flush()
                os.fsync(f.fileno())
        if OBS.enabled:
            OBS.metrics.inc("wal.torn_tail_truncations")
    return scan.records, scan.tail_kind


def apply_wal_op(index: Any, op: Dict[str, Any]) -> bool:
    """Apply one logged op through the incremental maintenance API.

    Mirrors the serve admin contract (and the verify fuzzer's op
    vocabulary): inapplicable ops — re-inserting a present edge, deleting
    an absent one — are no-ops, which makes replay idempotent: replaying
    a log twice, or on top of files that already contain a prefix of it,
    converges to the same state.  Unknown kinds raise :class:`WALError`
    (a log from a future format must not be half-applied).
    """
    kind = op.get("op")
    if kind == "insert":
        u, v = int(op["u"]), int(op["v"])
        if u == v or index.base_graph.has_edge(u, v):
            return False
        index.insert_edge(u, v)
        return True
    if kind == "delete":
        u, v = int(op["u"]), int(op["v"])
        if not index.base_graph.has_edge(u, v):
            return False
        index.delete_edge(u, v)
        return True
    if kind == "drop-ontology":
        index.remove_ontology_edge(str(op["subtype"]), str(op["supertype"]))
        return True
    raise WALError(f"unknown WAL op kind: {kind!r}")


def replay_wal(index: Any, records: List[WALRecord]) -> int:
    """Replay recovered records onto ``index``; returns ops applied."""
    applied = 0
    for record in records:
        try:
            if apply_wal_op(index, record.op):
                applied += 1
        except WALError:
            raise
        except Exception as exc:  # noqa: BLE001 - classify for callers
            raise WALError(
                f"WAL record {record.serial} failed to replay: {exc}"
            ) from exc
    if OBS.enabled and records:
        OBS.metrics.inc("wal.replayed_records", len(records))
    return applied


class MutationWAL:
    """Append-only durable mutation log with group-commit fsync batching.

    Thread-safe: any number of threads may :meth:`commit` concurrently.
    Opening recovers a torn tail automatically (truncating it), so a log
    left behind by ``kill -9`` is always appendable.
    """

    def __init__(self, path: str, group_commit_window: float = 0.0) -> None:
        self.path = path
        self.group_commit_window = max(0.0, float(group_commit_window))
        self._cond = threading.Condition()
        self._file: Optional[Any] = None
        self._record_count = 0
        self._appended = 0  # serial of the last record written to the buffer
        self._synced = 0  # serial of the last record known fsynced
        self._sync_leader = False
        self._recovered_tail: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self) -> List[WALRecord]:
        """Open (creating if missing), recover the tail, return records.

        The returned records are what a loader should replay; the file is
        positioned for appending the next record.
        """
        with self._cond:
            if self._file is not None:
                raise WALError(f"WAL already open: {self.path}")
            if os.path.exists(self.path):
                records, self._recovered_tail = recover_wal(self.path)
            else:
                records = []
                with open(self.path, "wb") as f:
                    f.write(WAL_MAGIC)
                    f.flush()
                    os.fsync(f.fileno())
            self._file = open(self.path, "ab")
            self._record_count = len(records)
            self._appended = len(records)
            self._synced = len(records)
            if OBS.enabled:
                OBS.metrics.inc("wal.opens")
            return records

    @property
    def record_count(self) -> int:
        with self._cond:
            return self._record_count

    @property
    def recovered_tail(self) -> Optional[str]:
        """Tail-damage kind dropped during :meth:`open`, if any."""
        return self._recovered_tail

    def close(self) -> None:
        """Fsync any buffered records and close the file."""
        with self._cond:
            if self._file is None:
                return
            if self._appended > self._synced:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._synced = self._appended
            self._file.close()
            self._file = None

    def truncate(self) -> None:
        """Reset the log to empty (after a save persisted its history)."""
        with self._cond:
            self._require_open()
            self._file.close()
            with open(self.path, "wb") as f:
                f.write(WAL_MAGIC)
                f.flush()
                os.fsync(f.fileno())
            self._file = open(self.path, "ab")
            self._record_count = 0
            self._appended = 0
            self._synced = 0
            if OBS.enabled:
                OBS.metrics.inc("wal.truncations")

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self, op: Dict[str, Any]) -> int:
        """Append ``op`` and return its serial once it is fsynced.

        Never returns before the record is durable.  Concurrent commits
        share fsyncs: the first committer leads, waits up to the group
        window for followers, and one ``fsync`` covers the batch.
        """
        record = encode_record(op)
        with self._cond:
            self._require_open()
            self._file.write(record)
            self._file.flush()
            self._appended += 1
            self._record_count += 1
            serial = self._appended
            if OBS.enabled:
                OBS.metrics.inc("wal.appends")
            while self._synced < serial:
                if self._sync_leader:
                    self._cond.wait()
                    continue
                self._sync_leader = True
                if self.group_commit_window > 0:
                    # Absorb followers before paying the fsync; the wait
                    # simply times out (nothing notifies mid-window).
                    self._cond.wait(timeout=self.group_commit_window)
                target = self._appended
                fd = self._file.fileno()
                self._cond.release()
                try:
                    os.fsync(fd)
                finally:
                    self._cond.acquire()
                self._synced = max(self._synced, target)
                self._sync_leader = False
                if OBS.enabled:
                    OBS.metrics.inc("wal.fsyncs")
                self._cond.notify_all()
        return serial

    def _require_open(self) -> None:
        if self._file is None:
            raise WALError(f"WAL is not open: {self.path}")

    # ------------------------------------------------------------------
    # Context manager
    # ------------------------------------------------------------------
    def __enter__(self) -> "MutationWAL":
        if self._file is None:
            self.open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
