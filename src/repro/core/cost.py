"""The index-construction cost model (Sec. 3.2, Formula 3).

``cost(G, C) = alpha * compress(G, C) + (1 - alpha) * distort(G, C)``

* **compress** — the size ratio ``|chi(G, C)| / |G|`` of the summarized
  generalized graph to the input graph.  Computing it exactly summarizes
  the whole graph, so the model estimates it on ``n`` sampled r-hop
  node-induced subgraphs (Sec. 3.2 "Graph sampling"); the estimation-of-
  proportion formula sizes the sample (``n = 400`` at ``E = 5%``,
  ``z = 1.96``).
* **distort** — the support-weighted semantic distortion.  For a mapping
  ``l_i -> l'_i``, ``distort(l_i) = 1 - 1/|X_{l_i}|`` where ``X_{l_i}``
  counts the configuration's labels generalized to the same supertype;
  the graph-level value weights by label support ``sup(l_i) = |V_{l_i}|/|V|``:

  ``distort(G, C) = (sum_i distort(l_i) * sup(l_i))
                    / (|X| * sum_i sup(l_i))``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bisim.refinement import BisimDirection
from repro.bisim.summary import summarize
from repro.core.config import Configuration
from repro.core.generalize import generalize_graph
from repro.graph.digraph import Graph
from repro.graph.sampling import sample_neighborhoods
from repro.utils.errors import ConfigurationError


@dataclass
class CostParams:
    """Tunables of the cost model.

    Attributes
    ----------
    alpha:
        Weight between compression and distortion (Formula 3).
    sample_radius:
        ``r``: radius of sampled neighborhoods; keyword search semantics
        are bounded by a small hop count, so small radii suffice.
    num_samples:
        ``n``: how many neighborhoods to sample (paper default 400).
    seed:
        RNG seed for sampling; fixed for reproducibility.
    exact:
        When True, skip sampling and compute compress on the full graph
        (used by tests and small benchmarks).
    """

    alpha: float = 0.5
    sample_radius: int = 2
    num_samples: int = 400
    seed: int = 0
    exact: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError("alpha must be within [0, 1]")
        if self.num_samples <= 0:
            raise ConfigurationError("num_samples must be positive")


class CostModel:
    """Evaluates Formula 3 for configurations over one graph.

    The sample set is drawn once per model instance so candidate
    configurations are compared on identical samples — the paper fixes the
    sample subgraphs when ranking 100 configurations in Exp-4.
    """

    def __init__(
        self,
        graph: Graph,
        params: Optional[CostParams] = None,
        direction: BisimDirection = BisimDirection.SUCCESSORS,
    ) -> None:
        self.graph = graph
        self.params = params or CostParams()
        self.direction = direction
        self._samples: Optional[List[Graph]] = None
        self._support_cache: Dict[str, float] = {}
        #: (sample index, config projected onto the sample's labels) ->
        #: that sample's compression ratio.
        self._ratio_cache: Dict[Tuple[int, Tuple[Tuple[str, str], ...]], float] = {}
        self._sample_labels: Optional[List[frozenset]] = None

    # ------------------------------------------------------------------
    @property
    def samples(self) -> List[Graph]:
        """The lazily drawn, cached sample subgraphs.

        Samples are undirected r-hop balls: successor-bisimulation merges
        *co-pointing siblings* (vertices sharing their successor sets), and
        a directed forward ball of a random vertex contains its successors
        but never its siblings, so only the undirected ball exposes the
        structure whose compression the estimate must predict.
        """
        if self._samples is None:
            self._samples = sample_neighborhoods(
                self.graph,
                num_samples=self.params.num_samples,
                radius=self.params.sample_radius,
                seed=self.params.seed,
                direction="both",
            )
        return self._samples

    def support(self, label: str) -> float:
        """``sup(l) = |V_l| / |V|`` on the model's graph."""
        cached = self._support_cache.get(label)
        if cached is None:
            n = self.graph.num_vertices
            cached = self.graph.label_support(label) / n if n else 0.0
            self._support_cache[label] = cached
        return cached

    # ------------------------------------------------------------------
    def compress(self, config: Configuration) -> float:
        """Estimated (or exact) compression ratio ``|chi(G, C)| / |G|``.

        Per-sample ratios are memoized keyed by the configuration's
        *projection* onto the sample's label set: a mapping whose source
        label is absent from a sample is a no-op for that sample's
        generalization, so any two configurations with the same projection
        produce bit-identical ratios.  Algorithm 1 evaluates hundreds of
        near-identical configurations (every single-mapping candidate,
        then each cumulative extension), and most samples are blind to
        most mappings — the cache collapses that to one summarization per
        distinct (sample, projection) pair without changing a single
        float.
        """
        if self.params.exact:
            return compression_ratio(self.graph, config, self.direction)
        samples = self.samples
        if self._sample_labels is None:
            self._sample_labels = [
                frozenset(sample.distinct_labels()) for sample in samples
            ]
        items = sorted(config.mappings.items())
        cache = self._ratio_cache
        ratios: List[float] = []
        for i, sample in enumerate(samples):
            if sample.size <= 0:
                continue
            labels_here = self._sample_labels[i]
            key = (i, tuple(m for m in items if m[0] in labels_here))
            ratio = cache.get(key)
            if ratio is None:
                ratio = compression_ratio(sample, config, self.direction)
                cache[key] = ratio
            ratios.append(ratio)
        if not ratios:
            return 1.0
        return sum(ratios) / len(ratios)

    def distort(self, config: Configuration) -> float:
        """Support-weighted semantic distortion of ``config`` on the graph."""
        return distortion(self.graph, config, self.support)

    def cost(self, config: Configuration) -> float:
        """Formula 3: the weighted sum of compress and distort."""
        alpha = self.params.alpha
        return alpha * self.compress(config) + (1.0 - alpha) * self.distort(config)


def compression_ratio(
    graph: Graph,
    config: Configuration,
    direction: BisimDirection = BisimDirection.SUCCESSORS,
) -> float:
    """Exact ``|Bisim(Gen(G, C))| / |G|`` for one graph."""
    if graph.size == 0:
        return 1.0
    generalized = generalize_graph(graph, config)
    summary = summarize(generalized, direction=direction)
    return summary.graph.size / graph.size


def label_distortion(config: Configuration, label: str) -> float:
    """``distort(l) = 1 - 1/|X_l|`` for one mapped label (Sec. 3.2)."""
    if label not in config:
        return 0.0
    siblings = config.sources_of(config.target_of(label))
    return 1.0 - 1.0 / len(siblings)


def distortion(graph: Graph, config: Configuration, support=None) -> float:
    """Support-weighted distortion of a configuration on a graph.

    ``support`` may be a callable ``label -> sup(label)``; defaults to
    computing supports from ``graph`` directly.
    """
    domain = sorted(config.domain)
    if not domain:
        return 0.0
    if support is None:
        n = graph.num_vertices

        def support(label: str) -> float:  # type: ignore[misc]
            return graph.label_support(label) / n if n else 0.0

    weighted = 0.0
    support_sum = 0.0
    for label in domain:
        sup = support(label)
        weighted += label_distortion(config, label) * sup
        support_sum += sup
    if support_sum == 0.0:
        # None of the mapped labels occurs in the graph: the generalization
        # is free of observable distortion.
        return 0.0
    return weighted / (len(domain) * support_sum)
