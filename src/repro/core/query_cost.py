"""Query generalization cost model (Sec. 4.1, Formula 4; Def. 4.1).

The cost of evaluating a query at layer ``m`` trades off two effects:

* evaluating on a *smaller* summary graph is cheaper (less exploration,
  fewer redundant traversals); and
* the *higher* the layer, the less selective the generalized keywords are
  in the summary graph, and the more specialization/pruning work answer
  generation must do to come back down.

Formula 4 as printed is::

    cost_q(m) = beta * (1 - |chi^m(G)| / |G|)
              + (1 - beta) * sum_i sup(Gen^m(q_i), G^m) / sum_i sup(q_i, G)

where ``sup(q, G)`` is the fraction of ``G``'s vertices labeled ``q``.

The prose, however, explains the first term as "the compression ratio of
the summary graph at the m-th layer — the smaller the summary graph, the
more efficient the query processing", i.e. a term that should *decrease*
with ``m`` so it can trade off against the second term (which increases
with ``m``).  Taken literally, ``1 - ratio`` increases with ``m`` as well,
making layer 1 always optimal and contradicting the paper's Fig. 19 (where
several queries are best at the highest layer).  We therefore default to
the prose reading — first term = the size ratio itself — and expose the
literal formula as ``formula="literal"`` for side-by-side comparison in
the Exp-4 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.index import BiGIndex
from repro.search.base import KeywordQuery
from repro.utils.errors import QueryError


@dataclass
class LayerCost:
    """Cost-model evaluation of one candidate layer."""

    layer: int
    cost: float
    size_ratio: float
    support_ratio: float
    distinct: bool


class QueryCostModel:
    """Evaluates Formula 4 over the layers of a BiG-index.

    Parameters
    ----------
    index:
        The BiG-index whose layers are candidates.
    beta:
        The weight between the size term and the support term (the paper
        sweeps 0.1-0.9 in Exp-4 and settles on 0.5).
    formula:
        ``"prose"`` (default) uses the size ratio as the first term;
        ``"literal"`` uses ``1 - ratio`` exactly as printed.
    """

    def __init__(
        self,
        index: BiGIndex,
        beta: float = 0.5,
        formula: str = "prose",
        allow_layer_zero: bool = False,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise QueryError("beta must be within [0, 1]")
        if formula not in ("prose", "literal"):
            raise QueryError(f"unknown formula variant: {formula!r}")
        self.index = index
        self.beta = beta
        self.formula = formula
        #: When True, the data graph itself (layer 0, whose size ratio and
        #: support ratio are both exactly 1) competes with the summary
        #: layers, so queries the model predicts to lose from
        #: generalization run directly.  The journal formulation compares
        #: only summary layers; the option reproduces the practical
        #: deployment where the index is bypassed for unprofitable
        #: queries.
        self.allow_layer_zero = allow_layer_zero

    def layer_cost(self, query: KeywordQuery, m: int) -> LayerCost:
        """Evaluate Formula 4 for one layer."""
        if m == 0:
            first = 1.0 if self.formula == "prose" else 0.0
            return LayerCost(
                layer=0,
                cost=self.beta * first + (1.0 - self.beta),
                size_ratio=1.0,
                support_ratio=1.0,
                distinct=True,
            )
        base = self.index.base_graph
        layer_graph = self.index.layer_graph(m)
        ratio = layer_graph.size / base.size if base.size else 1.0
        first = ratio if self.formula == "prose" else (1.0 - ratio)

        base_n = base.num_vertices or 1
        layer_n = layer_graph.num_vertices or 1
        base_support = sum(
            base.label_support(keyword) / base_n for keyword in query
        )
        generalized = self.index.generalize_query(query, m)
        layer_support = sum(
            layer_graph.label_support(label) / layer_n for label in generalized
        )
        support_ratio = (
            layer_support / base_support if base_support > 0 else float("inf")
        )
        cost = self.beta * first + (1.0 - self.beta) * support_ratio
        return LayerCost(
            layer=m,
            cost=cost,
            size_ratio=ratio,
            support_ratio=support_ratio,
            distinct=self.index.query_distinct_at(query, m),
        )

    def all_layer_costs(self, query: KeywordQuery) -> List[LayerCost]:
        """Formula 4 over every candidate layer (``0`` included only when
        ``allow_layer_zero`` is set)."""
        start = 0 if self.allow_layer_zero else 1
        return [
            self.layer_cost(query, m)
            for m in range(start, self.index.num_layers + 1)
        ]

    def optimal_layer(self, query: KeywordQuery) -> int:
        """Def. 4.1: the admissible layer with minimal cost.

        Only layers where the generalized keywords stay distinct
        (condition 1) are admissible; among those the minimal-cost layer
        wins (condition 2), ties broken toward the lower layer.  Falls back
        to layer 1 when even it merges keywords is impossible — then layer
        0 (direct evaluation) is the only correct choice, signalled by
        returning 0.
        """
        candidates = [c for c in self.all_layer_costs(query) if c.distinct]
        if not candidates:
            return 0
        best = min(candidates, key=lambda c: (c.cost, c.layer))
        return best.layer


def optimal_query_layer(
    index: BiGIndex, query: KeywordQuery, beta: float = 0.5
) -> int:
    """Convenience wrapper: the cost model's optimal layer for ``query``."""
    return QueryCostModel(index, beta=beta).optimal_layer(query)
