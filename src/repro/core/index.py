"""The BiG-index hierarchy (Def. 3.1) with construction and maintenance.

A BiG-index of a graph ``G`` and ontology ``G_Ont`` is ``(G, C)``: graphs
``{G^0, ..., G^h}`` and configurations ``[C^1, ..., C^h]`` with ``G^0 = G``
and ``G^i = chi(G^{i-1}, C^i) = Bisim(Gen(G^{i-1}, C^i))``.

Construction (Sec. 3.2) picks each layer's configuration with Algorithm 1's
greedy heuristic and stops when adding layers stops paying: either the layer
budget is reached, no candidate generalization exists, or summarization no
longer compresses (the paper: "until it cannot be further summarized
efficiently").

Maintenance (Sec. 3.2):

* **Data-graph updates** — edge insertions/deletions at layer 0 propagate
  upward layer by layer.  Each layer's partition is recomputed by signature
  refinement *seeded from the previous partition* (the incremental scheme of
  :mod:`repro.bisim.incremental`), so the refreshed index stays a valid
  bisimulation hierarchy; it may drift finer than minimal, and
  :meth:`BiGIndex.rebuild` restores minimality — matching the paper's
  "recomputed occasionally to maintain its efficiency".
* **Ontology updates** — additions never invalidate the index (existing
  configurations remain label-preserving).  Removing a subtype edge calls
  :meth:`BiGIndex.remove_ontology_edge`, which drops the affected mappings
  from every configuration and rebuilds from the first affected layer.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bisim.refinement import BisimDirection, maximal_bisimulation
from repro.bisim.summary import summarize
from repro.core.config import Configuration
from repro.core.cost import CostModel, CostParams
from repro.core.generalize import (
    generalize_graph,
    generalize_label,
    generalize_query,
)
from repro.core.heuristic import greedy_configuration
from repro.core.querycache import LRUCache
from repro.graph.digraph import Graph
from repro.obs.runtime import OBS
from repro.ontology.ontology import OntologyGraph
from repro.search.base import KeywordQuery
from repro.utils.errors import BigIndexError, QueryError
from repro.utils.timers import monotonic_now


@dataclass
class Layer:
    """One index layer ``G^i`` plus its link to the layer below.

    Attributes
    ----------
    config:
        ``C^i``, the configuration applied to ``G^{i-1}``'s labels.
    graph:
        ``G^i = Bisim(Gen(G^{i-1}, C^i))``.
    parent_of:
        ``parent_of[v]`` is the supernode of layer-(i-1) vertex ``v`` —
        the per-layer ``chi`` map.  A plain list on heap-built indexes;
        a zero-copy :class:`repro.core.binfmt.IntVector` when loaded
        from a v4 container (the two compare equal element-wise).
    extent:
        ``extent[s]`` lists the layer-(i-1) vertices of supernode ``s`` —
        the per-layer ``chi^{-1}`` hash table.  List-of-lists on heap
        builds, :class:`repro.core.binfmt.ExtentTable` on v4 loads.
    build_seconds:
        Wall-clock construction time of this layer (Exp-3).
    """

    config: Configuration
    graph: Graph
    parent_of: Sequence[int]
    extent: Sequence[Sequence[int]]
    build_seconds: float = 0.0


@dataclass
class ConstructionReport:
    """Summary of one build for the Exp-3 benchmarks."""

    layer_sizes: List[int] = field(default_factory=list)
    layer_seconds: List[float] = field(default_factory=list)
    total_seconds: float = 0.0


class BiGIndex:
    """The hierarchical Bisimulation-of-Generalized-Graph index.

    Use :meth:`build` to construct one; direct instantiation is reserved
    for tests that assemble layers manually.
    """

    def __init__(
        self,
        base_graph: Graph,
        ontology: OntologyGraph,
        direction: BisimDirection = BisimDirection.SUCCESSORS,
    ) -> None:
        self.base_graph = base_graph
        self.ontology = ontology
        self.direction = direction
        self.layers: List[Layer] = []
        self.report = ConstructionReport()
        #: updates applied since the last full (re)build.
        self.drift = 0
        #: bumped whenever maintenance replaces layers (see ``epoch``).
        self._maintenance_epoch = 0
        # Gen^m / Spec memos, valid only for the epoch they were filled at.
        self._memo_epoch: Optional[Tuple[int, int]] = None
        self._gen_memo: Dict[Tuple[Tuple[str, ...], int], Tuple[str, ...]] = {}
        self._spec_memo = LRUCache(4096, kind="spec")
        # Orders memo sync/fill against concurrent readers: without it, a
        # reader could publish a value computed under epoch e into a memo
        # another thread just cleared for epoch e' (stale-fill poisoning).
        # Reentrant because generalize_query may be reached from a locked
        # section.  Mutation itself still needs external exclusion (the
        # serve runtime's write lock); this lock protects the memos.
        self._memo_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        ontology: OntologyGraph,
        num_layers: Optional[int] = None,
        theta: float = 1.0,
        max_mappings: Optional[int] = None,
        cost_params: Optional[CostParams] = None,
        direction: BisimDirection = BisimDirection.SUCCESSORS,
        stop_ratio: float = 0.98,
        workers: Optional[int] = None,
    ) -> "BiGIndex":
        """Construct a BiG-index bottom-up.

        Parameters
        ----------
        graph:
            The data graph ``G^0`` (not copied; treat as owned by the index
            when using maintenance).
        ontology:
            ``G_Ont`` used for candidate generalizations.
        num_layers:
            Maximum number of layers ``h``; ``None`` keeps adding layers
            while they compress.
        theta / max_mappings / cost_params:
            Algorithm 1 parameters (Sec. 3.2).  The paper's default index
            uses large ``theta`` and ``Pi`` so each layer generalizes every
            label one ontology step.
        direction:
            Bisimulation matching direction.
        stop_ratio:
            Stop when a new layer's size exceeds this fraction of the layer
            below (compression has saturated).
        workers:
            Score each layer's candidate generalizations on this many
            worker processes (threads when process pools are unavailable);
            ``None``/1 builds serially.  Results are identical either way
            — only the wall clock changes.
        """
        index = cls(graph, ontology, direction=direction)
        start_total = monotonic_now()
        current = graph
        while num_layers is None or len(index.layers) < num_layers:
            start = monotonic_now()
            with OBS.tracer.span(
                "build-layer", layer=len(index.layers) + 1, size=current.size
            ) as layer_span:
                with OBS.tracer.span("configure"):
                    config = greedy_configuration(
                        current,
                        ontology,
                        theta=theta,
                        max_mappings=max_mappings,
                        cost_params=cost_params,
                        workers=workers,
                    )
                with OBS.tracer.span("generalize"):
                    generalized = generalize_graph(current, config)
                with OBS.tracer.span("summarize"):
                    summary = summarize(generalized, direction=direction)
                elapsed = monotonic_now() - start
                ratio = (
                    summary.graph.size / current.size if current.size else 1.0
                )
                if OBS.enabled:
                    layer_span.annotate(
                        mappings=len(config),
                        summary_size=summary.graph.size,
                        ratio=round(ratio, 4),
                    )
                if not config and ratio > stop_ratio:
                    break  # nothing generalized and bisim stopped compressing
                index.layers.append(
                    Layer(
                        config=config,
                        graph=summary.graph,
                        parent_of=summary.supernode_of,
                        extent=summary.extent,
                        build_seconds=elapsed,
                    )
                )
                index.report.layer_sizes.append(summary.graph.size)
                index.report.layer_seconds.append(elapsed)
                if OBS.enabled:
                    OBS.metrics.inc("build.layers")
                    OBS.metrics.inc("build.mappings_accepted", len(config))
                if ratio > stop_ratio and num_layers is None:
                    break  # keep the layer but stop stacking more
                current = summary.graph
        index.report.total_seconds = monotonic_now() - start_total
        return index

    # ------------------------------------------------------------------
    # Cache invalidation
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> Tuple[int, int]:
        """A value that changes whenever cached query artifacts go stale.

        Combines the index's own maintenance counter (layers replaced by
        :meth:`insert_edge`/:meth:`delete_edge`/:meth:`rebuild`/
        :meth:`remove_ontology_edge`) with the base graph's
        ``mutation_epoch``, so direct mutation of ``base_graph`` also
        invalidates.  Anything derived from layers, configurations, or
        the data graph — ``Gen^m`` translations, ``Spec`` fan-outs,
        whole query results — must be keyed by (or guarded on) this.
        """
        return (self._maintenance_epoch, self.base_graph.mutation_epoch)

    def _sync_memos(self) -> None:
        """Clear the Gen/Spec memos if the index moved since they filled.

        Callers that go on to read or fill a memo must do so while still
        holding ``_memo_lock`` (the memoized entry points below) so a
        concurrent clear cannot interleave between the epoch check and
        the memo access.
        """
        with self._memo_lock:
            epoch = self.epoch
            if self._memo_epoch != epoch:
                self._memo_epoch = epoch
                self._gen_memo.clear()
                self._spec_memo.clear()

    def drop_caches(self) -> None:
        """Release the Gen/Spec memos (e.g. for cold-start benchmarks)."""
        with self._memo_lock:
            self._memo_epoch = None
            self._gen_memo.clear()
            self._spec_memo.clear()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """``h``: the number of summary layers above the data graph."""
        return len(self.layers)

    def layer_graph(self, m: int) -> Graph:
        """``G^m`` (``m = 0`` is the data graph)."""
        if m == 0:
            return self.base_graph
        if not 1 <= m <= len(self.layers):
            raise BigIndexError(f"layer {m} out of range (h={len(self.layers)})")
        return self.layers[m - 1].graph

    def configs_up_to(self, m: int) -> List[Configuration]:
        """``[C^1, ..., C^m]``."""
        if not 0 <= m <= len(self.layers):
            raise BigIndexError(f"layer {m} out of range (h={len(self.layers)})")
        return [layer.config for layer in self.layers[:m]]

    def layer_sizes(self) -> List[int]:
        """``|G^0|, |G^1|, ..., |G^h|`` (Fig. 9's series)."""
        return [self.base_graph.size] + [layer.graph.size for layer in self.layers]

    def size_ratio(self, m: int) -> float:
        """``|G^m| / |G^0|`` (Tab. 3 reports it for ``m = 1``)."""
        return self.layer_graph(m).size / self.base_graph.size

    def total_index_size(self) -> int:
        """Sum of all summary-graph sizes ("the BiG-index size is simply
        the sum of the summary graphs in the index", Exp-3)."""
        return sum(layer.graph.size for layer in self.layers)

    # ------------------------------------------------------------------
    # chi / Spec navigation
    # ------------------------------------------------------------------
    def chi(self, vertex: int, m: int) -> int:
        """``chi^m(v)``: the layer-``m`` supernode summarizing base vertex ``v``."""
        current = vertex
        for layer in self.layers[:m]:
            current = layer.parent_of[current]
        return current

    def spec_vertex(self, supernode: int, m: int) -> List[int]:
        """``Spec`` one step: layer-``m`` supernode -> layer-(m-1) vertices."""
        if not 1 <= m <= len(self.layers):
            raise BigIndexError(f"layer {m} out of range (h={len(self.layers)})")
        return list(self.layers[m - 1].extent[supernode])

    def spec_to_base(self, supernode: int, m: int) -> List[int]:
        """Fully specialize a layer-``m`` supernode to base (layer-0) vertices.

        Memoized per (layer, supernode) under the current :attr:`epoch`:
        answer recovery specializes the same supernodes over and over
        across a query workload, and the fan-out is a pure function of
        the extent tables.
        """
        key = (m, supernode)
        with self._memo_lock:
            self._sync_memos()
            epoch = self._memo_epoch
            cached = self._spec_memo.get(key)
        if cached is not None:
            return list(cached)
        frontier = [supernode]
        for level in range(m, 0, -1):
            extent = self.layers[level - 1].extent
            frontier = [child for s in frontier for child in extent[s]]
        with self._memo_lock:
            # Guarded fill: if the epoch moved while we walked the extent
            # tables, this value belongs to a dead generation — skip the
            # put instead of poisoning the fresh memo.  Epoch components
            # are monotone, so equality proves nothing moved.
            self._sync_memos()
            if self._memo_epoch == epoch:
                self._spec_memo.put(key, tuple(frontier))
        return frontier

    # ------------------------------------------------------------------
    # Query generalization
    # ------------------------------------------------------------------
    def generalize_keyword(self, keyword: str, m: int) -> str:
        """``Gen^m`` of one keyword through ``C^1 ... C^m`` (memoized)."""
        key = ((keyword,), m)
        with self._memo_lock:
            self._sync_memos()
            cached = self._gen_memo.get(key)
            if cached is None:
                cached = (generalize_label(keyword, self.configs_up_to(m)),)
                self._gen_memo[key] = cached
        return cached[0]

    def generalize_query(self, query: KeywordQuery, m: int) -> List[str]:
        """``Gen^m(Q)`` as a list (may contain collisions; see Def. 4.1).

        Memoized under the current :attr:`epoch` — layer selection probes
        ``Gen^m(Q)`` for every candidate layer of every query, and the
        translation only changes when a configuration does.
        """
        key = (query.keywords, m)
        with self._memo_lock:
            self._sync_memos()
            cached = self._gen_memo.get(key)
            if cached is None:
                cached = tuple(generalize_query(query, self.configs_up_to(m)))
                self._gen_memo[key] = cached
        return list(cached)

    def query_distinct_at(self, query: KeywordQuery, m: int) -> bool:
        """Def. 4.1 condition 1: ``|Gen^m(Q)| = |Q)|``."""
        generalized = self.generalize_query(query, m)
        return len(set(generalized)) == len(generalized)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Insert a data-graph edge and refresh every layer incrementally."""
        if self.base_graph.add_edge(u, v):
            self._refresh_layers()

    def delete_edge(self, u: int, v: int) -> None:
        """Delete a data-graph edge and refresh every layer incrementally."""
        self.base_graph.remove_edge(u, v)
        self._refresh_layers()

    def rebuild(self) -> None:
        """Recompute every layer's *maximal* bisimulation (keeps configs).

        Restores index minimality after incremental updates ("to minimize
        the index size, BiG-index can be recomputed occasionally").
        """
        current = self.base_graph
        rebuilt: List[Layer] = []
        for layer in self.layers:
            generalized = generalize_graph(current, layer.config)
            summary = summarize(generalized, direction=self.direction)
            rebuilt.append(
                Layer(
                    config=layer.config,
                    graph=summary.graph,
                    parent_of=summary.supernode_of,
                    extent=summary.extent,
                )
            )
            current = summary.graph
        self.layers = rebuilt
        self.drift = 0
        self._maintenance_epoch += 1

    def note_ontology_addition(self) -> None:
        """Record an ontology extension: no action required.

        New subtype edges cannot invalidate existing configurations (each
        mapping's edge still exists); the index simply does not exploit the
        new edges until a rebuild (paper: "new ontologies do not make a
        BiG-index incorrect, and BiG-index can be reconstructed
        periodically").
        """
        self.drift += 1

    def remove_ontology_edge(self, subtype: str, supertype: str) -> None:
        """Handle removal of a subtype-supertype relationship.

        Every configuration using the removed edge loses the affected
        mapping, and all layers from the first affected one upward are
        reconstructed with the reduced configurations — specializing the
        summary graphs "so that the affected relationships are not involved
        in any configurations in the updated BiG-index".
        """
        first_affected: Optional[int] = None
        new_configs: List[Configuration] = []
        for i, layer in enumerate(self.layers):
            # Copy before dropping the mapping: Layer objects may be shared
            # with published copy-on-write snapshots (cow_clone), so the
            # old configuration must stay intact for pinned readers.
            mappings = dict(layer.config.mappings)
            if mappings.get(subtype) == supertype:
                del mappings[subtype]
                if first_affected is None:
                    first_affected = i
            new_configs.append(Configuration(mappings))
        if first_affected is None:
            return
        current = (
            self.base_graph
            if first_affected == 0
            else self.layers[first_affected - 1].graph
        )
        rebuilt = self.layers[:first_affected]
        for config in new_configs[first_affected:]:
            generalized = generalize_graph(current, config)
            summary = summarize(generalized, direction=self.direction)
            rebuilt.append(
                Layer(
                    config=config,
                    graph=summary.graph,
                    parent_of=summary.supernode_of,
                    extent=summary.extent,
                )
            )
            current = summary.graph
        self.layers = rebuilt
        self._maintenance_epoch += 1

    # ------------------------------------------------------------------
    # Copy-on-write snapshots
    # ------------------------------------------------------------------
    def cow_clone(self) -> "BiGIndex":
        """Copy-on-write clone for mutate-while-query snapshot isolation.

        The clone shares every immutable or wholesale-replaced structure
        with this index: the ontology, the ``Layer`` objects (maintenance
        replaces ``self.layers`` with a fresh list, and
        :meth:`remove_ontology_edge` copies a configuration before
        shrinking it, so published layers are never edited in place), and
        the base graph's unmutated adjacency rows / posting sets (via
        :meth:`Graph.cow_clone`).  Mutating the clone leaves this index —
        and any reader still pinning it — byte-identical to before.

        Memos start empty on the clone (they are epoch-guarded caches, not
        state), and the construction report is shared read-only.
        """
        clone = BiGIndex.__new__(BiGIndex)
        clone.base_graph = self.base_graph.cow_clone()
        clone.ontology = self.ontology
        clone.direction = self.direction
        clone.layers = list(self.layers)
        clone.report = self.report
        clone.drift = self.drift
        clone._maintenance_epoch = self._maintenance_epoch
        clone._memo_epoch = None
        clone._gen_memo = {}
        clone._spec_memo = LRUCache(4096, kind="spec")
        clone._memo_lock = threading.RLock()
        if OBS.enabled:
            OBS.metrics.inc("cow.index.clones")
        return clone

    def state_digest(self) -> str:
        """Deterministic sha256 over the index's logical state.

        Covers everything query-relevant — base-graph topology, vertex
        labels (as strings, so the digest is stable across label-table
        interning orders), vertex names, every layer's configuration and
        ``chi`` map, and each summary graph's labeled topology.  Two
        indexes answering every query identically produce equal digests;
        the chaos drill compares a crash-recovered server against an
        in-process oracle through this.
        """
        hasher = hashlib.sha256()

        def feed(tag: str, payload: str) -> None:
            hasher.update(tag.encode("utf-8"))
            hasher.update(b"\x1f")
            hasher.update(payload.encode("utf-8"))
            hasher.update(b"\x1e")

        def feed_graph(tag: str, graph: Graph) -> None:
            feed(tag + ".labels", "\x1f".join(
                graph.label_table.label_of(label_id) for label_id in graph.labels
            ))
            feed(tag + ".edges", "\x1f".join(
                f"{u},{v}" for u, v in sorted(graph.edges())
            ))

        feed_graph("base", self.base_graph)
        feed("base.names", "\x1f".join(
            f"{v}={self.base_graph.names[v]}"
            for v in sorted(self.base_graph.names)
        ))
        feed("h", str(len(self.layers)))
        for i, layer in enumerate(self.layers):
            feed(f"layer{i}.config", "\x1f".join(
                f"{sub}->{sup}"
                for sub, sup in sorted(layer.config.mappings.items())
            ))
            feed(f"layer{i}.parent_of", ",".join(map(str, layer.parent_of)))
            feed_graph(f"layer{i}", layer.graph)
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_layers(self) -> None:
        """Propagate a base-graph change upward, layer by layer.

        Each layer's partition is recomputed by refinement seeded from the
        old partition, so the new partition refines the old one; the seed
        for layer ``i`` maps every *new* layer-(i-1) vertex to the old
        supernode of the old vertex enclosing it, which is well defined
        exactly because of that refinement invariant.
        """
        self.drift += 1
        self._maintenance_epoch += 1
        current = self.base_graph
        # new layer-(i-1) vertex -> old layer-(i-1) vertex; identity at base.
        old_of_new: List[int] = list(range(current.num_vertices))
        rebuilt: List[Layer] = []
        for position, layer in enumerate(self.layers):
            if OBS.enabled:
                OBS.metrics.inc("build.layers_refreshed")
            with OBS.tracer.span("refresh-layer", layer=position + 1):
                generalized = generalize_graph(current, layer.config)
                seed = [
                    layer.parent_of[old_of_new[v]]
                    for v in generalized.vertices()
                ]
                blocks = maximal_bisimulation(
                    generalized, direction=self.direction, initial_blocks=seed
                )
                summary = summarize(
                    generalized, direction=self.direction, blocks=blocks
                )
                rebuilt.append(
                    Layer(
                        config=layer.config,
                        graph=summary.graph,
                        parent_of=summary.supernode_of,
                        extent=summary.extent,
                    )
                )
                # Map each new supernode to the old supernode of its members.
                old_of_new = [
                    layer.parent_of[old_of_new[members[0]]]
                    for members in summary.extent
                ]
                current = summary.graph
        self.layers = rebuilt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = ", ".join(str(s) for s in self.layer_sizes())
        return f"BiGIndex(h={self.num_layers}, sizes=[{sizes}])"
