"""Algorithm 4: path-based answer graph generation (Sec. 4.3.3).

Vertex-at-a-time generation (Algorithm 3) may re-check a generalized vertex
against many partial answers.  Algorithm 4 instead decomposes the
generalized answer graph into *paths* at its **joint vertices** (vertices
of degree > 2) and specializes one path at a time:

1. *Path decomposition* — the answer graph splits into a canonical path
   set ``P``; every path runs from a breakpoint (joint vertex, leaf, or
   isolated vertex) through degree-2 vertices to the next breakpoint.
2. *Path answer generation* — each generalized path specializes into the
   concrete data-graph paths realizing it (Algorithm 3 restricted to a
   path, which is a linear chain enumeration).
3. *Path join* — partial answers grow path by path; a concrete path
   qualifies (Def. 4.3) iff it agrees with the partial answer on every
   shared joint vertex (the concrete vertices assigned to a shared
   supernode must coincide).

Paths containing keyword nodes are joined first — keyword nodes are the
most selective, keeping intermediate candidate sets small (Example 4.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.answer_gen import (
    Assignment,
    GeneralizedAnswerGraph,
    QualifyHook,
)
from repro.graph.digraph import Graph
from repro.utils.errors import BigIndexError

#: A generalized path: the supernode sequence plus the direction of each
#: hop (True = the a^m edge points forward along the sequence).
GeneralizedPath = Tuple[Tuple[int, ...], Tuple[bool, ...]]


def joint_vertices(answer: GeneralizedAnswerGraph) -> Set[int]:
    """Supernodes of degree > 2 — the ``isJoint`` vertices of Sec. 4.3.3."""
    return {v for v in answer.vertices if answer.degree(v) > 2}


def answer_decomposition(
    answer: GeneralizedAnswerGraph,
) -> List[GeneralizedPath]:
    """Step 1: decompose ``a^m`` into its canonical path set ``P``.

    Breakpoints are joint vertices (degree > 2), leaves (degree 1), and —
    for robustness on non-tree answer graphs — an arbitrary deterministic
    vertex per pure cycle.  Every answer edge appears in exactly one path.
    """
    joints = joint_vertices(answer)
    degree = {v: answer.degree(v) for v in answer.vertices}
    breakpoints = {v for v in answer.vertices if degree[v] != 2} | joints

    # Undirected adjacency with direction bookkeeping.
    adjacency: Dict[int, List[Tuple[int, bool]]] = {
        v: [] for v in answer.vertices
    }
    for u, v in answer.edges:
        adjacency[u].append((v, True))
        adjacency[v].append((u, False))

    unused: Set[Tuple[int, int]] = set(answer.edges)
    paths: List[GeneralizedPath] = []

    def walk(start: int, first: Tuple[int, bool]) -> None:
        vertices = [start]
        directions: List[bool] = []
        current, forward = start, first
        while True:
            nxt, is_forward = forward
            edge = (current, nxt) if is_forward else (nxt, current)
            if edge not in unused:
                return
            unused.discard(edge)
            vertices.append(nxt)
            directions.append(is_forward)
            if nxt in breakpoints or nxt == start:
                break
            # Continue through the single remaining edge of a degree-2 node.
            options = [
                (w, fwd)
                for (w, fwd) in adjacency[nxt]
                if ((nxt, w) if fwd else (w, nxt)) in unused
            ]
            if not options:
                break
            current, forward = nxt, options[0]
        paths.append((tuple(vertices), tuple(directions)))

    for start in sorted(breakpoints):
        for first in sorted(adjacency[start]):
            walk(start, first)
    # Pure cycles (no breakpoints touched): break them deterministically.
    while unused:
        u, v = min(unused)
        walk(u, (v, True))
    return paths


def specialize_path(
    graph: Graph,
    answer: GeneralizedAnswerGraph,
    path: GeneralizedPath,
    qualify: Optional[QualifyHook] = None,
    max_paths: Optional[int] = None,
) -> List[List[int]]:
    """Step 2: all concrete data-graph paths realizing a generalized path.

    A concrete path picks one candidate per supernode such that every
    consecutive pair is connected by a data-graph edge in the direction
    the generalized path prescribes.  Enumeration starts from whichever
    end has fewer candidates (keyword ends are usually far more selective
    than joint ends), which keeps the intermediate prefix sets small.
    """
    supernodes, directions = path
    if (
        len(supernodes) > 1
        and len(answer.spec_sets[supernodes[-1]])
        < len(answer.spec_sets[supernodes[0]])
    ):
        supernodes = tuple(reversed(supernodes))
        directions = tuple(not d for d in reversed(directions))
        reverse_result = True
    else:
        reverse_result = False
    partial_paths: List[List[int]] = [
        [v] for v in answer.spec_sets[supernodes[0]]
    ]
    for i in range(1, len(supernodes)):
        supernode = supernodes[i]
        forward = directions[i - 1]
        # Intersect the prefix's neighbors with the candidate set rather
        # than scanning all candidates: degrees are usually far smaller
        # than specialization sets.
        candidates = set(answer.spec_sets[supernode])
        extended: List[List[int]] = []
        for concrete in partial_paths:
            last = concrete[-1]
            neighbors = (
                graph.out_neighbors(last)
                if forward
                else graph.in_neighbors(last)
            )
            for vertex in neighbors:
                if vertex not in candidates or vertex in concrete:
                    continue
                if qualify is not None and not qualify(
                    dict(zip(supernodes[:i], concrete)), supernode, vertex
                ):  # hook sees the (possibly reversed) enumeration order
                    continue
                extended.append(concrete + [vertex])
                if max_paths is not None and len(extended) > max_paths:
                    raise BigIndexError(
                        f"path specialization exceeded {max_paths} candidates"
                    )
        partial_paths = extended
        if not partial_paths:
            return []
    if reverse_result:
        # Realign with the caller's (un-reversed) supernode order.
        partial_paths = [list(reversed(p)) for p in partial_paths]
    return partial_paths


def _path_sort_key(
    answer: GeneralizedAnswerGraph, path: GeneralizedPath
) -> Tuple[int, float, Tuple[int, ...]]:
    """Keyword-bearing paths first, then smaller candidate products."""
    supernodes, _ = path
    has_keyword = any(s in answer.keyword_of for s in supernodes)
    product = 1.0
    for s in supernodes:
        product *= max(1, len(answer.spec_sets[s]))
    return (0 if has_keyword else 1, product, supernodes)


def p_ans_graph_gen(
    graph: Graph,
    answer: GeneralizedAnswerGraph,
    qualify: Optional[QualifyHook] = None,
    max_partials: Optional[int] = None,
) -> List[Assignment]:
    """Algorithm 4: enumerate complete assignments via path join.

    Returns the same assignment set as
    :func:`repro.core.answer_gen.ans_graph_gen` (the tests assert this),
    typically visiting far fewer intermediate partial answers.
    """
    if not answer.edges:
        # Degenerate: no edges — fall back to independent vertex choices.
        from repro.core.answer_gen import ans_graph_gen

        return ans_graph_gen(graph, answer, qualify=qualify)

    paths = answer_decomposition(answer)
    paths.sort(key=lambda p: _path_sort_key(answer, p))

    partials: List[Assignment] = [{}]
    covered: Set[int] = set()
    for path in paths:
        supernodes, _ = path
        concrete_paths = specialize_path(
            graph, answer, path, qualify=qualify, max_paths=max_partials
        )
        next_partials: List[Assignment] = []
        for partial in partials:
            for concrete in concrete_paths:
                merged = _join(partial, supernodes, concrete)
                if merged is not None:
                    next_partials.append(merged)
                    if max_partials is not None and len(next_partials) > max_partials:
                        raise BigIndexError(
                            f"path join exceeded {max_partials} partial answers"
                        )
        partials = next_partials
        covered.update(supernodes)
        if not partials:
            return []

    # Isolated answer vertices not on any path (possible in degenerate
    # inputs) are assigned last.
    remaining = [v for v in answer.vertices if v not in covered]
    for supernode in sorted(remaining, key=lambda s: len(answer.spec_sets[s])):
        next_partials = []
        for partial in partials:
            used = set(partial.values())
            for vertex in answer.spec_sets[supernode]:
                if vertex in used:
                    continue
                if qualify is not None and not qualify(partial, supernode, vertex):
                    continue
                enlarged = dict(partial)
                enlarged[supernode] = vertex
                next_partials.append(enlarged)
        partials = next_partials
        if not partials:
            return []
    return partials


def _join(
    partial: Assignment,
    supernodes: Sequence[int],
    concrete: Sequence[int],
) -> Optional[Assignment]:
    """Def. 4.3: merge a concrete path into a partial answer.

    The path qualifies iff every supernode already assigned in the partial
    answer (shared joint vertices in particular) received the *same*
    concrete vertex, and the path introduces no vertex reuse across
    distinct supernodes.
    """
    merged = dict(partial)
    used = set(partial.values())
    for supernode, vertex in zip(supernodes, concrete):
        assigned = merged.get(supernode)
        if assigned is None:
            if vertex in used:
                return None
            merged[supernode] = vertex
            used.add(vertex)
        elif assigned != vertex:
            return None
    return merged
