"""Binary v4 index container: sectioned, mmap-backed, zero-copy.

Index format v4 stores every hot payload — CSR adjacency, per-label
keyword postings, ``parent_of`` partition vectors and Bisim⁻¹ extent
tables — as fixed-width little-endian int32 arrays inside a single
container file (``index.v4.bin``).  Loading the container is ``mmap`` +
``memoryview.cast("i")``: no per-element parsing, so a cold start costs
one page-table setup instead of a JSON walk, and the OS page cache
transparently handles layers larger than RAM.

Container layout::

    offset 0   magic  b"RBIGIDX4"                      (8 bytes)
    offset 8   toc_offset  (u64 LE)                    patched on close
    offset 16  toc_length  (u64 LE)
    offset 24  section data, each section 8-byte aligned
    ...
    toc_offset JSON section table:
               {"sections": {name: {"offset", "length", "kind", "sha256"}}}

Section kinds are ``"i32"`` (packed little-endian 4-byte ints) and
``"json"`` (UTF-8 JSON, used for small cold payloads such as the label
table and vertex names).  Each section carries its own SHA-256, folded
into the index directory's ``manifest.json`` so corruption is reported
*by section name* (see :mod:`repro.core.persistence`).

The writer streams: sections are emitted chunk-by-chunk with an
incremental hash, so saving never materializes a whole section in
memory.  The reader hands out ``memoryview`` slices over the mmap —
consumers must treat them as frozen (the graph layer's
copy-on-first-mutation seam enforces this, see
:meth:`repro.graph.digraph.Graph._materialize`).

Host assumptions match the rest of the codebase: ``array("i")`` is a
4-byte int (asserted at import, like ``_pack_csr``).  Files are always
little-endian on disk; big-endian hosts fall back to a byteswapping
copy on load (correct, merely not zero-copy).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
from array import array
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Union

from repro.utils.errors import IndexCorruptedError

MAGIC = b"RBIGIDX4"
_HEADER = struct.Struct("<8sQQ")
HEADER_SIZE = _HEADER.size  # 24

#: ints per chunk when streaming an iterable into an i32 section.
_CHUNK_INTS = 1 << 16

_LITTLE_ENDIAN = sys.byteorder == "little"

if array("i").itemsize != 4:  # pragma: no cover - exotic platforms
    raise ImportError("index format v4 requires a 4-byte array('i')")


def _le_bytes(values: array) -> Union[array, bytes]:
    """``values`` as a little-endian buffer (no copy on LE hosts)."""
    if _LITTLE_ENDIAN:
        return values
    swapped = array("i", values)
    swapped.byteswap()
    return swapped.tobytes()


# ----------------------------------------------------------------------
# Zero-copy sequence views
# ----------------------------------------------------------------------
class IntVector:
    """An immutable int sequence over a loaded i32 section.

    Behaves like a read-only ``list[int]`` — indexing, slicing,
    iteration, ``len`` and *element-wise equality against any sequence*
    — while the storage stays a ``memoryview`` into the mmap (or an
    ``array('i')`` on the byteswap fallback path).  ``Layer.parent_of``
    loaded from a v4 index is one of these; heap-built indexes keep
    using plain lists, and the two compare equal when their elements do.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Sequence[int]) -> None:
        self._data = data

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return IntVector(self._data[item])
        return self._data[item]

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def __contains__(self, value: object) -> bool:
        return any(v == value for v in self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntVector):
            other = other._data
        if not isinstance(other, (list, tuple, array, memoryview, range)):
            return NotImplemented
        if len(self._data) != len(other):
            return False
        return list(self._data) == list(other)

    __hash__ = None  # type: ignore[assignment] - mutable-view semantics

    def tolist(self) -> List[int]:
        return list(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntVector({list(self._data)!r})"


class ExtentTable:
    """Bisim⁻¹ table as two i32 sections: row offsets + children.

    ``table[s]`` is supernode ``s``'s sorted child list (an
    :class:`IntVector` slice — zero copy).  Compares equal to a
    list-of-lists with the same rows, so heap-built and v4-loaded
    layers are interchangeable in tests and the differential harness.
    """

    __slots__ = ("_offsets", "_children")

    def __init__(self, offsets: Sequence[int], children: Sequence[int]) -> None:
        self._offsets = offsets
        self._children = children

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, item):
        if isinstance(item, slice):
            return [self[i] for i in range(*item.indices(len(self)))]
        index = item + len(self) if item < 0 else item
        if not 0 <= index < len(self):
            raise IndexError(f"supernode {item} out of range")
        return IntVector(
            self._children[self._offsets[index] : self._offsets[index + 1]]
        )

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ExtentTable):
            if len(self) != len(other):
                return False
            return all(
                list(mine) == list(theirs)
                for mine, theirs in zip(self, other)
            )
        if not isinstance(other, (list, tuple)):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(
            list(mine) == list(theirs) for mine, theirs in zip(self, other)
        )

    __hash__ = None  # type: ignore[assignment]

    def tolist(self) -> List[List[int]]:
        return [list(row) for row in self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExtentTable({self.tolist()!r})"


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
class SectionWriter:
    """Stream sections into a v4 container, hashing as it goes.

    Usage::

        writer = SectionWriter(path)
        writer.add_ints("base.labels", graph.labels)
        writer.add_json("base.names", names)
        sections = writer.close()   # {name: {"offset", ..., "sha256"}}

    Nothing larger than one chunk is ever held in memory; the section
    table (with per-section SHA-256) is appended at the end and the
    header's toc pointer patched last, so a truncated write is always
    detectable (the toc pointer stays zero or out of bounds).
    """

    def __init__(self, path: str) -> None:
        self._path = path
        self._file = open(path, "wb")
        self._file.write(_HEADER.pack(MAGIC, 0, 0))
        self._pos = HEADER_SIZE
        self._sections: Dict[str, Dict[str, Any]] = {}
        self._open: Any = None

    def _align(self) -> None:
        pad = (-self._pos) % 8
        if pad:
            self._file.write(b"\x00" * pad)
            self._pos += pad

    def begin(self, name: str, kind: str) -> None:
        """Open a section; follow with :meth:`write` calls + :meth:`end`."""
        if self._open is not None:
            raise ValueError("previous section still open")
        if name in self._sections:
            raise ValueError(f"duplicate section {name!r}")
        self._align()
        self._open = [name, kind, self._pos, hashlib.sha256()]

    def write(self, data) -> None:
        """Append one chunk (bytes, array, or memoryview) to the open section."""
        view = memoryview(data)
        self._file.write(view)
        self._open[3].update(view)
        self._pos += view.nbytes

    def end(self) -> None:
        name, kind, offset, hasher = self._open
        self._sections[name] = {
            "offset": offset,
            "length": self._pos - offset,
            "kind": kind,
            "sha256": hasher.hexdigest(),
        }
        self._open = None

    def add_ints(self, name: str, values: Iterable[int]) -> None:
        """Write an i32 section from any int iterable, in chunks."""
        self.begin(name, "i32")
        if isinstance(values, array) and values.typecode == "i":
            self.write(_le_bytes(values))
        elif isinstance(values, memoryview) and values.itemsize == 4:
            # Loaded views are already little-endian on the only hosts
            # that produce them (BE hosts load into arrays instead).
            self.write(values.cast("B"))
        else:
            chunk = array("i")
            append = chunk.append
            for value in values:
                append(value)
                if len(chunk) >= _CHUNK_INTS:
                    self.write(_le_bytes(chunk))
                    chunk = array("i")
                    append = chunk.append
            if chunk:
                self.write(_le_bytes(chunk))
        self.end()

    def add_json(self, name: str, obj: Any) -> None:
        """Write a small JSON section (label table, vertex names)."""
        self.begin(name, "json")
        self.write(
            json.dumps(obj, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
        )
        self.end()

    def close(self) -> Dict[str, Dict[str, Any]]:
        """Append the section table, patch the header, fsync; return toc."""
        if self._open is not None:
            raise ValueError("section still open at close")
        self._align()
        toc_offset = self._pos
        toc = json.dumps(
            {"sections": self._sections}, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        self._file.write(toc)
        self._file.seek(8)
        self._file.write(struct.pack("<QQ", toc_offset, len(toc)))
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        return self._sections


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class SectionFile:
    """A v4 container opened read-only over mmap.

    Structural damage — missing file, bad magic, out-of-bounds or
    unparsable section table, a section pointing outside the file —
    raises :class:`IndexCorruptedError` naming what broke.  Content
    damage inside a section is the manifest's job (per-section SHA-256,
    verified by :func:`repro.core.persistence._verify_manifest` before
    any section is trusted).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._file = open(path, "rb")
        except FileNotFoundError as exc:
            raise IndexCorruptedError(f"index file missing: {path}") from exc
        try:
            try:
                self._mmap = mmap.mmap(
                    self._file.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError) as exc:
                raise IndexCorruptedError(
                    f"{path}: cannot map v4 container: {exc}"
                ) from exc
            self._view = memoryview(self._mmap)
            size = len(self._view)
            if size < HEADER_SIZE:
                raise IndexCorruptedError(
                    f"{path}: truncated v4 container ({size} bytes, "
                    f"header needs {HEADER_SIZE})"
                )
            magic, toc_offset, toc_length = _HEADER.unpack(
                bytes(self._view[:HEADER_SIZE])
            )
            if magic != MAGIC:
                raise IndexCorruptedError(
                    f"{path}: not a v4 index container (bad magic {magic!r})"
                )
            if (
                toc_offset < HEADER_SIZE
                or toc_length <= 0
                or toc_offset + toc_length > size
            ):
                raise IndexCorruptedError(
                    f"{path}: v4 section table out of bounds (truncated "
                    "container or torn write)"
                )
            toc_bytes = bytes(self._view[toc_offset : toc_offset + toc_length])
            self.toc_sha256 = hashlib.sha256(toc_bytes).hexdigest()
            try:
                toc = json.loads(toc_bytes.decode("utf-8"))
                sections = toc["sections"]
            except (
                json.JSONDecodeError,
                UnicodeDecodeError,
                KeyError,
                TypeError,
            ) as exc:
                raise IndexCorruptedError(
                    f"{path}: unreadable v4 section table: {exc}"
                ) from exc
            if not isinstance(sections, dict):
                raise IndexCorruptedError(
                    f"{path}: v4 section table is not an object"
                )
            for name, entry in sections.items():
                try:
                    offset = int(entry["offset"])
                    length = int(entry["length"])
                    kind = entry["kind"]
                except (KeyError, TypeError, ValueError) as exc:
                    raise IndexCorruptedError(
                        f"{path}: invalid section table entry {name!r}: {exc}"
                    ) from exc
                if (
                    offset < HEADER_SIZE
                    or length < 0
                    or offset + length > toc_offset
                ):
                    raise IndexCorruptedError(
                        f"{path}: section {name!r} out of bounds "
                        "(truncated container)"
                    )
                if kind not in ("i32", "json"):
                    raise IndexCorruptedError(
                        f"{path}: section {name!r} has unknown kind {kind!r}"
                    )
            self.sections: Dict[str, Dict[str, Any]] = sections
        except BaseException:
            self._file.close()
            raise

    # -- access --------------------------------------------------------
    def _entry(self, name: str) -> Dict[str, Any]:
        try:
            return self.sections[name]
        except KeyError:
            raise IndexCorruptedError(
                f"{self.path}: section {name!r} missing from container"
            ) from None

    def raw(self, name: str) -> memoryview:
        """The section's bytes as a zero-copy view over the mmap."""
        entry = self._entry(name)
        offset, length = entry["offset"], entry["length"]
        return self._view[offset : offset + length]

    def ints(self, name: str) -> Sequence[int]:
        """An i32 section as an int sequence (zero copy on LE hosts)."""
        entry = self._entry(name)
        if entry["kind"] != "i32":
            raise IndexCorruptedError(
                f"{self.path}: section {name!r} is {entry['kind']!r}, "
                "expected 'i32'"
            )
        raw = self.raw(name)
        if raw.nbytes % 4:
            raise IndexCorruptedError(
                f"{self.path}: section {name!r} length {raw.nbytes} is not "
                "a multiple of 4"
            )
        if _LITTLE_ENDIAN:
            return raw.cast("i")
        values = array("i")  # pragma: no cover - big-endian fallback
        values.frombytes(bytes(raw))
        values.byteswap()
        return values

    def json(self, name: str) -> Any:
        """A json section, parsed."""
        entry = self._entry(name)
        if entry["kind"] != "json":
            raise IndexCorruptedError(
                f"{self.path}: section {name!r} is {entry['kind']!r}, "
                "expected 'json'"
            )
        try:
            return json.loads(bytes(self.raw(name)).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise IndexCorruptedError(
                f"{self.path}: unreadable json section {name!r}: {exc}"
            ) from exc

    def section_digests(self) -> Dict[str, str]:
        """Freshly computed SHA-256 of every section's bytes.

        Used by manifest (re-)blessing and verification; hashes the mmap
        directly, chunked so huge sections never materialize.
        """
        digests: Dict[str, str] = {}
        for name in sorted(self.sections):
            raw = self.raw(name)
            hasher = hashlib.sha256()
            for start in range(0, raw.nbytes, 1 << 20):
                hasher.update(raw[start : start + (1 << 20)])
            digests[name] = hasher.hexdigest()
        return digests

    def close(self) -> None:
        """Release the mapping if no views are live (best effort).

        Loaded graphs keep views into the mmap, which keeps the mapping
        alive via the buffer protocol; close() is for verification-only
        opens where everything was consumed eagerly.
        """
        try:
            self._view.release()
            self._mmap.close()
        except BufferError:  # pragma: no cover - views still exported
            pass
        self._file.close()
