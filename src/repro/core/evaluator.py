"""Algorithm 2: hierarchical query processing (``eval_Ont``).

The evaluator runs the five steps of Fig. 5 / Algo. 2:

1. **Query generalization** — pick the optimal layer ``m`` via the query
   cost model (Formula 4, Def. 4.1) and generalize the keywords to it.
2. **Evaluation on the summary graph** — run the plugged algorithm ``f``
   on ``G^m`` with ``Gen^m(Q)`` (the *explore* phase of the Exp-1 time
   breakdown).
3. **Specialization and pruning** — walk each generalized answer's vertex
   sets down the hierarchy one layer at a time; keyword nodes are pruned
   by Prop. 4.1 (a specialization survives only if its label generalizes
   to the keyword's generalization at that layer), implementing the
   early-specialization-of-keyword-nodes optimization of Sec. 4.3.1
   (a generalized answer dies as soon as any keyword node's candidate set
   empties).  Non-keyword vertices specialize without pruning — they are
   kept only for connectivity (Sec. 5.1).
4. **Answer generation** — turn candidate sets into concrete answers:

   * ``"root-verify"`` (default for rooted-tree semantics): the candidate
     roots are the specializations of each generalized answer's root;
     every candidate root is verified exactly on the data graph with one
     bounded BFS (``best_answer_for_root``).  Complete because
     path-preservation guarantees every true root's image is a summary
     answer root (Lemma 4.1 / Prop. 5.1).
   * ``"vertex"``: Algorithm 3 assignment enumeration (Def. 4.2
     qualification + specialization order), each assignment verified by
     the algorithm.
   * ``"path"``: Algorithm 4 path-based enumeration (Def. 4.3).

5. **Early termination after the first k answers** (Sec. 4.3.4) —
   generalized answers are processed in ascending summary score; since
   summary distances lower-bound data-graph distances (Prop. 5.2), the
   evaluation stops once k answers are verified and the k-th best score
   is at most the next unprocessed summary score.

Resilience
----------
Every step accepts an optional :class:`~repro.utils.budget.Budget`; the
layer descent charges it per summary answer, per specialization step and
per verified candidate.  On exhaustion :meth:`evaluate` raises
:class:`~repro.utils.errors.BudgetExceeded` carrying the *proven prefix*
of the answer ranking found so far, and :meth:`evaluate_resilient`
degrades instead of failing: it returns a :class:`DegradedResult`
envelope (optionally after retrying the remaining budget on a coarser,
cheaper layer).  See ``docs/ROBUSTNESS.md`` for the exact guarantees.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.answer_gen import (
    GeneralizedAnswerGraph,
    ans_graph_gen,
)
from repro.core.index import BiGIndex
from repro.core.path_answer_gen import p_ans_graph_gen
from repro.core.query_cost import QueryCostModel
from repro.core.querycache import LRUCache, budget_class
from repro.obs.runtime import OBS, charge_expansions
from repro.search.base import (
    Answer,
    GraphSearcher,
    KeywordQuery,
    KeywordSearchAlgorithm,
    top_k,
)
from repro.utils.budget import Budget
from repro.utils.errors import BudgetExceeded, QueryError
from repro.utils.timers import TimeBreakdown

#: Answer-generation strategies.
GENERATION_STRATEGIES = ("root-verify", "vertex", "path")


@dataclass
class EvalResult:
    """Outcome of one ``eval_Ont`` run with its instrumentation."""

    answers: List[Answer]
    layer: int
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    #: |A^m|: generalized answers found on the summary graph.
    num_generalized: int = 0
    #: candidates examined during generation (roots or assignments).
    num_candidates: int = 0
    #: candidates that survived exact verification.
    num_verified: int = 0

    #: Complete results are never degraded; lets callers branch on
    #: ``result.degraded`` without isinstance checks.
    degraded = False

    @property
    def total_seconds(self) -> float:
        """Total measured query time across phases."""
        return self.breakdown.total


@dataclass
class DegradedAttempt:
    """Instrumentation for one budget-limited evaluation attempt."""

    layer: int
    #: Which budget limit tripped (``"deadline"``, ``"expansions"`` or
    #: ``"cancelled"``).
    reason: str
    #: Node expansions charged when the attempt was interrupted.
    expansions: int
    num_generalized: int = 0
    num_candidates: int = 0
    #: Answers proven to be a ranking prefix (score < the attempt's bound).
    proven: int = 0
    #: Exact answers found but not provably in the prefix.
    unproven: int = 0


@dataclass
class DegradationStats:
    """How far a degraded evaluation got before its budget ran out."""

    #: Node expansions charged to the parent budget across all attempts.
    expansions_consumed: int
    #: Expansions still unspent, or ``None`` without an expansion cap.
    expansions_remaining: Optional[int]
    #: Seconds left before the deadline, or ``None`` without one.
    time_remaining_seconds: Optional[float]
    #: Layers tried, in attempt order.
    layers_attempted: List[int] = field(default_factory=list)

    def describe(self) -> str:
        parts = [f"spent {self.expansions_consumed} expansion(s)"]
        if self.expansions_remaining is not None:
            parts.append(f"{self.expansions_remaining} remaining")
        if self.time_remaining_seconds is not None:
            parts.append(f"{self.time_remaining_seconds:.3f}s left")
        layers = ", ".join(str(m) for m in self.layers_attempted)
        if layers:
            parts.append(f"layers tried: {layers}")
        return ", ".join(parts)


@dataclass
class DegradedResult:
    """Partial — but sound — outcome of a budget-exhausted evaluation.

    ``answers`` is a *ranking prefix*: every answer is exact, and by the
    per-algorithm frontier bounds (see ``docs/ROBUSTNESS.md``) no true
    answer scoring strictly below ``lower_bound`` is missing.  Sorting
    the oracle's full ranking and truncating where scores reach
    ``lower_bound`` yields the same score sequence.

    ``unranked`` holds additional exact answers whose scores reach
    ``lower_bound`` — real answers, but with unknown rank; they are kept
    separate so callers cannot mistake them for part of the prefix.
    """

    answers: List[Answer]
    layer: int
    reason: str
    lower_bound: float
    unranked: List[Answer] = field(default_factory=list)
    attempts: List[DegradedAttempt] = field(default_factory=list)
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    #: Budget consumption at the moment the evaluation gave up.
    stats: Optional[DegradationStats] = None

    degraded = True

    @property
    def num_generalized(self) -> int:
        return sum(a.num_generalized for a in self.attempts)

    @property
    def num_candidates(self) -> int:
        return sum(a.num_candidates for a in self.attempts)

    @property
    def total_seconds(self) -> float:
        return self.breakdown.total

    def summary(self) -> str:
        """One-line operator-facing description of the degradation."""
        parts = [
            f"degraded ({self.reason}): {len(self.answers)} proven "
            f"answer(s), complete below score {self.lower_bound:g}"
        ]
        if self.unranked:
            parts.append(f"{len(self.unranked)} additional unranked")
        trail = ", ".join(
            f"layer {a.layer} ({a.expansions} expansions, {a.reason})"
            for a in self.attempts
        )
        if trail:
            parts.append(f"attempts: {trail}")
        if self.stats is not None:
            parts.append(self.stats.describe())
        return "; ".join(parts)


class HierarchicalEvaluator:
    """``eval_Ont`` for one (index, algorithm) pair.

    Per-layer searchers (the algorithm's own indexes over summary graphs)
    are cached across queries, mirroring the paper's setup where the
    BiG-index layers and the plugged algorithm's indexes are built offline.

    Parameters
    ----------
    index:
        The BiG-index hierarchy.
    algorithm:
        The plugged keyword search algorithm ``f``.
    beta:
        Query cost model weight (Formula 4).
    generation:
        Answer-generation strategy (see module docstring).
    use_spec_order:
        Toggle for the Sec. 4.3.2 specialization-order optimization
        (``"vertex"`` strategy only; the Exp-5 ablation flips it).
    cache_size:
        Capacity of the per-evaluator query-result LRU (``0`` disables
        caching).  Cached and uncached evaluation are byte-identical —
        entries are keyed by the canonicalized query plus every knob that
        affects the ranking and dropped whenever the index's ``epoch``
        moves; budgeted executions bypass the cache entirely (see
        :func:`repro.core.querycache.budget_class`).
    """

    def __init__(
        self,
        index: BiGIndex,
        algorithm: KeywordSearchAlgorithm,
        beta: float = 0.5,
        generation: str = "root-verify",
        use_spec_order: bool = True,
        verify_mode: str = "exact",
        allow_layer_zero: bool = False,
        cache_size: int = 128,
    ) -> None:
        if generation not in GENERATION_STRATEGIES:
            raise QueryError(f"unknown generation strategy: {generation!r}")
        if verify_mode not in ("exact", "trust"):
            raise QueryError(f"unknown verify mode: {verify_mode!r}")
        self.index = index
        self.algorithm = algorithm
        self.cost_model = QueryCostModel(
            index, beta=beta, allow_layer_zero=allow_layer_zero
        )
        self.generation = generation
        self.use_spec_order = use_spec_order
        #: "exact" re-checks every generated assignment with the
        #: algorithm's own verifier; "trust" accepts assignments that pass
        #: Def. 4.2/4.3 qualification and scores them with the summary
        #: answer's score — the paper's pipeline, justified by its
        #: path-preservation argument (Prop. 5.3 claims score equality).
        self.verify_mode = verify_mode
        self._searchers: Dict[int, GraphSearcher] = {}
        self._result_cache: Optional[LRUCache] = (
            LRUCache(cache_size, kind="result") if cache_size else None
        )
        #: index epoch the caches were filled under; ``None`` = never synced.
        self._epoch: Optional[Tuple[int, int]] = None
        # Orders epoch sync against searcher binds and result-cache fills
        # under concurrent readers (the serve handlers share one evaluator
        # per snapshot): without it a reader could re-install a searcher
        # or cached result computed under an epoch another thread just
        # invalidated.  Reentrant: searcher_for_layer is reached from
        # locked sections of evaluate.
        self._cache_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Maintenance-aware caching
    # ------------------------------------------------------------------
    def _sync_caches(self) -> None:
        """Drop searchers and cached results if the index has moved.

        Per-layer searchers hold algorithm indexes over the summary
        graphs; maintenance replaces those graphs wholesale, so a stale
        searcher would silently answer against the pre-update index.
        Checking the epoch on every entry point keeps long-lived
        evaluators correct across :meth:`BiGIndex.insert_edge` & co.
        """
        with self._cache_lock:
            epoch = self.index.epoch
            if self._epoch != epoch:
                if self._epoch is not None and OBS.enabled:
                    OBS.metrics.inc("cache.invalidations")
                self._epoch = epoch
                self._searchers.clear()
                if self._result_cache is not None:
                    self._result_cache.clear()

    def _cache_key(
        self,
        query: KeywordQuery,
        layer: Optional[int],
        k: Optional[int],
        max_generalized: Optional[int],
        bclass: str,
    ) -> Tuple:
        # Keywords are canonicalized sorted: answer sets are keyword-order
        # independent (a set semantics the exactness tests pin down).
        return (
            tuple(sorted(query.keywords)),
            layer,
            k,
            max_generalized,
            self.generation,
            bclass,
        )

    @staticmethod
    def _copy_result(result: EvalResult) -> EvalResult:
        """A caller-mutable copy of a cached result (answers are frozen)."""
        return EvalResult(
            answers=list(result.answers),
            layer=result.layer,
            breakdown=TimeBreakdown(),
            num_generalized=result.num_generalized,
            num_candidates=result.num_candidates,
            num_verified=result.num_verified,
        )

    # ------------------------------------------------------------------
    def _layer_cost_attrs(self, query: KeywordQuery) -> Dict[str, object]:
        """Per-layer Formula-4 costs as span attributes (--explain only).

        Shows *why* the cost model picked its layer; colliding layers
        (``|Gen^m(Q)| < |Q|``) are marked ineligible instead of costed.
        """
        try:
            costs = self.cost_model.all_layer_costs(query)
        except QueryError:  # pragma: no cover - defensive
            return {}
        attrs: Dict[str, object] = {}
        for entry in costs:
            key = f"cost.G{entry.layer}"
            attrs[key] = round(entry.cost, 4) if entry.distinct else "collides"
        return attrs

    def searcher_for_layer(self, m: int) -> GraphSearcher:
        """The algorithm bound to ``G^m`` (cached across queries).

        The lock is held across bind-and-install so a concurrent epoch
        invalidation cannot interleave between them — a searcher present
        in the dict is always one bound under the current ``_epoch``.
        Binds serialize, but each (layer, epoch) binds at most once.
        """
        with self._cache_lock:
            self._sync_caches()
            searcher = self._searchers.get(m)
            if searcher is None:
                searcher = self.algorithm.bind(self.index.layer_graph(m))
                self._searchers[m] = searcher
            return searcher

    def evaluate(
        self,
        query: KeywordQuery,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> EvalResult:
        """Run ``eval_Ont(G, Q, f)``, serving repeats from the result cache.

        Unbudgeted evaluations are memoized per canonical (query, layer,
        k, max_generalized, generation) key; a hit replays the stored
        ranking byte-for-byte (the ``verify`` cache drill enforces the
        identity).  Budgeted runs always execute — see
        :func:`repro.core.querycache.budget_class` for why they are
        uncacheable.  See :meth:`_evaluate_uncached` for parameters.
        """
        if k is None:
            k = getattr(self.algorithm, "k", None)
        bclass = budget_class(budget)
        key: Optional[Tuple] = None
        with self._cache_lock:
            self._sync_caches()
            epoch = self._epoch
            if self._result_cache is not None and bclass is not None:
                key = self._cache_key(query, layer, k, max_generalized, bclass)
                hit = self._result_cache.get(key)
                if hit is not None:
                    if OBS.enabled:
                        with OBS.tracer.span("result-cache") as span:
                            span.annotate(
                                **{
                                    "query.warm": True,
                                    "answers": len(hit.answers),
                                }
                            )
                    return self._copy_result(hit)
        result = self._evaluate_uncached(
            query,
            layer=layer,
            k=k,
            max_generalized=max_generalized,
            budget=budget,
        )
        if key is not None:
            with self._cache_lock:
                # Guarded fill: a result computed under a superseded
                # epoch must not land in the fresh cache (epoch
                # components are monotone, so equality proves no
                # movement since the lookup).
                self._sync_caches()
                if self._epoch == epoch:
                    self._result_cache.put(key, self._copy_result(result))
        return result

    def _evaluate_uncached(
        self,
        query: KeywordQuery,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> EvalResult:
        """Run ``eval_Ont(G, Q, f)``.

        Parameters
        ----------
        query:
            The keyword query on the *data graph's* vocabulary.
        layer:
            Force a specific layer ``m`` (Exp-4/6 sweep layers); ``None``
            uses the cost model's optimal layer.
        k:
            Top-k cutoff with early termination; ``None`` uses the
            algorithm's own ``k`` if any, returning all answers otherwise.
        max_generalized:
            Optional cap on the number of generalized answers consumed
            from the summary stream once the top-k is already populated
            or the stream keeps failing to specialize.  Implements the
            practical reading of Sec. 4.3.4 ("specialize one a^m at a
            time ... terminate when the number of answer graphs is k")
            for workloads where semantic distortion makes parts of the
            stream unproductive; ``None`` (default, used by the exactness
            tests) never truncates.
        budget:
            Optional execution budget charged throughout exploration,
            specialization and generation.  On exhaustion the raised
            :class:`~repro.utils.errors.BudgetExceeded` carries the
            proven prefix of the data-graph ranking found so far
            (``partial``, complete below ``lower_bound``) plus a
            ``partial_result``/``unproven`` pair for
            :meth:`evaluate_resilient`.
        """
        breakdown = TimeBreakdown()
        if k is None:
            k = getattr(self.algorithm, "k", None)

        with breakdown.phase("layer-selection"), OBS.tracer.span(
            "layer-selection"
        ) as selection_span:
            forced = layer is not None
            if layer is None:
                layer = self.cost_model.optimal_layer(query)
            elif layer > 0 and not self.index.query_distinct_at(query, layer):
                raise QueryError(
                    f"keywords collide at layer {layer}; Def. 4.1 requires "
                    "|Gen^m(Q)| = |Q|"
                )
            if OBS.enabled:
                selection_span.annotate(
                    layer=layer, forced=forced, **self._layer_cost_attrs(query)
                )

        if layer == 0:
            # Degenerate case: evaluate directly on the data graph.  The
            # searcher attaches its own (already data-level) prefix; it is
            # re-truncated to this call's k before propagating.
            try:
                with breakdown.phase("explore"), OBS.tracer.span(
                    "explore", layer=0
                ):
                    answers = self.searcher_for_layer(0).search(
                        query, budget=budget
                    )
            except BudgetExceeded as exc:
                proven = top_k(exc.partial, k)
                exc.partial = proven
                exc.unproven = []
                exc.partial_result = EvalResult(
                    answers=proven,
                    layer=0,
                    breakdown=breakdown,
                    num_generalized=len(proven),
                    num_candidates=len(proven),
                    num_verified=len(proven),
                )
                raise
            return EvalResult(
                answers=top_k(answers, k),
                layer=0,
                breakdown=breakdown,
                num_generalized=len(answers),
                num_candidates=len(answers),
                num_verified=len(answers),
            )

        with breakdown.phase("translate"), OBS.tracer.span(
            "translate", layer=layer
        ) as translate_span:
            generalized_keywords = self.index.generalize_query(query, layer)
            keyword_by_generalized = dict(
                zip(generalized_keywords, query.keywords)
            )
            generalized_query = KeywordQuery(generalized_keywords)
            if OBS.enabled:
                translate_span.annotate(
                    generalized=",".join(generalized_keywords)
                )
                OBS.metrics.inc("eval.queries_generalized")

        # Stream summary answers lazily: specialization is interleaved
        # with enumeration so top-k runs stop as soon as the verified
        # answers dominate everything unexplored (Sec. 4.3.4 and
        # boost-dkws's interleaved decomposition, Sec. 5.2).  Streams are
        # not necessarily score-sorted; searchers that emit out of order
        # expose a running ``stream_lower_bound`` instead.
        searcher = self.searcher_for_layer(layer)
        with breakdown.phase("explore"), OBS.tracer.span(
            "explore", layer=layer
        ):
            summary_stream = searcher.iter_search(
                generalized_query, budget=budget
            )

        result = EvalResult(answers=[], layer=layer, breakdown=breakdown)
        verified: Dict[Tuple, Answer] = {}
        seen_roots: Set[int] = set()
        # The summary answer being specialized/generated when a budget
        # trips; its score bounds everything not yet derived from it (and,
        # because streams are consumed in ascending score order, everything
        # still unread from the stream).
        current_summary: Optional[Answer] = None

        try:
            while True:
                current_summary = None
                with breakdown.phase("explore"), OBS.tracer.span(
                    "explore", layer=layer
                ):
                    summary_answer = next(summary_stream, None)
                if summary_answer is None:
                    break
                current_summary = summary_answer
                charge_expansions(budget, 1)
                result.num_generalized += 1
                if OBS.enabled:
                    OBS.metrics.inc("eval.summary_answers")
                if (
                    max_generalized is not None
                    and result.num_generalized > max_generalized
                ):
                    break
                if k is not None and len(verified) >= k:
                    kth = sorted(a.score for a in verified.values())[k - 1]
                    stream_bound = getattr(
                        searcher, "stream_lower_bound", summary_answer.score
                    )
                    if kth <= stream_bound:
                        break  # Sec. 4.3.4: the rest cannot beat the top-k.
                    if kth <= summary_answer.score:
                        continue  # this answer cannot improve; keep streaming
                root_verify = (
                    self.generation == "root-verify"
                    and summary_answer.root is not None
                    and hasattr(self.algorithm, "best_answer_for_root")
                )
                with breakdown.phase("specialize"), OBS.tracer.span(
                    "specialize", layer=layer
                ):
                    spec = self._specialize_answer(
                        summary_answer,
                        layer,
                        query,
                        keyword_by_generalized,
                        root_only=root_verify,
                        budget=budget,
                    )
                if spec is None:
                    continue
                with breakdown.phase("generate"), OBS.tracer.span(
                    "generate", strategy=self.generation
                ):
                    self._generate(
                        summary_answer,
                        spec,
                        query,
                        verified,
                        seen_roots,
                        result,
                        k,
                        budget,
                    )
        except BudgetExceeded as exc:
            self._attach_partial(
                exc, searcher, verified, result, current_summary, k
            )
            raise

        result.answers = top_k(list(verified.values()), k)
        result.num_verified = len(verified)
        if OBS.enabled:
            OBS.metrics.inc("eval.candidates", result.num_candidates)
            OBS.metrics.inc("eval.verified", result.num_verified)
        return result

    def _attach_partial(
        self,
        exc: BudgetExceeded,
        searcher: GraphSearcher,
        verified: Dict[Tuple, Answer],
        result: EvalResult,
        current_summary: Optional[Answer],
        k: Optional[int],
    ) -> None:
        """Split the verified answers into a proven prefix and a remainder.

        The bound below which the verified set is provably complete is the
        minimum over every source of undiscovered answers:

        * ``exc.lower_bound`` / ``exc.partial`` scores — summary-level
          bounds from an interrupted summary search; by Prop. 5.2 summary
          scores lower-bound the scores of the data answers specializing
          from them, so they bound everything never emitted by the stream.
        * the searcher's running ``stream_lower_bound`` (out-of-order
          streams) or ``current_summary.score`` (in-order streams) —
          bounds the unread rest of a stream interrupted by the
          *evaluator's* own charges.
        * ``current_summary.score`` — bounds candidates of the in-flight
          summary answer not yet verified (Prop. 5.2 again).

        Prop. 5.1 (completeness: every true root's image is a summary
        answer root) guarantees these are the *only* sources, so every
        true data answer scoring strictly below the bound is already in
        ``verified``.
        """
        bound_candidates: List[float] = []
        if exc.lower_bound is not None:
            bound_candidates.append(float(exc.lower_bound))
        else:
            stream_bound = getattr(searcher, "stream_lower_bound", None)
            if stream_bound is not None:
                bound_candidates.append(float(stream_bound))
        if exc.partial:
            bound_candidates.append(min(a.score for a in exc.partial))
        if current_summary is not None:
            bound_candidates.append(current_summary.score)
        bound = min(bound_candidates) if bound_candidates else 0.0

        proven = top_k(
            [a for a in verified.values() if a.score < bound], k
        )
        result.answers = proven
        result.num_verified = len(verified)
        exc.partial = proven
        exc.lower_bound = bound
        exc.unproven = top_k(
            [a for a in verified.values() if a.score >= bound], None
        )
        exc.partial_result = result

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------
    def evaluate_resilient(
        self,
        query: KeywordQuery,
        budget: Optional[Budget] = None,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        retry_coarser: bool = True,
    ):
        """``evaluate`` that degrades instead of failing on exhaustion.

        With no budget this is exactly :meth:`evaluate`.  With one, a
        budget-exceeded evaluation is caught and turned into a
        :class:`DegradedResult` whose ``answers`` are the proven ranking
        prefix.  When ``retry_coarser`` is set and the budget still has
        headroom, coarser layers (cheaper summary graphs, Formula 4's
        motivation) are retried with half the remaining budget each, and
        the attempt with the *largest* proven bound wins — every attempt
        prefixes the same true ranking, so the largest bound is the
        longest prefix.  The last planned attempt runs on the whole
        remainder rather than half, so budget is never left unspent.
        """
        self._sync_caches()
        if budget is None:
            return self.evaluate(
                query, layer=layer, k=k, max_generalized=max_generalized
            )

        first_layer = (
            layer if layer is not None else self.cost_model.optimal_layer(query)
        )
        plan = [first_layer]
        if retry_coarser:
            for m in range(first_layer + 1, self.index.num_layers + 1):
                if self.index.query_distinct_at(query, m):
                    plan.append(m)

        breakdown = TimeBreakdown()
        attempts: List[DegradedAttempt] = []
        #: winning attempt so far: (bound, proven count, layer, exception).
        best: Optional[Tuple[float, int, int, BudgetExceeded]] = None
        final_reason = "expansions"
        for position, m in enumerate(plan):
            last = position == len(plan) - 1
            attempt_budget = budget if last else budget.sub(0.5)
            retry = position > 0
            if retry and OBS.enabled:
                OBS.metrics.inc("eval.degradation_retries")
            with OBS.tracer.span(
                "attempt", layer=m, retry=retry
            ) as attempt_span:
                try:
                    result = self.evaluate(
                        query,
                        layer=m,
                        k=k,
                        max_generalized=max_generalized,
                        budget=attempt_budget,
                    )
                except BudgetExceeded as exc:
                    partial = getattr(exc, "partial_result", None)
                    if partial is not None:
                        breakdown.merge(partial.breakdown)
                    attempts.append(
                        DegradedAttempt(
                            layer=m,
                            reason=exc.reason,
                            expansions=exc.expansions,
                            num_generalized=(
                                partial.num_generalized if partial else 0
                            ),
                            num_candidates=(
                                partial.num_candidates if partial else 0
                            ),
                            proven=len(exc.partial),
                            unproven=len(getattr(exc, "unproven", [])),
                        )
                    )
                    if OBS.enabled:
                        attempt_span.annotate(
                            outcome=exc.reason,
                            expansions=exc.expansions,
                            proven=len(exc.partial),
                        )
                    final_reason = exc.reason
                    bound = (
                        float(exc.lower_bound)
                        if exc.lower_bound is not None
                        else 0.0
                    )
                    candidate = (bound, len(exc.partial), m, exc)
                    if best is None or candidate[:2] > best[:2]:
                        best = candidate
                    if budget.exhausted_reason() is not None:
                        break  # the *parent* budget is spent; stop retrying
                    continue
                if OBS.enabled:
                    attempt_span.annotate(
                        outcome="complete", answers=len(result.answers)
                    )
                    self._record_budget_gauges(budget)
                breakdown.merge(result.breakdown)
                result.breakdown = breakdown
                return result

        if best is None:  # pragma: no cover - plan is never empty
            raise QueryError("no evaluation attempt was made")
        if OBS.enabled:
            self._record_budget_gauges(budget)
        bound, _, best_layer, exc = best
        rem_exp = budget.remaining_expansions()
        rem_time = budget.remaining_time()
        return DegradedResult(
            answers=list(exc.partial),
            layer=best_layer,
            reason=final_reason,
            lower_bound=bound,
            unranked=list(getattr(exc, "unproven", [])),
            attempts=attempts,
            breakdown=breakdown,
            stats=DegradationStats(
                expansions_consumed=budget.expansions,
                expansions_remaining=rem_exp,
                time_remaining_seconds=rem_time,
                layers_attempted=[a.layer for a in attempts],
            ),
        )

    # ------------------------------------------------------------------
    # Batched serving
    # ------------------------------------------------------------------
    def evaluate_many(
        self,
        queries: Sequence[KeywordQuery],
        *,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        budget_factory: Optional[Callable[[], Optional[Budget]]] = None,
        workers: Optional[int] = None,
        resilient: bool = True,
        return_exceptions: bool = False,
    ) -> List[object]:
        """Evaluate a workload, amortizing warm-up across its queries.

        Per-layer searchers, CSR views, keyword postings and the index's
        ``Gen``/``Spec`` memos are built once up front; each query then
        runs against warm state (and repeated queries hit the result
        cache).  Results come back in input order.

        Parameters
        ----------
        queries:
            The workload, evaluated in order (results align by index).
        layer / k / max_generalized:
            Forwarded to every evaluation.
        budget_factory:
            Called once per query for a fresh budget (budgets are
            stateful ledgers and must never be shared across queries);
            ``None`` runs unbudgeted.
        workers:
            Run queries on a thread pool of this size; ``None``/``1`` is
            serial.  Only sound with tracing disabled — the OBS tracer
            assumes one span stack (the CLI enforces this for
            ``--batch --workers``).
        resilient:
            Use :meth:`evaluate_resilient` (budget exhaustion degrades
            instead of raising); otherwise :meth:`evaluate`.
        return_exceptions:
            When set, a query raising :class:`QueryError` contributes the
            exception object instead of aborting the whole batch.
        """
        self._sync_caches()
        if layer is not None:
            warm_layers = [layer]
        else:
            start = 0 if self.cost_model.allow_layer_zero else 1
            warm_layers = list(range(start, self.index.num_layers + 1))
        for m in warm_layers:
            self.searcher_for_layer(m)
            self.index.layer_graph(m).csr()
        # Root verification always lands on the data graph.
        self.index.base_graph.csr()

        def run(query: KeywordQuery) -> object:
            budget = budget_factory() if budget_factory is not None else None
            try:
                if resilient:
                    return self.evaluate_resilient(
                        query,
                        budget=budget,
                        layer=layer,
                        k=k,
                        max_generalized=max_generalized,
                    )
                return self.evaluate(
                    query,
                    layer=layer,
                    k=k,
                    max_generalized=max_generalized,
                    budget=budget,
                )
            except QueryError as exc:
                if return_exceptions:
                    return exc
                raise

        if workers is None or workers <= 1:
            return [run(query) for query in queries]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run, queries))

    @staticmethod
    def _record_budget_gauges(budget: Budget) -> None:
        OBS.metrics.gauge("budget.expansions_consumed", budget.expansions)
        rem = budget.remaining_expansions()
        if rem is not None:
            OBS.metrics.gauge("budget.expansions_remaining", rem)
        rem_time = budget.remaining_time()
        if rem_time is not None:
            OBS.metrics.gauge("budget.time_remaining_seconds", rem_time)

    # ------------------------------------------------------------------
    # Step 3: specialization with pruning
    # ------------------------------------------------------------------
    def _specialize_answer(
        self,
        summary_answer: Answer,
        layer: int,
        query: KeywordQuery,
        keyword_by_generalized: Mapping[str, str],
        root_only: bool = False,
        budget: Optional[Budget] = None,
    ) -> Optional[GeneralizedAnswerGraph]:
        """Walk one generalized answer's vertex sets down to layer 0.

        With ``root_only`` (the root-verify strategy) only the answer root
        is specialized, without pruning: root verification re-derives the
        keyword matches exactly on the data graph, so the summary answer's
        particular keyword supernodes — which a distinct-root search picks
        as the *nearest* generalized matches — must not constrain it.

        Otherwise every answer vertex specializes, keyword nodes pruned by
        Prop. 4.1, and the method returns ``None`` when early keyword
        specialization (Sec. 4.3.1) kills the answer (some keyword node
        has no label-qualified specialization).
        """
        # supernode -> keyword for the isKey vertices of this answer.
        keyword_of: Dict[int, str] = {}
        for generalized_kw, supernode in summary_answer.keyword_nodes:
            keyword_of[supernode] = keyword_by_generalized.get(
                generalized_kw, generalized_kw
            )

        if root_only:
            root = summary_answer.root
            assert root is not None
            charge_expansions(budget, 1)
            spec_set = sorted(self.index.spec_to_base(root, layer))
            if OBS.enabled:
                OBS.metrics.inc("spec.lookups")
                OBS.metrics.observe(
                    "spec.candidates_per_lookup", len(spec_set)
                )
            return GeneralizedAnswerGraph(
                vertices=(root,),
                edges=(),
                spec_sets={root: spec_set},
                keyword_of={},
            )

        spec_sets: Dict[int, List[int]] = {}
        for supernode in summary_answer.vertices:
            keyword = keyword_of.get(supernode)
            members = [supernode]
            for level in range(layer, 0, -1):
                charge_expansions(budget, len(members))
                extent = self.index.layers[level - 1].extent
                members = [child for s in members for child in extent[s]]
                if keyword is not None:
                    # Prop. 4.1: keep v only if its label at layer level-1
                    # equals the keyword's generalization to that layer.
                    expected = self.index.generalize_keyword(keyword, level - 1)
                    level_graph = self.index.layer_graph(level - 1)
                    members = [
                        v for v in members if level_graph.label(v) == expected
                    ]
                    if not members:
                        return None  # early keyword specialization prune
            spec_sets[supernode] = sorted(members)
            if OBS.enabled:
                OBS.metrics.inc("spec.lookups")
                OBS.metrics.observe(
                    "spec.candidates_per_lookup", len(members)
                )
        return GeneralizedAnswerGraph(
            vertices=summary_answer.vertices,
            edges=summary_answer.edges,
            spec_sets=spec_sets,
            keyword_of=keyword_of,
        )

    # ------------------------------------------------------------------
    # Step 5: answer generation
    # ------------------------------------------------------------------
    def _generate(
        self,
        summary_answer: Answer,
        spec: GeneralizedAnswerGraph,
        query: KeywordQuery,
        verified: Dict[Tuple, Answer],
        seen_roots: Set[int],
        result: EvalResult,
        k: Optional[int],
        budget: Optional[Budget] = None,
    ) -> None:
        root_capable = hasattr(self.algorithm, "best_answer_for_root")
        if (
            self.generation == "root-verify"
            and summary_answer.root is not None
            and root_capable
        ):
            self._generate_by_root(
                summary_answer, spec, query, verified, seen_roots, result, k,
                budget,
            )
        else:
            self._generate_by_assignment(
                summary_answer, spec, query, verified, result, budget
            )

    def _generate_by_root(
        self,
        summary_answer: Answer,
        spec: GeneralizedAnswerGraph,
        query: KeywordQuery,
        verified: Dict[Tuple, Answer],
        seen_roots: Set[int],
        result: EvalResult,
        k: Optional[int],
        budget: Optional[Budget] = None,
    ) -> None:
        """Verify every specialized candidate root with one bounded BFS.

        The summary answer's score lower-bounds the exact score of every
        root specialized from it (Prop. 5.2), so once the top-k verified
        scores all fall at or below it, the rest of this answer's
        candidates cannot improve the result (Sec. 4.3.4).
        """
        candidate_roots = spec.spec_sets[summary_answer.root]
        best_for_root = self.algorithm.best_answer_for_root  # type: ignore[attr-defined]
        for root in candidate_roots:
            if root in seen_roots:
                continue
            if k is not None and len(verified) >= k:
                kth = sorted(a.score for a in verified.values())[k - 1]
                if kth <= summary_answer.score:
                    return
            charge_expansions(budget, 1)
            seen_roots.add(root)
            result.num_candidates += 1
            answer = best_for_root(self.index.base_graph, root, query)
            if answer is not None:
                verified[answer.signature()] = answer

    def _generate_by_assignment(
        self,
        summary_answer: Answer,
        spec: GeneralizedAnswerGraph,
        query: KeywordQuery,
        verified: Dict[Tuple, Answer],
        result: EvalResult,
        budget: Optional[Budget] = None,
    ) -> None:
        """Algorithm 3 / 4 enumeration, each assignment exactly verified."""

        def qualify(partial: Mapping[int, int], supernode: int, vertex: int) -> bool:
            keyword = spec.keyword_of.get(supernode)
            if keyword is None:
                return True
            partial_keywords = {
                spec.keyword_of[s]: v
                for s, v in partial.items()
                if s in spec.keyword_of
            }
            return self.algorithm.enlarge_ok(
                self.index.base_graph, partial_keywords, keyword, vertex, query
            )

        if self.generation == "path":
            assignments = p_ans_graph_gen(
                self.index.base_graph, spec, qualify=qualify
            )
        else:
            assignments = ans_graph_gen(
                self.index.base_graph,
                spec,
                qualify=qualify,
                use_spec_order=self.use_spec_order,
            )
        for assignment in assignments:
            charge_expansions(budget, 1)
            result.num_candidates += 1
            keyword_nodes = {
                keyword: assignment[supernode]
                for supernode, keyword in spec.keyword_of.items()
            }
            root = (
                assignment.get(summary_answer.root)
                if summary_answer.root is not None
                else None
            )
            if self.verify_mode == "trust":
                answer = Answer.make(
                    keyword_nodes,
                    score=summary_answer.score,
                    root=root,
                    vertices=assignment.values(),
                    edges=(
                        (assignment[u], assignment[v])
                        for u, v in spec.edges
                    ),
                )
            else:
                answer = self.algorithm.verify(
                    self.index.base_graph, keyword_nodes, query, root=root
                )
            if answer is not None:
                existing = verified.get(answer.signature())
                if existing is None or answer.score < existing.score:
                    verified[answer.signature()] = answer


def eval_direct(
    graph,
    algorithm: KeywordSearchAlgorithm,
    query: KeywordQuery,
    searcher: Optional[GraphSearcher] = None,
) -> Tuple[List[Answer], TimeBreakdown]:
    """Plain ``eval(G, Q, f)`` with the same timing instrumentation.

    The benchmark harness compares this against
    :meth:`HierarchicalEvaluator.evaluate` for the Exp-1/2 figures.  Pass a
    pre-bound ``searcher`` to keep the algorithm's offline index build out
    of the measured query time (as the paper does).
    """
    breakdown = TimeBreakdown()
    if searcher is None:
        with breakdown.phase("bind"):
            searcher = algorithm.bind(graph)
    with breakdown.phase("explore"):
        answers = searcher.search(query)
    return answers, breakdown
