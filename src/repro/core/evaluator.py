"""Algorithm 2: hierarchical query processing (``eval_Ont``).

The evaluator runs the five steps of Fig. 5 / Algo. 2:

1. **Query generalization** — pick the optimal layer ``m`` via the query
   cost model (Formula 4, Def. 4.1) and generalize the keywords to it.
2. **Evaluation on the summary graph** — run the plugged algorithm ``f``
   on ``G^m`` with ``Gen^m(Q)`` (the *explore* phase of the Exp-1 time
   breakdown).
3. **Specialization and pruning** — walk each generalized answer's vertex
   sets down the hierarchy one layer at a time; keyword nodes are pruned
   by Prop. 4.1 (a specialization survives only if its label generalizes
   to the keyword's generalization at that layer), implementing the
   early-specialization-of-keyword-nodes optimization of Sec. 4.3.1
   (a generalized answer dies as soon as any keyword node's candidate set
   empties).  Non-keyword vertices specialize without pruning — they are
   kept only for connectivity (Sec. 5.1).
4. **Answer generation** — turn candidate sets into concrete answers:

   * ``"root-verify"`` (default for rooted-tree semantics): the candidate
     roots are the specializations of each generalized answer's root;
     every candidate root is verified exactly on the data graph with one
     bounded BFS (``best_answer_for_root``).  Complete because
     path-preservation guarantees every true root's image is a summary
     answer root (Lemma 4.1 / Prop. 5.1).
   * ``"vertex"``: Algorithm 3 assignment enumeration (Def. 4.2
     qualification + specialization order), each assignment verified by
     the algorithm.
   * ``"path"``: Algorithm 4 path-based enumeration (Def. 4.3).

5. **Early termination after the first k answers** (Sec. 4.3.4) —
   generalized answers are processed in ascending summary score; since
   summary distances lower-bound data-graph distances (Prop. 5.2), the
   evaluation stops once k answers are verified and the k-th best score
   is at most the next unprocessed summary score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.answer_gen import (
    GeneralizedAnswerGraph,
    ans_graph_gen,
)
from repro.core.generalize import generalize_label
from repro.core.index import BiGIndex
from repro.core.path_answer_gen import p_ans_graph_gen
from repro.core.query_cost import QueryCostModel
from repro.search.base import (
    Answer,
    GraphSearcher,
    KeywordQuery,
    KeywordSearchAlgorithm,
    top_k,
)
from repro.utils.errors import QueryError
from repro.utils.timers import TimeBreakdown

#: Answer-generation strategies.
GENERATION_STRATEGIES = ("root-verify", "vertex", "path")


@dataclass
class EvalResult:
    """Outcome of one ``eval_Ont`` run with its instrumentation."""

    answers: List[Answer]
    layer: int
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    #: |A^m|: generalized answers found on the summary graph.
    num_generalized: int = 0
    #: candidates examined during generation (roots or assignments).
    num_candidates: int = 0
    #: candidates that survived exact verification.
    num_verified: int = 0

    @property
    def total_seconds(self) -> float:
        """Total measured query time across phases."""
        return self.breakdown.total


class HierarchicalEvaluator:
    """``eval_Ont`` for one (index, algorithm) pair.

    Per-layer searchers (the algorithm's own indexes over summary graphs)
    are cached across queries, mirroring the paper's setup where the
    BiG-index layers and the plugged algorithm's indexes are built offline.

    Parameters
    ----------
    index:
        The BiG-index hierarchy.
    algorithm:
        The plugged keyword search algorithm ``f``.
    beta:
        Query cost model weight (Formula 4).
    generation:
        Answer-generation strategy (see module docstring).
    use_spec_order:
        Toggle for the Sec. 4.3.2 specialization-order optimization
        (``"vertex"`` strategy only; the Exp-5 ablation flips it).
    """

    def __init__(
        self,
        index: BiGIndex,
        algorithm: KeywordSearchAlgorithm,
        beta: float = 0.5,
        generation: str = "root-verify",
        use_spec_order: bool = True,
        verify_mode: str = "exact",
        allow_layer_zero: bool = False,
    ) -> None:
        if generation not in GENERATION_STRATEGIES:
            raise QueryError(f"unknown generation strategy: {generation!r}")
        if verify_mode not in ("exact", "trust"):
            raise QueryError(f"unknown verify mode: {verify_mode!r}")
        self.index = index
        self.algorithm = algorithm
        self.cost_model = QueryCostModel(
            index, beta=beta, allow_layer_zero=allow_layer_zero
        )
        self.generation = generation
        self.use_spec_order = use_spec_order
        #: "exact" re-checks every generated assignment with the
        #: algorithm's own verifier; "trust" accepts assignments that pass
        #: Def. 4.2/4.3 qualification and scores them with the summary
        #: answer's score — the paper's pipeline, justified by its
        #: path-preservation argument (Prop. 5.3 claims score equality).
        self.verify_mode = verify_mode
        self._searchers: Dict[int, GraphSearcher] = {}

    # ------------------------------------------------------------------
    def searcher_for_layer(self, m: int) -> GraphSearcher:
        """The algorithm bound to ``G^m`` (cached)."""
        searcher = self._searchers.get(m)
        if searcher is None:
            searcher = self.algorithm.bind(self.index.layer_graph(m))
            self._searchers[m] = searcher
        return searcher

    def evaluate(
        self,
        query: KeywordQuery,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
    ) -> EvalResult:
        """Run ``eval_Ont(G, Q, f)``.

        Parameters
        ----------
        query:
            The keyword query on the *data graph's* vocabulary.
        layer:
            Force a specific layer ``m`` (Exp-4/6 sweep layers); ``None``
            uses the cost model's optimal layer.
        k:
            Top-k cutoff with early termination; ``None`` uses the
            algorithm's own ``k`` if any, returning all answers otherwise.
        max_generalized:
            Optional cap on the number of generalized answers consumed
            from the summary stream once the top-k is already populated
            or the stream keeps failing to specialize.  Implements the
            practical reading of Sec. 4.3.4 ("specialize one a^m at a
            time ... terminate when the number of answer graphs is k")
            for workloads where semantic distortion makes parts of the
            stream unproductive; ``None`` (default, used by the exactness
            tests) never truncates.
        """
        breakdown = TimeBreakdown()
        if k is None:
            k = getattr(self.algorithm, "k", None)

        with breakdown.phase("layer-selection"):
            if layer is None:
                layer = self.cost_model.optimal_layer(query)
            elif layer > 0 and not self.index.query_distinct_at(query, layer):
                raise QueryError(
                    f"keywords collide at layer {layer}; Def. 4.1 requires "
                    "|Gen^m(Q)| = |Q|"
                )

        if layer == 0:
            # Degenerate case: evaluate directly on the data graph.
            with breakdown.phase("explore"):
                answers = self.searcher_for_layer(0).search(query)
            return EvalResult(
                answers=top_k(answers, k),
                layer=0,
                breakdown=breakdown,
                num_generalized=len(answers),
                num_candidates=len(answers),
                num_verified=len(answers),
            )

        generalized_keywords = self.index.generalize_query(query, layer)
        keyword_by_generalized = dict(zip(generalized_keywords, query.keywords))
        generalized_query = KeywordQuery(generalized_keywords)

        # Stream summary answers lazily: specialization is interleaved
        # with enumeration so top-k runs stop as soon as the verified
        # answers dominate everything unexplored (Sec. 4.3.4 and
        # boost-dkws's interleaved decomposition, Sec. 5.2).  Streams are
        # not necessarily score-sorted; searchers that emit out of order
        # expose a running ``stream_lower_bound`` instead.
        searcher = self.searcher_for_layer(layer)
        with breakdown.phase("explore"):
            summary_stream = searcher.iter_search(generalized_query)

        result = EvalResult(answers=[], layer=layer, breakdown=breakdown)
        verified: Dict[Tuple, Answer] = {}
        seen_roots: Set[int] = set()

        while True:
            with breakdown.phase("explore"):
                summary_answer = next(summary_stream, None)
            if summary_answer is None:
                break
            result.num_generalized += 1
            if (
                max_generalized is not None
                and result.num_generalized > max_generalized
            ):
                break
            if k is not None and len(verified) >= k:
                kth = sorted(a.score for a in verified.values())[k - 1]
                stream_bound = getattr(
                    searcher, "stream_lower_bound", summary_answer.score
                )
                if kth <= stream_bound:
                    break  # Sec. 4.3.4: the rest cannot beat the top-k.
                if kth <= summary_answer.score:
                    continue  # this answer cannot improve; keep streaming
            root_verify = (
                self.generation == "root-verify"
                and summary_answer.root is not None
                and hasattr(self.algorithm, "best_answer_for_root")
            )
            with breakdown.phase("specialize"):
                spec = self._specialize_answer(
                    summary_answer,
                    layer,
                    query,
                    keyword_by_generalized,
                    root_only=root_verify,
                )
            if spec is None:
                continue
            with breakdown.phase("generate"):
                self._generate(
                    summary_answer, spec, query, verified, seen_roots, result, k
                )

        result.answers = top_k(list(verified.values()), k)
        result.num_verified = len(verified)
        return result

    # ------------------------------------------------------------------
    # Step 3: specialization with pruning
    # ------------------------------------------------------------------
    def _specialize_answer(
        self,
        summary_answer: Answer,
        layer: int,
        query: KeywordQuery,
        keyword_by_generalized: Mapping[str, str],
        root_only: bool = False,
    ) -> Optional[GeneralizedAnswerGraph]:
        """Walk one generalized answer's vertex sets down to layer 0.

        With ``root_only`` (the root-verify strategy) only the answer root
        is specialized, without pruning: root verification re-derives the
        keyword matches exactly on the data graph, so the summary answer's
        particular keyword supernodes — which a distinct-root search picks
        as the *nearest* generalized matches — must not constrain it.

        Otherwise every answer vertex specializes, keyword nodes pruned by
        Prop. 4.1, and the method returns ``None`` when early keyword
        specialization (Sec. 4.3.1) kills the answer (some keyword node
        has no label-qualified specialization).
        """
        configs = self.index.configs_up_to(layer)
        # supernode -> keyword for the isKey vertices of this answer.
        keyword_of: Dict[int, str] = {}
        for generalized_kw, supernode in summary_answer.keyword_nodes:
            keyword_of[supernode] = keyword_by_generalized.get(
                generalized_kw, generalized_kw
            )

        if root_only:
            root = summary_answer.root
            assert root is not None
            return GeneralizedAnswerGraph(
                vertices=(root,),
                edges=(),
                spec_sets={root: sorted(self.index.spec_to_base(root, layer))},
                keyword_of={},
            )

        spec_sets: Dict[int, List[int]] = {}
        for supernode in summary_answer.vertices:
            keyword = keyword_of.get(supernode)
            members = [supernode]
            for level in range(layer, 0, -1):
                extent = self.index.layers[level - 1].extent
                members = [child for s in members for child in extent[s]]
                if keyword is not None:
                    # Prop. 4.1: keep v only if its label at layer level-1
                    # equals the keyword's generalization to that layer.
                    expected = generalize_label(keyword, configs[: level - 1])
                    level_graph = self.index.layer_graph(level - 1)
                    members = [
                        v for v in members if level_graph.label(v) == expected
                    ]
                    if not members:
                        return None  # early keyword specialization prune
            spec_sets[supernode] = sorted(members)
        return GeneralizedAnswerGraph(
            vertices=summary_answer.vertices,
            edges=summary_answer.edges,
            spec_sets=spec_sets,
            keyword_of=keyword_of,
        )

    # ------------------------------------------------------------------
    # Step 5: answer generation
    # ------------------------------------------------------------------
    def _generate(
        self,
        summary_answer: Answer,
        spec: GeneralizedAnswerGraph,
        query: KeywordQuery,
        verified: Dict[Tuple, Answer],
        seen_roots: Set[int],
        result: EvalResult,
        k: Optional[int],
    ) -> None:
        root_capable = hasattr(self.algorithm, "best_answer_for_root")
        if (
            self.generation == "root-verify"
            and summary_answer.root is not None
            and root_capable
        ):
            self._generate_by_root(
                summary_answer, spec, query, verified, seen_roots, result, k
            )
        else:
            self._generate_by_assignment(
                summary_answer, spec, query, verified, result
            )

    def _generate_by_root(
        self,
        summary_answer: Answer,
        spec: GeneralizedAnswerGraph,
        query: KeywordQuery,
        verified: Dict[Tuple, Answer],
        seen_roots: Set[int],
        result: EvalResult,
        k: Optional[int],
    ) -> None:
        """Verify every specialized candidate root with one bounded BFS.

        The summary answer's score lower-bounds the exact score of every
        root specialized from it (Prop. 5.2), so once the top-k verified
        scores all fall at or below it, the rest of this answer's
        candidates cannot improve the result (Sec. 4.3.4).
        """
        candidate_roots = spec.spec_sets[summary_answer.root]
        best_for_root = self.algorithm.best_answer_for_root  # type: ignore[attr-defined]
        for root in candidate_roots:
            if root in seen_roots:
                continue
            if k is not None and len(verified) >= k:
                kth = sorted(a.score for a in verified.values())[k - 1]
                if kth <= summary_answer.score:
                    return
            seen_roots.add(root)
            result.num_candidates += 1
            answer = best_for_root(self.index.base_graph, root, query)
            if answer is not None:
                verified[answer.signature()] = answer

    def _generate_by_assignment(
        self,
        summary_answer: Answer,
        spec: GeneralizedAnswerGraph,
        query: KeywordQuery,
        verified: Dict[Tuple, Answer],
        result: EvalResult,
    ) -> None:
        """Algorithm 3 / 4 enumeration, each assignment exactly verified."""

        def qualify(partial: Mapping[int, int], supernode: int, vertex: int) -> bool:
            keyword = spec.keyword_of.get(supernode)
            if keyword is None:
                return True
            partial_keywords = {
                spec.keyword_of[s]: v
                for s, v in partial.items()
                if s in spec.keyword_of
            }
            return self.algorithm.enlarge_ok(
                self.index.base_graph, partial_keywords, keyword, vertex, query
            )

        if self.generation == "path":
            assignments = p_ans_graph_gen(
                self.index.base_graph, spec, qualify=qualify
            )
        else:
            assignments = ans_graph_gen(
                self.index.base_graph,
                spec,
                qualify=qualify,
                use_spec_order=self.use_spec_order,
            )
        for assignment in assignments:
            result.num_candidates += 1
            keyword_nodes = {
                keyword: assignment[supernode]
                for supernode, keyword in spec.keyword_of.items()
            }
            root = (
                assignment.get(summary_answer.root)
                if summary_answer.root is not None
                else None
            )
            if self.verify_mode == "trust":
                answer = Answer.make(
                    keyword_nodes,
                    score=summary_answer.score,
                    root=root,
                    vertices=assignment.values(),
                    edges=(
                        (assignment[u], assignment[v])
                        for u, v in spec.edges
                    ),
                )
            else:
                answer = self.algorithm.verify(
                    self.index.base_graph, keyword_nodes, query, root=root
                )
            if answer is not None:
                existing = verified.get(answer.signature())
                if existing is None or answer.score < existing.score:
                    verified[answer.signature()] = answer


def eval_direct(
    graph,
    algorithm: KeywordSearchAlgorithm,
    query: KeywordQuery,
    searcher: Optional[GraphSearcher] = None,
) -> Tuple[List[Answer], TimeBreakdown]:
    """Plain ``eval(G, Q, f)`` with the same timing instrumentation.

    The benchmark harness compares this against
    :meth:`HierarchicalEvaluator.evaluate` for the Exp-1/2 figures.  Pass a
    pre-bound ``searcher`` to keep the algorithm's offline index build out
    of the measured query time (as the paper does).
    """
    breakdown = TimeBreakdown()
    if searcher is None:
        with breakdown.phase("bind"):
            searcher = algorithm.bind(graph)
    with breakdown.phase("explore"):
        answers = searcher.search(query)
    return answers, breakdown
