"""Generalization configurations (Sec. 2 / Def. 2.2).

A configuration ``C`` is a set of mappings ``(l -> l')`` where ``l'`` is a
direct supertype of ``l`` in the ontology graph (or ``l' = l`` when ``l``
has no supertype; identity mappings are normalized away here).  Because a
vertex has exactly one label, ``C`` must be a *function* on labels — two
mappings may not share a source.  Applying such a ``C`` is automatically
label-preserving in the sense of Def. 2.2: each vertex's label either
follows its mapping or stays unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.ontology.ontology import OntologyGraph
from repro.utils.errors import ConfigurationError


class Configuration:
    """An immutable label-generalization configuration.

    Parameters
    ----------
    mappings:
        ``{source_label: target_label}`` pairs.
    ontology:
        When given, every mapping is validated: the target must be a
        *direct* supertype of the source (``(l', l) in E_Ont``).

    Example
    -------
    >>> from repro.ontology import OntologyGraph
    >>> ont = OntologyGraph()
    >>> ont.add_subtype("UC Berkeley", "Univ.")
    >>> c = Configuration({"UC Berkeley": "Univ."}, ontology=ont)
    >>> c.target_of("UC Berkeley")
    'Univ.'
    """

    def __init__(
        self,
        mappings: Mapping[str, str],
        ontology: Optional[OntologyGraph] = None,
    ) -> None:
        normalized: Dict[str, str] = {}
        for source, target in mappings.items():
            if source == target:
                continue  # identity mappings are implicit
            if ontology is not None:
                if source not in ontology:
                    raise ConfigurationError(
                        f"mapping source {source!r} is not an ontology type"
                    )
                if target not in ontology.direct_supertypes(source):
                    raise ConfigurationError(
                        f"{target!r} is not a direct supertype of {source!r}"
                    )
            normalized[source] = target
        self._mappings: Dict[str, str] = normalized

    # ------------------------------------------------------------------
    @property
    def mappings(self) -> Dict[str, str]:
        """A copy of the ``source -> target`` mapping dict."""
        return dict(self._mappings)

    @property
    def domain(self) -> Set[str]:
        """The paper's ``X``: labels that get generalized."""
        return set(self._mappings)

    @property
    def image(self) -> Set[str]:
        """The paper's ``Y``: the supertypes produced."""
        return set(self._mappings.values())

    def target_of(self, label: str) -> str:
        """The generalized label for ``label`` (identity when unmapped)."""
        return self._mappings.get(label, label)

    def sources_of(self, target: str) -> Set[str]:
        """All labels this configuration generalizes to ``target``.

        This is the paper's ``X_{l_i}`` set used by the distortion term.
        """
        return {s for s, t in self._mappings.items() if t == target}

    def merged_with(
        self, source: str, target: str, ontology: Optional[OntologyGraph] = None
    ) -> "Configuration":
        """A new configuration with one extra mapping.

        Raises :class:`ConfigurationError` if ``source`` is already mapped
        to a different target (a configuration is a function on labels).
        """
        existing = self._mappings.get(source)
        if existing is not None and existing != target:
            raise ConfigurationError(
                f"label {source!r} already mapped to {existing!r}"
            )
        combined = dict(self._mappings)
        combined[source] = target
        return Configuration(combined, ontology=ontology)

    def conflicts_with(self, source: str, target: str) -> bool:
        """Whether adding ``source -> target`` would break functionality."""
        existing = self._mappings.get(source)
        return existing is not None and existing != target

    def __len__(self) -> int:
        return len(self._mappings)

    def __bool__(self) -> bool:
        return bool(self._mappings)

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(sorted(self._mappings.items()))

    def __contains__(self, source: str) -> bool:
        return source in self._mappings

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._mappings == other._mappings

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._mappings.items())))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{s}->{t}" for s, t in self)
        return f"Configuration({inner})"

    @staticmethod
    def empty() -> "Configuration":
        """The empty configuration (generalizes nothing)."""
        return Configuration({})
