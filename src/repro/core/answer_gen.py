"""Algorithm 3: vertex-at-a-time answer graph generation.

Given a generalized answer graph ``a^m = (V_a, E_a)`` found on a summary
layer and the specialized candidate set of every answer vertex (``Spec``
down to layer 0, keyword nodes pruned by label per Prop. 4.1), the
generator enlarges partial answers one vertex at a time:

* vertices are processed in the *specialization order* of Sec. 4.3.2 —
  ascending number of specializations ``|chi^{-1}(a_i)|`` — which keeps
  the set of live partial answers small (Example 4.2 shows a 3x
  difference); the order can be disabled for the Exp-5 ablation;
* a concrete vertex ``v`` is *qualified* to enlarge a partial answer
  (Def. 4.2) iff every edge of ``a^m`` between its supernode and an
  already-assigned supernode is realized by a data-graph edge between the
  concrete vertices (in the same direction), its label matches (guaranteed
  upstream by pruning), and the plugged algorithm's own necessary
  condition (``enlarge_ok``) accepts it.

The output is the set of complete assignments ``supernode -> vertex``;
the evaluator turns them into verified answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graph.digraph import Graph
from repro.utils.errors import BigIndexError

#: Optional extra qualification hook: (partial assignment, supernode, vertex)
#: -> bool.  Used to thread the search algorithm's ``enlarge_ok`` through.
QualifyHook = Callable[[Mapping[int, int], int, int], bool]

#: An assignment of concrete data-graph vertices to answer supernodes.
Assignment = Dict[int, int]


@dataclass
class GeneralizedAnswerGraph:
    """A generalized answer ``a^m`` ready for specialization.

    Attributes
    ----------
    vertices:
        The supernode ids of the answer graph at its layer.
    edges:
        Directed edges of ``a^m`` among those supernodes.
    spec_sets:
        ``supernode -> sorted candidate layer-0 vertices`` (``chi^{-1}``
        composed down the hierarchy, label-pruned for keyword nodes).
    keyword_of:
        ``supernode -> query keyword`` for keyword nodes (the ``isKey``
        attribute of Sec. 4.3.1); non-keyword vertices are absent.
    """

    vertices: Tuple[int, ...]
    edges: Tuple[Tuple[int, int], ...]
    spec_sets: Dict[int, List[int]]
    keyword_of: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [v for v in self.vertices if v not in self.spec_sets]
        if missing:
            raise BigIndexError(
                f"answer vertices without specialization sets: {missing}"
            )

    def degree(self, vertex: int) -> int:
        """Degree of a supernode within the answer graph (joint detection)."""
        return sum(1 for (u, v) in self.edges if u == vertex or v == vertex)


def specialization_order(answer: GeneralizedAnswerGraph) -> List[int]:
    """Sec. 4.3.2: supernodes ordered by ascending ``|chi^{-1}(a_i)|``.

    Ties break by supernode id so the order is deterministic.
    """
    return sorted(answer.vertices, key=lambda s: (len(answer.spec_sets[s]), s))


def ans_graph_gen(
    graph: Graph,
    answer: GeneralizedAnswerGraph,
    qualify: Optional[QualifyHook] = None,
    use_spec_order: bool = True,
    max_partials: Optional[int] = None,
) -> List[Assignment]:
    """Algorithm 3: enumerate complete qualified assignments.

    Parameters
    ----------
    graph:
        The data graph ``G^0``.
    answer:
        The generalized answer with its specialization sets.
    qualify:
        Extra per-vertex qualification (the algorithm's ``enlarge_ok``).
    use_spec_order:
        Apply the specialization-order optimization; ``False`` processes
        vertices in their natural order (the Exp-5 "off" arm).
    max_partials:
        Safety cap on live partial answers; ``None`` is unbounded.

    Returns
    -------
    list of dict
        Complete ``supernode -> vertex`` assignments.  Assignments are
        injective (distinct supernodes take distinct vertices).
    """
    if use_spec_order:
        order = specialization_order(answer)
    else:
        order = sorted(answer.vertices)
    partials: List[Assignment] = [{}]
    for supernode in order:
        partials = _enlarge(
            graph, answer, partials, supernode, qualify, max_partials
        )
        if not partials:
            return []
    return partials


def _enlarge(
    graph: Graph,
    answer: GeneralizedAnswerGraph,
    partials: List[Assignment],
    supernode: int,
    qualify: Optional[QualifyHook],
    max_partials: Optional[int],
) -> List[Assignment]:
    """Lines 7-13 of Algorithm 3: extend every partial with one supernode."""
    # Edges of a^m touching this supernode, split by direction.
    out_to = [v for (u, v) in answer.edges if u == supernode]
    in_from = [u for (u, v) in answer.edges if v == supernode]
    next_partials: List[Assignment] = []
    for partial in partials:
        used = set(partial.values())
        for vertex in answer.spec_sets[supernode]:
            if vertex in used:
                continue  # assignments are injective
            if not _edge_qualified(
                graph, partial, vertex, out_to, in_from
            ):
                continue
            if qualify is not None and not qualify(partial, supernode, vertex):
                continue
            enlarged = dict(partial)
            enlarged[supernode] = vertex
            next_partials.append(enlarged)
            if max_partials is not None and len(next_partials) > max_partials:
                raise BigIndexError(
                    f"answer generation exceeded {max_partials} partial answers"
                )
    return next_partials


def _edge_qualified(
    graph: Graph,
    partial: Mapping[int, int],
    vertex: int,
    out_to: Sequence[int],
    in_from: Sequence[int],
) -> bool:
    """Def. 4.2's structural condition against already-assigned neighbors."""
    for neighbor in out_to:
        assigned = partial.get(neighbor)
        if assigned is not None and not graph.has_edge(vertex, assigned):
            return False
    for neighbor in in_from:
        assigned = partial.get(neighbor)
        if assigned is not None and not graph.has_edge(assigned, vertex):
            return False
    return True
