"""The BiG-index core: the paper's primary contribution.

* :mod:`repro.core.config` — generalization configurations ``C``.
* :mod:`repro.core.generalize` — the ``Gen`` / ``Spec`` label rewrites.
* :mod:`repro.core.cost` — the index cost model (Formula 3) with
  sampling-based compression estimation.
* :mod:`repro.core.heuristic` — Algorithm 1's greedy configuration search.
* :mod:`repro.core.index` — the hierarchical :class:`BiGIndex` itself
  (Def. 3.1) with maintenance.
* :mod:`repro.core.query_cost` — the query-generalization cost model
  (Formula 4) and optimal-layer selection (Def. 4.1).
* :mod:`repro.core.answer_gen` — Algorithm 3 vertex-at-a-time answer
  generation with specialization ordering.
* :mod:`repro.core.path_answer_gen` — Algorithm 4 path-based generation.
* :mod:`repro.core.evaluator` — Algorithm 2, the hierarchical query
  processor ``eval_Ont``.
* :mod:`repro.core.plugins` — boost-bkws / boost-dkws / boost-rkws.
"""

from repro.core.config import Configuration
from repro.core.generalize import generalize_graph, generalize_label, specialize_label
from repro.core.cost import CostModel, CostParams
from repro.core.heuristic import greedy_configuration
from repro.core.index import BiGIndex, Layer
from repro.core.query_cost import QueryCostModel, optimal_query_layer
from repro.core.evaluator import HierarchicalEvaluator, EvalResult
from repro.core.persistence import load_index, save_index
from repro.core.plugins import boost, BoostedSearch

__all__ = [
    "Configuration",
    "generalize_graph",
    "generalize_label",
    "specialize_label",
    "CostModel",
    "CostParams",
    "greedy_configuration",
    "BiGIndex",
    "Layer",
    "QueryCostModel",
    "optimal_query_layer",
    "HierarchicalEvaluator",
    "EvalResult",
    "load_index",
    "save_index",
    "boost",
    "BoostedSearch",
]
