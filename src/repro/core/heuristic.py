"""Algorithm 1: the one-step greedy heuristic for a maximal configuration.

Computing the optimal configuration is NP-hard (Thm. 3.1, reduction from
maxSAT), so the paper builds each index layer with a greedy pass:

1. Enumerate candidate generalizations ``c_i = (l -> l')`` — every label
   of the graph paired with each of its direct supertypes in the ontology.
2. Estimate ``cost(G, {c_i})`` (Formula 3) per candidate and order them
   ascending in a priority queue.
3. Pop candidates; add ``c_i`` to ``C`` while ``cost(G, C + {c_i})`` stays
   within the threshold ``theta``; stop at the first rejection, when the
   queue empties, or when ``|C|`` reaches the budget ``Pi``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.config import Configuration
from repro.core.cost import CostModel, CostParams
from repro.core.parallel import score_candidates
from repro.graph.digraph import Graph
from repro.obs.runtime import OBS
from repro.ontology.ontology import OntologyGraph


def candidate_generalizations(
    graph: Graph, ontology: OntologyGraph
) -> List[Tuple[str, str]]:
    """All ``(label, direct supertype)`` pairs applicable to ``graph``.

    Only labels actually used by some vertex and known to the ontology
    produce candidates; labels without supertypes have none (they may only
    map to themselves, which is a no-op).
    """
    candidates: List[Tuple[str, str]] = []
    for label in sorted(graph.distinct_labels()):
        if label not in ontology:
            continue
        for supertype in sorted(ontology.direct_supertypes(label)):
            candidates.append((label, supertype))
    return candidates


def greedy_configuration(
    graph: Graph,
    ontology: OntologyGraph,
    theta: float = 1.0,
    max_mappings: Optional[int] = None,
    cost_params: Optional[CostParams] = None,
    cost_model: Optional[CostModel] = None,
    workers: Optional[int] = None,
) -> Configuration:
    """Algorithm 1: a maximal configuration under the cost threshold.

    Parameters
    ----------
    graph:
        The (summary) graph to generalize next.
    ontology:
        Ontology supplying the candidate supertype edges.
    theta:
        Cost threshold; a candidate is kept while the cumulative
        configuration's cost stays at or below it.  The paper's default
        index setting uses a large ``theta`` so every label generalizes one
        step per layer.
    max_mappings:
        The budget ``Pi``; ``None`` means unbounded.
    cost_params / cost_model:
        Cost-model configuration, or a prebuilt model (which lets callers
        reuse one sample set across layers/benchmarks).
    workers:
        Fan the initial candidate-scoring pass out over this many worker
        processes (:mod:`repro.core.parallel`); ``None``/1 scores inline.
        The subsequent extension loop is inherently sequential (each
        acceptance changes the configuration being extended) and always
        runs in-process.

    Returns
    -------
    Configuration
    """
    model = cost_model or CostModel(graph, cost_params)
    config = Configuration.empty()
    candidates = candidate_generalizations(graph, ontology)
    if not candidates:
        return config

    # Priority queue keyed by the estimated single-mapping cost.  The
    # scores are identical floats whether computed inline or by workers.
    scores = score_candidates(model, candidates, workers=workers)
    if OBS.enabled:
        for score in scores:
            OBS.metrics.observe("build.candidate_cost", score)
    queue: List[Tuple[float, str, str]] = [
        (score, source, target)
        for score, (source, target) in zip(scores, candidates)
    ]
    heapq.heapify(queue)

    while queue:
        if max_mappings is not None and len(config) >= max_mappings:
            break
        _, source, target = heapq.heappop(queue)
        if config.conflicts_with(source, target) or source in config:
            # A configuration maps each label at most once; a cheaper
            # mapping for this source already won.
            continue
        extended = config.merged_with(source, target, ontology=ontology)
        if model.cost(extended) <= theta:
            config = extended
        else:
            # Candidates are in ascending single-mapping cost; the paper
            # returns at the first rejection.
            break
    return config
