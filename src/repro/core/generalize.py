"""Graph and label generalization (``Gen``) and specialization (``Spec``).

``Gen(G, C)`` simultaneously applies every mapping of the configuration to
the vertex labels of ``G`` (Sec. 3.1); the topology is untouched.  ``Spec``
reverses the rewrite: on labels it follows the configurations backwards, on
answer vertices the BiG-index layers' extent tables play that role (Sec. 2:
``Bisim^{-1}`` "is implemented by hash tables").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.core.config import Configuration
from repro.graph.digraph import Graph
from repro.search.base import KeywordQuery


def generalize_graph(graph: Graph, config: Configuration) -> Graph:
    """``Gen(G, C)``: a copy of ``graph`` with labels rewritten by ``config``.

    The returned graph shares the input's label table so label ids remain
    comparable across BiG-index layers.
    """
    result = graph.copy(share_label_table=True)
    if not config:
        return result
    # Pre-intern targets once; rewrite via the inverted label index so the
    # pass is proportional to the affected vertices, not |V| * |C|.
    for source, target in config:
        source_id = result.label_table.get_id(source)
        if source_id is None:
            continue
        target_id = result.label_table.intern(target)
        for v in list(result.vertices_with_label_id(source_id)):
            result.relabel_vertex_by_id(v, target_id)
    return result


def generalize_label(label: str, configs: Sequence[Configuration]) -> str:
    """``Gen^m`` on a single label: thread it through ``configs`` in order."""
    current = label
    for config in configs:
        current = config.target_of(current)
    return current


def generalize_query(
    query: KeywordQuery, configs: Sequence[Configuration]
) -> List[str]:
    """``Gen^m(Q)``: the generalized keyword list (may contain collisions).

    Returns a plain list rather than a :class:`KeywordQuery` because two
    keywords may generalize to the same label; Def. 4.1's condition 1
    (``|Gen^m(Q)| = |Q|``) is checked by the caller against this list.
    """
    return [generalize_label(keyword, configs) for keyword in query]


def specialize_label(
    label: str, configs: Sequence[Configuration]
) -> Set[str]:
    """``Spec`` on a label: all layer-0 labels that generalize to ``label``.

    Walks the configuration sequence backwards, expanding through each
    configuration's preimages (a label is its own preimage when unmapped —
    generalization leaves unmapped labels alone).
    """
    current: Set[str] = {label}
    for config in reversed(configs):
        expanded: Set[str] = set()
        for item in current:
            if item not in config:
                # Unmapped labels pass through Gen unchanged, so the label
                # is its own preimage; a mapped label cannot survive Gen.
                expanded.add(item)
            expanded.update(config.sources_of(item))
        current = expanded
    return current
