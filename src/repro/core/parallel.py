"""Parallel candidate-configuration scoring for Algorithm 1.

Index construction spends most of its time in the greedy heuristic's
initial pass: every ``(label -> supertype)`` candidate is scored by
summarizing the cost model's sample subgraphs (Sec. 3.2).  The candidates
are independent, so the pass parallelizes cleanly:

* The sample graphs are snapshotted once into picklable payloads (label
  strings plus the CSR edge arrays) and shipped to a
  ``concurrent.futures`` process pool via its initializer, so each worker
  rebuilds them a single time and scores many candidates against them.
* When a process pool cannot be created (restricted sandboxes, platforms
  without fork/semaphores), scoring degrades to a thread pool and finally
  to inline execution — same results, no hard dependency on OS features.

Scores are bit-identical to the serial path: a single-mapping
configuration's distortion is exactly ``0.0`` (its ``X_l`` sibling set
has size 1), so ``cost = alpha * compress + (1 - alpha) * 0.0`` reduces
to the same float sequence the serial :class:`~repro.core.cost.CostModel`
produces, and the differential tests assert the resulting configurations
match mapping-for-mapping.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence, Tuple

from repro.bisim.refinement import BisimDirection
from repro.core.config import Configuration
from repro.core.cost import CostModel, compression_ratio
from repro.graph.digraph import Graph
from repro.obs.runtime import OBS

#: One picklable graph snapshot: (per-vertex label strings, CSR offsets,
#: CSR targets).  Only out-edges are shipped; the rebuilt Graph derives
#: its own in-adjacency.
GraphPayload = Tuple[List[str], array, array]

#: Candidate generalization as shipped to workers.
Candidate = Tuple[str, str]


def graph_to_payload(graph: Graph) -> GraphPayload:
    """Snapshot ``graph`` into a compact picklable payload."""
    csr = graph.csr()
    labels = [graph.label(v) for v in range(graph.num_vertices)]

    def picklable(buf) -> array:
        # mmap-backed graphs expose CSR buffers as memoryviews, which
        # cannot cross a process boundary; copy those into arrays.
        return buf if isinstance(buf, array) else array("i", bytes(buf))

    return (labels, picklable(csr.out_offsets), picklable(csr.out_targets))


def payload_to_graph(payload: GraphPayload) -> Graph:
    """Rebuild a :class:`Graph` from :func:`graph_to_payload` output."""
    labels, offsets, targets = payload
    graph = Graph()
    for label in labels:
        graph.add_vertex(label)
    for v in range(len(labels)):
        for i in range(offsets[v], offsets[v + 1]):
            graph.add_edge(v, targets[i])
    return graph


# ----------------------------------------------------------------------
# Worker-side state and scoring
# ----------------------------------------------------------------------
#: Per-process state installed by :func:`_init_worker`.
_STATE: dict = {}


def _init_worker(
    sample_payloads: List[GraphPayload],
    alpha: float,
    direction_value: str,
    exact: bool,
    graph_payload: Optional[GraphPayload],
) -> None:
    """Process-pool initializer: rebuild the scoring graphs once."""
    samples = [payload_to_graph(p) for p in sample_payloads]
    _STATE["samples"] = samples
    _STATE["sample_labels"] = [
        frozenset(sample.distinct_labels()) for sample in samples
    ]
    _STATE["alpha"] = alpha
    _STATE["direction"] = BisimDirection(direction_value)
    _STATE["exact"] = exact
    _STATE["graph"] = (
        payload_to_graph(graph_payload) if graph_payload is not None else None
    )
    #: (sample index, projected mapping) -> ratio; lives for the worker's
    #: lifetime, so later chunks handled by the same process reuse it.
    _STATE["ratio_cache"] = {}


def _score_chunk(candidates: Sequence[Candidate]) -> List[float]:
    """Score single-mapping candidates against the worker's sample set.

    Mirrors ``CostModel.cost`` on a one-mapping configuration exactly:
    the distortion term is identically ``0.0``, and the compression mean
    iterates the samples in the same order with the same arithmetic.
    """
    samples: List[Graph] = _STATE["samples"]
    sample_labels: List[frozenset] = _STATE["sample_labels"]
    alpha: float = _STATE["alpha"]
    direction: BisimDirection = _STATE["direction"]
    cache: dict = _STATE["ratio_cache"]
    scores: List[float] = []
    for source, target in candidates:
        config = Configuration({source: target})
        if _STATE["exact"]:
            compress = compression_ratio(_STATE["graph"], config, direction)
        else:
            # Same projection memoization as CostModel.compress: a sample
            # without the source label yields the empty-projection ratio,
            # shared by every candidate the sample is blind to.
            ratios: List[float] = []
            for i, sample in enumerate(samples):
                if sample.size <= 0:
                    continue
                key = (i, (source, target)) if source in sample_labels[i] else (i,)
                ratio = cache.get(key)
                if ratio is None:
                    ratio = compression_ratio(sample, config, direction)
                    cache[key] = ratio
                ratios.append(ratio)
            compress = sum(ratios) / len(ratios) if ratios else 1.0
        scores.append(alpha * compress + (1.0 - alpha) * 0.0)
    return scores


def _chunked(items: Sequence[Candidate], num_chunks: int) -> List[List[Candidate]]:
    """Split ``items`` into at most ``num_chunks`` contiguous chunks."""
    num_chunks = max(1, min(num_chunks, len(items)))
    size, extra = divmod(len(items), num_chunks)
    chunks: List[List[Candidate]] = []
    start = 0
    for i in range(num_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def score_candidates(
    model: CostModel,
    candidates: Sequence[Candidate],
    workers: Optional[int] = None,
) -> List[float]:
    """Cost of each single-mapping candidate, aligned with ``candidates``.

    ``workers`` <= 1 (or ``None``) scores inline through ``model`` itself
    (benefiting from its memoized ratio cache); larger values fan the
    candidates out over a process pool, falling back to threads and then
    to inline scoring when pools are unavailable.
    """
    if OBS.enabled:
        OBS.metrics.inc("build.candidates_scored", len(candidates))
    if workers is None or workers <= 1 or len(candidates) <= 1:
        with OBS.tracer.span(
            "score-candidates", pool="serial", candidates=len(candidates)
        ):
            return _score_serial(model, candidates)

    exact = model.params.exact
    sample_payloads = (
        [] if exact else [graph_to_payload(s) for s in model.samples]
    )
    graph_payload = graph_to_payload(model.graph) if exact else None
    init_args = (
        sample_payloads,
        model.params.alpha,
        model.direction.value,
        exact,
        graph_payload,
    )
    chunks = _chunked(candidates, workers * 4)
    if OBS.enabled:
        OBS.metrics.inc("build.parallel_chunks", len(chunks))

    try:
        import concurrent.futures as futures

        with OBS.tracer.span(
            "score-candidates",
            pool="process",
            workers=workers,
            candidates=len(candidates),
        ):
            with futures.ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=init_args,
            ) as pool:
                results = list(pool.map(_score_chunk, chunks))
            return [score for chunk in results for score in chunk]
    except Exception:
        # Process pools need fork/spawn + semaphores; restricted
        # environments get the threaded path (identical results).
        pass

    try:
        import concurrent.futures as futures

        _init_worker(*init_args)
        with OBS.tracer.span(
            "score-candidates",
            pool="thread",
            workers=workers,
            candidates=len(candidates),
        ):
            with futures.ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(_score_chunk, chunks))
            return [score for chunk in results for score in chunk]
    except Exception:
        with OBS.tracer.span(
            "score-candidates", pool="serial", candidates=len(candidates)
        ):
            return _score_serial(model, candidates)
    finally:
        _STATE.clear()


def _score_serial(
    model: CostModel, candidates: Sequence[Candidate]
) -> List[float]:
    """Inline scoring through the model (shares its memoized caches)."""
    return [
        model.cost(Configuration({source: target}))
        for source, target in candidates
    ]
