"""Boosted keyword search: Sec. 5's plug-ins on top of BiG-index.

The framework is "orthogonal to specific query semantics": any algorithm
satisfying the :class:`~repro.search.base.KeywordSearchAlgorithm` contract
plugs in.  This module packages the three instantiations the paper spells
out — ``boost-bkws`` (Sec. 5.1), ``boost-dkws`` (Sec. 5.2) and
``boost-rkws`` (Sec. 5.3) — behind one :class:`BoostedSearch` facade whose
``search`` mirrors the underlying algorithm's interface while routing
through ``eval_Ont``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.evaluator import EvalResult, HierarchicalEvaluator
from repro.core.index import BiGIndex
from repro.search.banks import BackwardKeywordSearch
from repro.search.base import Answer, KeywordQuery, KeywordSearchAlgorithm
from repro.search.blinks import Blinks
from repro.search.rclique import RClique
from repro.utils.budget import Budget


class BoostedSearch:
    """A keyword search algorithm accelerated by a BiG-index.

    Example
    -------
    >>> # doctest-style sketch; see examples/quickstart.py for a real run
    >>> # boosted = boost(BackwardKeywordSearch(d_max=3), index)
    >>> # answers = boosted.search(KeywordQuery(["Club", "Player"]))
    """

    def __init__(
        self,
        algorithm: KeywordSearchAlgorithm,
        index: BiGIndex,
        beta: float = 0.5,
        generation: Optional[str] = None,
        use_spec_order: bool = True,
        verify_mode: str = "exact",
        allow_layer_zero: bool = False,
        cache_size: int = 128,
    ) -> None:
        if generation is None:
            # Rooted-tree semantics benefit from exact root verification;
            # root-free semantics (r-clique) enumerate assignments.
            generation = (
                "root-verify"
                if hasattr(algorithm, "best_answer_for_root")
                else "vertex"
            )
        self.algorithm = algorithm
        self.index = index
        self.evaluator = HierarchicalEvaluator(
            index,
            algorithm,
            beta=beta,
            generation=generation,
            use_spec_order=use_spec_order,
            verify_mode=verify_mode,
            allow_layer_zero=allow_layer_zero,
            cache_size=cache_size,
        )

    @property
    def name(self) -> str:
        """``boost-<algorithm>`` (e.g. ``boost-bkws``)."""
        return f"boost-{self.algorithm.name}"

    def search(
        self,
        query: KeywordQuery,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> List[Answer]:
        """Answers via ``eval_Ont`` (drops the instrumentation)."""
        return self.evaluate(
            query,
            layer=layer,
            k=k,
            max_generalized=max_generalized,
            budget=budget,
        ).answers

    def evaluate(
        self,
        query: KeywordQuery,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> EvalResult:
        """Full ``eval_Ont`` run with the timing breakdown (benchmarks).

        A budget makes the run raise
        :class:`~repro.utils.errors.BudgetExceeded` on exhaustion; use
        :meth:`evaluate_resilient` to degrade instead.
        """
        return self.evaluator.evaluate(
            query,
            layer=layer,
            k=k,
            max_generalized=max_generalized,
            budget=budget,
        )

    def evaluate_resilient(
        self,
        query: KeywordQuery,
        budget: Optional[Budget] = None,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        retry_coarser: bool = True,
    ):
        """``evaluate`` that returns a ``DegradedResult`` on exhaustion."""
        return self.evaluator.evaluate_resilient(
            query,
            budget=budget,
            layer=layer,
            k=k,
            max_generalized=max_generalized,
            retry_coarser=retry_coarser,
        )

    def evaluate_many(
        self,
        queries: Sequence[KeywordQuery],
        *,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        budget_factory: Optional[Callable[[], Optional[Budget]]] = None,
        workers: Optional[int] = None,
        resilient: bool = True,
        return_exceptions: bool = False,
    ) -> List[object]:
        """Batched serving; see :meth:`HierarchicalEvaluator.evaluate_many`."""
        return self.evaluator.evaluate_many(
            queries,
            layer=layer,
            k=k,
            max_generalized=max_generalized,
            budget_factory=budget_factory,
            workers=workers,
            resilient=resilient,
            return_exceptions=return_exceptions,
        )

    def warm(self, layer: Optional[int] = None) -> None:
        """Pre-build the algorithm's per-layer index (offline step).

        The paper builds the plugged algorithm's index (e.g. r-clique's
        neighbor list) "on the m-th layer" before measuring queries; call
        this to keep that cost out of timed runs.  Warms every layer when
        ``layer`` is ``None``, and pre-builds each layer graph's CSR view
        so the first query pays no adjacency-packing cost either.
        """
        layers = (
            range(self.index.num_layers + 1) if layer is None else [layer]
        )
        for m in layers:
            self.evaluator.searcher_for_layer(m)
            self.index.layer_graph(m).csr()


def boost(
    algorithm: KeywordSearchAlgorithm,
    index: BiGIndex,
    beta: float = 0.5,
    generation: Optional[str] = None,
    use_spec_order: bool = True,
    verify_mode: str = "exact",
    allow_layer_zero: bool = False,
) -> BoostedSearch:
    """Wrap any compatible algorithm with BiG-index acceleration."""
    return BoostedSearch(
        algorithm,
        index,
        beta=beta,
        generation=generation,
        use_spec_order=use_spec_order,
        verify_mode=verify_mode,
        allow_layer_zero=allow_layer_zero,
    )


def boost_bkws(
    index: BiGIndex, d_max: int = 3, k: Optional[int] = None, **kwargs
) -> BoostedSearch:
    """Sec. 5.1's ``boost-bkws``: backward keyword search on BiG-index."""
    return boost(BackwardKeywordSearch(d_max=d_max, k=k), index, **kwargs)


def boost_rkws(
    index: BiGIndex,
    d_max: int = 5,
    k: Optional[int] = None,
    index_kind: str = "bi-level",
    block_size: int = 1000,
    **kwargs,
) -> BoostedSearch:
    """Sec. 5.3's ``boost-rkws``: Blinks ranked search on BiG-index."""
    algorithm = Blinks(
        d_max=d_max, k=k, index_kind=index_kind, block_size=block_size
    )
    return boost(algorithm, index, **kwargs)


def boost_dkws(
    index: BiGIndex,
    radius: int = 4,
    k: Optional[int] = 10,
    **kwargs,
) -> BoostedSearch:
    """Sec. 5.2's ``boost-dkws``: r-clique search on BiG-index."""
    return boost(RClique(radius=radius, k=k), index, **kwargs)
