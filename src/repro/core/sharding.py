"""Sharded BiG-index: parallel per-shard build + scatter-gather top-k.

The monolithic :class:`~repro.core.index.BiGIndex` keeps one hierarchy
over the whole data graph; this module splits the graph into ``K``
vertex-disjoint (hence edge-disjoint) shards, builds one hierarchy per
shard in a separate *process*, and answers queries by fanning out to
per-shard evaluators and merging their ranked streams.

Exactness rests on a *portal zone*.  The shard planner extends the
Blinks partitioner (:func:`repro.graph.partition.partition_bfs_grow`):
edges crossing shards are collected into a cut table, their endpoints
are *portals*, and the **zone** is the subgraph induced on every vertex
within undirected distance ``halo_radius`` of a portal.  For a rooted
search algorithm whose answers have radius ``d_max`` (so diameter
``2*d_max``), any data-graph answer either

* uses no cut edge — then it is connected inside one shard and the
  shard's evaluator reproduces it exactly (the answer's own paths are
  shard-local, and a subgraph cannot shorten them), or
* uses a cut edge — then it contains a portal, every one of its
  vertices lies within ``2*d_max`` of that portal, and as long as
  ``halo_radius >= 2*d_max`` the zone contains the whole answer.

Every locale (shard or zone) is an induced subgraph of ``G``, so locale
answers are genuine data-graph answers whose scores can only be equal
or worse than the global optimum for the same root; merging per-root
minima and re-ranking therefore reproduces the monolithic top-k
(checked query-for-query by ``repro.verify.shardcheck``).  The same
subgraph inequality is what makes per-shard budgets prefix-sound: a
degraded locale's ``lower_bound`` bounds everything it did not emit, so
the merged prefix below the *minimum* bound over degraded locales is
provably complete and the merged outcome degrades via
:class:`~repro.core.evaluator.DegradedResult` instead of silently
dropping cross-shard answers.

On disk a sharded index is a directory of ordinary v4 index
directories (one per locale) under a top-level ``meta.json`` /
``shards.json`` / ``manifest.json`` (whose ``shards`` section pins each
locale's own manifest digest) plus one shared ``mutations.wal`` whose
ops are routed to the owning locale(s) on replay.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from array import array
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.cost import CostParams
from repro.core.evaluator import (
    DegradationStats,
    DegradedAttempt,
    DegradedResult,
    EvalResult,
    HierarchicalEvaluator,
    TimeBreakdown,
)
from repro.core.index import BiGIndex
from repro.graph.digraph import Graph
from repro.graph.partition import partition_bfs_grow
from repro.obs.runtime import OBS
from repro.ontology.ontology import OntologyGraph
from repro.search.base import (
    Answer,
    KeywordQuery,
    KeywordSearchAlgorithm,
    top_k,
)
from repro.utils.budget import Budget
from repro.utils.errors import (
    BudgetExceeded,
    ConfigurationError,
    GraphError,
    IndexPersistenceError,
    QueryError,
)
from repro.utils.timers import monotonic_now

#: Name of the zone locale (shards are ``shard-0`` .. ``shard-K-1``).
ZONE_NAME = "zone"

#: Top-level metadata files of a sharded index directory.
SHARDED_META_NAME = "meta.json"
SHARDED_LAYOUT_NAME = "shards.json"
SHARDED_MANIFEST_NAME = "manifest.json"

#: ``meta.json``'s ``kind`` marker distinguishing a sharded root from an
#: ordinary index directory (whose ``meta.json`` carries ``version``).
SHARDED_KIND = "sharded"

SHARDED_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """How a graph's vertices split into shards plus the portal zone.

    Everything is deterministic and id-sorted so two plans over equal
    graphs are equal structure-for-structure (the sharded manifest and
    the serial/parallel build equivalence both rely on it).
    """

    num_shards: int
    halo_radius: int
    #: shard id for every vertex (dense, indexed by vertex id).
    shard_of: List[int]
    #: sorted global vertex ids per shard.
    shard_vertices: List[List[int]]
    #: edges crossing shards, sorted by ``(src, dst)``.
    cut_edges: List[Tuple[int, int]]
    #: sorted endpoints of cut edges.
    portals: List[int]
    #: sorted vertices within ``halo_radius`` (undirected) of a portal.
    zone_vertices: List[int]

    @property
    def num_vertices(self) -> int:
        return len(self.shard_of)

    def locale_names(self) -> List[str]:
        names = [f"shard-{s}" for s in range(self.num_shards)]
        if self.zone_vertices:
            names.append(ZONE_NAME)
        return names


def _ball_around(
    graph: Graph, sources: Iterable[int], radius: int
) -> Set[int]:
    """Vertices within undirected distance ``radius`` of ``sources``."""
    members: Set[int] = set(sources)
    frontier = sorted(members)
    for _ in range(radius):
        nxt: List[int] = []
        for v in frontier:
            for w in [*graph.out_neighbors(v), *graph.in_neighbors(v)]:
                if w not in members:
                    members.add(w)
                    nxt.append(w)
        if not nxt:
            break
        frontier = nxt
    return members


def plan_shards(
    graph: Graph, num_shards: int, halo_radius: int = 6
) -> ShardPlan:
    """Split ``graph`` into ``num_shards`` shards plus the portal zone.

    Blocks come from the deterministic BFS-grow partitioner with target
    block size ``ceil(n / num_shards)`` and are packed greedily (largest
    block first, onto the currently smallest shard) so shard sizes stay
    balanced even when the graph has many small components.  Shards
    that would end up empty are dropped, so the plan's ``num_shards``
    may be smaller than requested on tiny graphs.

    ``halo_radius`` governs query exactness: a
    :class:`ShardedEvaluator` for an algorithm with answer radius
    ``d_max`` requires ``halo_radius >= 2 * d_max``.
    """
    if num_shards < 1:
        raise GraphError("num_shards must be >= 1")
    if halo_radius < 0:
        raise GraphError("halo_radius must be >= 0")
    n = graph.num_vertices
    if n == 0:
        raise GraphError("cannot shard an empty graph")
    target = max(1, math.ceil(n / num_shards))
    partition = partition_bfs_grow(graph, target)

    # Largest-first greedy packing onto the lightest shard; ties break
    # on the lowest shard id, block order breaks on the lowest block id.
    order = sorted(
        range(partition.num_blocks),
        key=lambda b: (-len(partition.blocks[b]), b),
    )
    loads = [0] * num_shards
    shard_of_block = [0] * partition.num_blocks
    for block in order:
        shard = min(range(num_shards), key=lambda s: (loads[s], s))
        shard_of_block[block] = shard
        loads[shard] += len(partition.blocks[block])

    shard_of = [shard_of_block[partition.block_of[v]] for v in range(n)]
    # Drop empty shards, renumbering densely in ascending old-id order.
    used = sorted({shard_of[v] for v in range(n)})
    renumber = {old: new for new, old in enumerate(used)}
    shard_of = [renumber[s] for s in shard_of]
    actual = len(used)

    shard_vertices: List[List[int]] = [[] for _ in range(actual)]
    for v in range(n):
        shard_vertices[shard_of[v]].append(v)

    cut = sorted(
        (u, v) for (u, v) in graph.edges() if shard_of[u] != shard_of[v]
    )
    portals = sorted({v for edge in cut for v in edge})
    zone = (
        sorted(_ball_around(graph, portals, halo_radius)) if portals else []
    )
    return ShardPlan(
        num_shards=actual,
        halo_radius=halo_radius,
        shard_of=shard_of,
        shard_vertices=shard_vertices,
        cut_edges=cut,
        portals=portals,
        zone_vertices=zone,
    )


# ----------------------------------------------------------------------
# Locales
# ----------------------------------------------------------------------
@dataclass
class Locale:
    """One independently built hierarchy over a subset of the graph."""

    name: str
    index: BiGIndex
    #: global vertex id for every local id (sorted ascending).
    global_ids: List[int]
    #: inverse of ``global_ids``.
    local_of: Dict[int, int] = field(default_factory=dict)
    build_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.local_of:
            self.local_of = {g: l for l, g in enumerate(self.global_ids)}

    def contains(self, v: int) -> bool:
        return v in self.local_of


#: Picklable locale snapshot: (labels, CSR offsets, CSR targets, names).
LocalePayload = Tuple[List[str], array, array, Dict[int, str]]


def _locale_payload(graph: Graph, members: Sequence[int]) -> LocalePayload:
    """Snapshot the subgraph induced on ``members`` for a worker.

    ``members`` must be sorted; local ids are their ranks, matching
    :class:`Locale.global_ids`.
    """
    local_of = {g: l for l, g in enumerate(members)}
    labels = [graph.label(g) for g in members]
    names = {
        local_of[g]: graph.names[g] for g in members if g in graph.names
    }
    offsets = array("i")
    targets = array("i")
    offsets.append(0)
    for g in members:
        row = sorted(
            local_of[w] for w in graph.out_neighbors(g) if w in local_of
        )
        targets.extend(row)
        offsets.append(len(targets))
    return (labels, offsets, targets, names)


def _payload_to_graph(payload: LocalePayload) -> Graph:
    labels, offsets, targets, names = payload
    graph = Graph()
    for local, label in enumerate(labels):
        graph.add_vertex(label, name=names.get(local))
    for v in range(len(labels)):
        for i in range(offsets[v], offsets[v + 1]):
            graph.add_edge(v, targets[i])
    return graph


def _build_locale_index(
    payload: LocalePayload,
    ontology: OntologyGraph,
    build_kwargs: Dict[str, object],
) -> BiGIndex:
    """The one code path every build mode funnels through.

    Serial, threaded and process builds all reconstruct the locale from
    the same payload and run the same ``BiGIndex.build``, so the result
    is bit-identical no matter how many workers built it.
    """
    graph = _payload_to_graph(payload)
    return BiGIndex.build(graph, ontology, **build_kwargs)


def _build_locale_task(task: Tuple) -> Tuple[str, float, List[int]]:
    """Process-pool task: build one locale and persist it to its dir."""
    name, payload, ontology, build_kwargs, out_dir, fmt = task
    from repro.core.persistence import save_index

    start = monotonic_now()
    index = _build_locale_index(payload, ontology, build_kwargs)
    save_index(index, out_dir, format=fmt)
    return (name, monotonic_now() - start, index.layer_sizes())


def _run_build_tasks(
    tasks: List[Tuple], workers: Optional[int]
) -> List[Tuple[str, float, List[int]]]:
    """Run locale builds on a process pool, degrading gracefully.

    Mirrors :func:`repro.core.parallel.score_candidates`: process pool
    first (real parallelism — each locale build is a fresh interpreter
    with no shared state), thread pool when processes are unavailable,
    inline as the last resort.  All three call the same task function.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    workers = max(1, min(workers, len(tasks)))
    if workers > 1:
        try:
            import concurrent.futures as futures

            with futures.ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_build_locale_task, tasks))
        except Exception:
            pass
        try:
            import concurrent.futures as futures

            with futures.ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(_build_locale_task, tasks))
        except Exception:
            pass
    return [_build_locale_task(task) for task in tasks]


# ----------------------------------------------------------------------
# The sharded index
# ----------------------------------------------------------------------
class ShardedIndex:
    """K shard hierarchies + the portal-zone hierarchy behind one facade.

    Presents the maintenance surface the serve stack expects from a
    :class:`~repro.core.index.BiGIndex` — ``base_graph`` (the live union
    graph), ``insert_edge`` / ``delete_edge`` / ``remove_ontology_edge``,
    ``epoch``, ``cow_clone``, ``state_digest``, ``num_layers`` /
    ``layer_sizes`` — so :class:`~repro.serve.lifecycle.EngineRuntime`,
    the WAL replayer and ``/admin/mutate`` work unchanged.  Mutations
    route to the owning locale(s):

    * an intra-shard edge updates its shard, plus the zone when both
      endpoints are zone members;
    * a cross-shard edge lives only in the cut table and the zone;
    * inserts that can move the portal ball re-derive zone membership
      and rebuild the zone hierarchy when it grew (deletes only ever
      shrink the required ball, so the zone is kept as a superset —
      correct, merely non-minimal, exactly like post-maintenance drift
      in the monolithic index).
    """

    def __init__(
        self,
        plan: ShardPlan,
        shards: List[Locale],
        zone: Optional[Locale],
        ontology: OntologyGraph,
        base_graph: Graph,
        build_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.plan = plan
        self.shards = shards
        self.zone = zone
        self.ontology = ontology
        self.base_graph = base_graph
        self.build_kwargs = dict(build_kwargs or {})
        self.halo_radius = plan.halo_radius
        self._shard_of = list(plan.shard_of)
        self._cut_edges: Set[Tuple[int, int]] = set(plan.cut_edges)
        self._zone_members: Set[int] = set(plan.zone_vertices)
        self._maintenance_epoch = 0

    # -- introspection -------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def locales(self) -> List[Locale]:
        return self.shards + ([self.zone] if self.zone is not None else [])

    @property
    def epoch(self) -> Tuple[int, int]:
        return (self._maintenance_epoch, self.base_graph.mutation_epoch)

    @property
    def num_layers(self) -> int:
        return max((loc.index.num_layers for loc in self.locales), default=0)

    def layer_sizes(self) -> List[int]:
        """Per-layer vertex totals summed across locales."""
        sizes = [0] * (self.num_layers + 1)
        for locale in self.locales:
            for m, size in enumerate(locale.index.layer_sizes()):
                sizes[m] += size
        return sizes

    def iter_layer_graphs(self) -> Iterator[Graph]:
        """Every layer graph of every locale (storage-kind probing)."""
        for locale in self.locales:
            for m in range(locale.index.num_layers + 1):
                yield locale.index.layer_graph(m)

    def cut_edge_count(self) -> int:
        return len(self._cut_edges)

    def total_index_size(self) -> int:
        """Sum of every locale's index size plus the cut table."""
        return sum(
            locale.index.total_index_size() for locale in self.locales
        ) + len(self._cut_edges)

    def shard_of(self, v: int) -> int:
        return self._shard_of[v]

    def state_digest(self) -> str:
        """sha256 over locale digests + the cut table + the assignment."""
        hasher = hashlib.sha256()
        for locale in self.locales:
            hasher.update(locale.name.encode("utf-8"))
            hasher.update(locale.index.state_digest().encode("ascii"))
            hasher.update(b"\x1e")
        hasher.update(
            ",".join(f"{u}-{v}" for u, v in sorted(self._cut_edges)).encode(
                "ascii"
            )
        )
        hasher.update(b"\x1e")
        hasher.update(",".join(map(str, self._shard_of)).encode("ascii"))
        return hasher.hexdigest()

    def cow_clone(self) -> "ShardedIndex":
        """Copy-on-write clone (snapshot isolation for the serve runtime)."""
        clone = ShardedIndex.__new__(ShardedIndex)
        clone.plan = self.plan
        clone.shards = [
            Locale(
                name=s.name,
                index=s.index.cow_clone(),
                global_ids=s.global_ids,
                local_of=s.local_of,
                build_seconds=s.build_seconds,
            )
            for s in self.shards
        ]
        clone.zone = (
            Locale(
                name=self.zone.name,
                index=self.zone.index.cow_clone(),
                global_ids=self.zone.global_ids,
                local_of=self.zone.local_of,
                build_seconds=self.zone.build_seconds,
            )
            if self.zone is not None
            else None
        )
        clone.ontology = self.ontology
        clone.base_graph = self.base_graph.cow_clone()
        clone.build_kwargs = dict(self.build_kwargs)
        clone.halo_radius = self.halo_radius
        clone._shard_of = list(self._shard_of)
        clone._cut_edges = set(self._cut_edges)
        clone._zone_members = set(self._zone_members)
        clone._maintenance_epoch = self._maintenance_epoch
        if OBS.enabled:
            OBS.metrics.inc("cow.sharded.clones")
        return clone

    # -- maintenance ---------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Insert a data-graph edge, routing it to the owning locale(s)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if not self.base_graph.add_edge(u, v):
            return
        if OBS.enabled:
            OBS.metrics.inc("shard.mutations.insert")
        if self._shard_of[u] == self._shard_of[v]:
            shard = self.shards[self._shard_of[u]]
            shard.index.insert_edge(shard.local_of[u], shard.local_of[v])
            if u in self._zone_members or v in self._zone_members:
                # The new edge may pull vertices into the portal ball.
                self._refresh_zone(incremental_edge=(u, v))
        else:
            # Cross-shard: the shards stay edge-disjoint; the edge lives
            # in the cut table and the zone, and both endpoints become
            # portals (growing the ball around them).
            self._cut_edges.add((u, v))
            self._refresh_zone(incremental_edge=(u, v))
        self._maintenance_epoch += 1

    def delete_edge(self, u: int, v: int) -> None:
        """Delete a data-graph edge from every locale that holds it."""
        self._check_vertex(u)
        self._check_vertex(v)
        if not self.base_graph.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) does not exist")
        self.base_graph.remove_edge(u, v)
        if OBS.enabled:
            OBS.metrics.inc("shard.mutations.delete")
        if (u, v) in self._cut_edges:
            self._cut_edges.discard((u, v))
        else:
            shard = self.shards[self._shard_of[u]]
            shard.index.delete_edge(shard.local_of[u], shard.local_of[v])
        # Deleting only lengthens portal distances: the required ball
        # shrinks, so current membership stays a valid superset and the
        # zone just drops the edge when it held it.
        zone = self.zone
        if (
            zone is not None
            and u in zone.local_of
            and v in zone.local_of
            and zone.index.base_graph.has_edge(
                zone.local_of[u], zone.local_of[v]
            )
        ):
            zone.index.delete_edge(zone.local_of[u], zone.local_of[v])
        self._maintenance_epoch += 1

    def remove_ontology_edge(self, subtype: str, supertype: str) -> None:
        """Drop an ontology mapping in every locale that uses it."""
        for locale in self.locales:
            locale.index.remove_ontology_edge(subtype, supertype)
        self._maintenance_epoch += 1

    def note_ontology_addition(self) -> None:
        for locale in self.locales:
            locale.index.note_ontology_addition()

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._shard_of):
            raise GraphError(f"vertex {v} not in the sharded index")

    def _current_portals(self) -> List[int]:
        return sorted({v for edge in self._cut_edges for v in edge})

    def _refresh_zone(
        self, incremental_edge: Optional[Tuple[int, int]] = None
    ) -> None:
        """Re-derive zone membership; rebuild the zone when it grew.

        When membership is unchanged the mutation is applied to the zone
        hierarchy incrementally (both endpoints inside the zone); when
        the portal ball grew — or a first cut edge appeared — the zone
        is rebuilt from scratch over the new member set, the sharded
        analogue of the paper's occasional-recompute maintenance rule.
        """
        portals = self._current_portals()
        required: Set[int] = (
            _ball_around(self.base_graph, portals, self.halo_radius)
            if portals
            else set()
        )
        zone = self.zone
        if required <= self._zone_members and zone is not None:
            if incremental_edge is not None:
                u, v = incremental_edge
                if u in zone.local_of and v in zone.local_of:
                    zone.index.insert_edge(zone.local_of[u], zone.local_of[v])
            return
        if not required:
            self.zone = None
            self._zone_members = set()
            return
        members = sorted(required | self._zone_members)
        self._zone_members = set(members)
        payload = _locale_payload(self.base_graph, members)
        start = monotonic_now()
        index = _build_locale_index(payload, self.ontology, self.build_kwargs)
        self.zone = Locale(
            name=ZONE_NAME,
            index=index,
            global_ids=members,
            build_seconds=monotonic_now() - start,
        )
        if OBS.enabled:
            OBS.metrics.inc("shard.zone.rebuilds")


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
def build_sharded(
    graph: Graph,
    ontology: OntologyGraph,
    num_shards: int,
    halo_radius: int = 6,
    *,
    plan: Optional[ShardPlan] = None,
    workers: Optional[int] = 1,
    directory: Optional[str] = None,
    format: int = 4,
    num_layers: Optional[int] = None,
    theta: float = 1.0,
    max_mappings: Optional[int] = None,
    cost_params: Optional[CostParams] = None,
) -> ShardedIndex:
    """Plan, build and (optionally) persist a sharded BiG-index.

    ``workers`` is *whole-shard* parallelism: each locale's hierarchy is
    built by one process-pool task (falling back to threads, then
    inline — always through the same task function, so the result is
    identical at any worker count).  With ``directory`` set, locales are
    persisted as ordinary v4 index directories under the sharded layout
    and the returned index is the loaded (mmap-backed) one; without it
    everything stays on the heap.
    """
    if plan is None:
        plan = plan_shards(graph, num_shards, halo_radius)
    build_kwargs: Dict[str, object] = {
        "num_layers": num_layers,
        "theta": theta,
        "max_mappings": max_mappings,
        "cost_params": cost_params,
    }
    member_sets: List[Tuple[str, List[int]]] = [
        (f"shard-{s}", plan.shard_vertices[s])
        for s in range(plan.num_shards)
    ]
    if plan.zone_vertices:
        member_sets.append((ZONE_NAME, plan.zone_vertices))
    payloads = {
        name: _locale_payload(graph, members)
        for name, members in member_sets
    }

    if directory is None:
        locales: Dict[str, Locale] = {}
        for name, members in member_sets:
            start = monotonic_now()
            index = _build_locale_index(
                payloads[name], ontology, build_kwargs
            )
            locales[name] = Locale(
                name=name,
                index=index,
                global_ids=list(members),
                build_seconds=monotonic_now() - start,
            )
        return _assemble(plan, locales, ontology, graph, build_kwargs)

    staging = directory.rstrip(os.sep) + f".staging-{os.getpid()}"
    if os.path.exists(staging):
        import shutil

        shutil.rmtree(staging)
    os.makedirs(staging)
    tasks = [
        (
            name,
            payloads[name],
            ontology,
            build_kwargs,
            os.path.join(staging, name),
            format,
        )
        for name, _members in member_sets
    ]
    results = _run_build_tasks(tasks, workers)
    timings = {name: seconds for name, seconds, _sizes in results}
    _write_sharded_layout(
        staging, plan, member_sets, graph, timings, build_kwargs
    )
    if os.path.exists(directory):
        import shutil

        shutil.rmtree(directory)
    os.replace(staging, directory)
    return load_sharded_index(directory, ontology, base_graph=graph)


def _assemble(
    plan: ShardPlan,
    locales: Dict[str, Locale],
    ontology: OntologyGraph,
    base_graph: Graph,
    build_kwargs: Dict[str, object],
) -> ShardedIndex:
    shards = [locales[f"shard-{s}"] for s in range(plan.num_shards)]
    zone = locales.get(ZONE_NAME)
    return ShardedIndex(
        plan=plan,
        shards=shards,
        zone=zone,
        ontology=ontology,
        base_graph=base_graph,
        build_kwargs=build_kwargs,
    )


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def _sha256_file(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _write_sharded_layout(
    directory: str,
    plan: ShardPlan,
    member_sets: List[Tuple[str, List[int]]],
    graph: Graph,
    timings: Dict[str, float],
    build_kwargs: Dict[str, object],
) -> None:
    meta = {
        "kind": SHARDED_KIND,
        "sharded_version": SHARDED_FORMAT_VERSION,
        "num_shards": plan.num_shards,
        "halo_radius": plan.halo_radius,
        "num_vertices": plan.num_vertices,
    }
    with open(
        os.path.join(directory, SHARDED_META_NAME), "w", encoding="utf-8"
    ) as handle:
        json.dump(meta, handle, indent=1, sort_keys=True)
        handle.write("\n")

    cost = build_kwargs.get("cost_params")
    layout = {
        "halo_radius": plan.halo_radius,
        "num_vertices": plan.num_vertices,
        "locales": [
            {
                "name": name,
                "global_ids": list(members),
                "build_seconds": round(timings.get(name, 0.0), 6),
            }
            for name, members in member_sets
        ],
        "cut_edges": [list(edge) for edge in plan.cut_edges],
        "names": {
            str(v): graph.names[v] for v in sorted(graph.names)
        },
        "build_kwargs": {
            "num_layers": build_kwargs.get("num_layers"),
            "theta": build_kwargs.get("theta"),
            "max_mappings": build_kwargs.get("max_mappings"),
            "cost_exact": bool(getattr(cost, "exact", False)),
            "cost_num_samples": getattr(cost, "num_samples", None),
        },
    }
    with open(
        os.path.join(directory, SHARDED_LAYOUT_NAME), "w", encoding="utf-8"
    ) as handle:
        json.dump(layout, handle, sort_keys=True)
        handle.write("\n")

    manifest = {
        "files": {
            SHARDED_META_NAME: _sha256_file(
                os.path.join(directory, SHARDED_META_NAME)
            ),
            SHARDED_LAYOUT_NAME: _sha256_file(
                os.path.join(directory, SHARDED_LAYOUT_NAME)
            ),
        },
        "shards": {
            name: _sha256_file(
                os.path.join(directory, name, "manifest.json")
            )
            for name, _members in member_sets
        },
    }
    with open(
        os.path.join(directory, SHARDED_MANIFEST_NAME), "w", encoding="utf-8"
    ) as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
        handle.write("\n")


def is_sharded_index(directory: str) -> bool:
    """Whether ``directory`` holds a sharded index layout."""
    meta_path = os.path.join(directory, SHARDED_META_NAME)
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(meta, dict) and meta.get("kind") == SHARDED_KIND


def _verify_sharded_manifest(directory: str) -> Dict[str, object]:
    path = os.path.join(directory, SHARDED_MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise IndexPersistenceError(
            f"sharded index has no manifest: {path}"
        ) from None
    except json.JSONDecodeError as exc:
        raise IndexPersistenceError(f"corrupt sharded manifest: {exc}")
    for rel, expected in manifest.get("files", {}).items():
        actual = _sha256_file(os.path.join(directory, rel))
        if actual != expected:
            raise IndexPersistenceError(
                f"sharded manifest mismatch for {rel}: "
                f"expected {expected}, found {actual}"
            )
    for name, expected in manifest.get("shards", {}).items():
        shard_manifest = os.path.join(directory, name, "manifest.json")
        if not os.path.exists(shard_manifest):
            raise IndexPersistenceError(
                f"sharded manifest lists missing locale {name!r}"
            )
        actual = _sha256_file(shard_manifest)
        if actual != expected:
            raise IndexPersistenceError(
                f"sharded manifest mismatch for locale {name!r}: "
                f"expected {expected}, found {actual}"
            )
    return manifest


def _reconstruct_union(
    locales: Dict[str, Locale],
    shard_names: List[str],
    cut_edges: List[Tuple[int, int]],
    names: Dict[int, str],
    num_vertices: int,
) -> Graph:
    """Rebuild the live union graph from shard subgraphs + cut table."""
    labels: List[Optional[str]] = [None] * num_vertices
    for shard_name in shard_names:
        locale = locales[shard_name]
        for local, g in enumerate(locale.global_ids):
            labels[g] = locale.index.base_graph.label(local)
    if any(label is None for label in labels):
        raise IndexPersistenceError(
            "sharded layout does not cover every vertex"
        )
    graph = Graph()
    for v, label in enumerate(labels):
        graph.add_vertex(label, name=names.get(v))
    for shard_name in shard_names:
        locale = locales[shard_name]
        ids = locale.global_ids
        for lu, lv in locale.index.base_graph.edges():
            graph.add_edge(ids[lu], ids[lv])
    for u, v in cut_edges:
        graph.add_edge(u, v)
    return graph


def load_sharded_index(
    directory: str,
    ontology: OntologyGraph,
    replay_wal_tail: bool = True,
    base_graph: Optional[Graph] = None,
) -> ShardedIndex:
    """Load a sharded index: locales, union graph, then the WAL tail.

    Every locale is an ordinary v4/v3 index directory loaded through
    :func:`repro.core.persistence.load_index` (manifest-verified,
    mmap-backed for v4); the top-level manifest additionally pins each
    locale manifest's digest.  WAL ops recovered from the shared
    ``mutations.wal`` replay through the facade, which routes them to
    the owning locale(s).
    """
    from repro.core.persistence import load_index
    from repro.core.wal import WAL_NAME, recover_wal, replay_wal

    if not is_sharded_index(directory):
        raise IndexPersistenceError(
            f"not a sharded index directory: {directory}"
        )
    _verify_sharded_manifest(directory)
    with open(
        os.path.join(directory, SHARDED_LAYOUT_NAME), "r", encoding="utf-8"
    ) as handle:
        layout = json.load(handle)

    locales: Dict[str, Locale] = {}
    for entry in layout["locales"]:
        name = entry["name"]
        index = load_index(os.path.join(directory, name), ontology)
        locales[name] = Locale(
            name=name,
            index=index,
            global_ids=list(entry["global_ids"]),
            build_seconds=float(entry.get("build_seconds", 0.0)),
        )
    shard_names = sorted(
        (name for name in locales if name != ZONE_NAME),
        key=lambda n: int(n.split("-")[1]),
    )
    cut_edges = [tuple(edge) for edge in layout["cut_edges"]]
    num_vertices = int(layout["num_vertices"])
    names = {int(v): n for v, n in layout.get("names", {}).items()}

    if base_graph is None:
        base_graph = _reconstruct_union(
            locales, shard_names, cut_edges, names, num_vertices
        )

    shard_of = [0] * num_vertices
    shard_vertices: List[List[int]] = []
    for s, shard_name in enumerate(shard_names):
        members = locales[shard_name].global_ids
        shard_vertices.append(list(members))
        for v in members:
            shard_of[v] = s
    zone = locales.get(ZONE_NAME)
    plan = ShardPlan(
        num_shards=len(shard_names),
        halo_radius=int(layout["halo_radius"]),
        shard_of=shard_of,
        shard_vertices=shard_vertices,
        cut_edges=sorted(cut_edges),
        portals=sorted({v for edge in cut_edges for v in edge}),
        zone_vertices=list(zone.global_ids) if zone is not None else [],
    )
    stored = layout.get("build_kwargs", {})
    cost_kwargs = {}
    if stored.get("cost_exact"):
        cost_kwargs["exact"] = True
    if stored.get("cost_num_samples") is not None:
        cost_kwargs["num_samples"] = stored["cost_num_samples"]
    build_kwargs: Dict[str, object] = {
        "num_layers": stored.get("num_layers"),
        "theta": stored.get("theta", 1.0),
        "max_mappings": stored.get("max_mappings"),
        "cost_params": CostParams(**cost_kwargs) if cost_kwargs else None,
    }
    sharded = _assemble(plan, locales, ontology, base_graph, build_kwargs)

    if replay_wal_tail:
        wal_path = os.path.join(directory, WAL_NAME)
        if os.path.exists(wal_path):
            records, _tail = recover_wal(wal_path)
            replay_wal(sharded, records)
    return sharded


def load_any_index(
    directory: str, ontology: OntologyGraph, replay_wal_tail: bool = True
):
    """Load ``directory`` as a sharded or monolithic index (auto-detect)."""
    from repro.core.persistence import load_index

    if is_sharded_index(directory):
        return load_sharded_index(
            directory, ontology, replay_wal_tail=replay_wal_tail
        )
    return load_index(directory, ontology, replay_wal_tail=replay_wal_tail)


# ----------------------------------------------------------------------
# Scatter-gather evaluation
# ----------------------------------------------------------------------
class ShardedEvaluator:
    """Fan a query out to per-locale evaluators and merge the top-k.

    Mirrors :class:`~repro.core.evaluator.HierarchicalEvaluator`'s
    ``evaluate`` / ``evaluate_resilient`` / ``evaluate_many`` surface so
    the serve stack and CLI treat it as a drop-in evaluator.

    Scatter: locales that lack one of the query's keywords cannot host
    an answer containing all of them (answers are locale-connected) and
    are pruned.  Unbudgeted queries fan out on a thread pool; budgeted
    queries run locales *sequentially* with :meth:`Budget.sub` children
    (the ledger is not thread-safe, and sequential scatter keeps the
    remainder flowing to later locales, mirroring
    ``evaluate_resilient``'s attempt plan).

    Gather: answers translate to global vertex ids, the best answer per
    root wins (min ``(score, signature)``), and the union re-ranks
    through :func:`~repro.search.base.top_k`.  Degraded locales merge
    into one :class:`DegradedResult` whose ``lower_bound`` is the
    minimum over the degraded locales' bounds — the prefix-soundness
    cut-off: anything a degraded locale failed to emit scores at or
    above its bound, so the merged ranking is provably complete below
    the minimum.
    """

    def __init__(
        self,
        sharded: ShardedIndex,
        algorithm: KeywordSearchAlgorithm,
        *,
        beta: float = 0.5,
        generation: Optional[str] = None,
        use_spec_order: bool = True,
        verify_mode: str = "exact",
        allow_layer_zero: bool = True,
        cache_size: int = 128,
        scatter_workers: int = 4,
    ) -> None:
        if not hasattr(algorithm, "best_answer_for_root"):
            raise ConfigurationError(
                f"sharded evaluation requires a rooted algorithm "
                f"(per-root merge); {algorithm.name!r} does not expose "
                f"best_answer_for_root"
            )
        d_max = getattr(algorithm, "d_max", None)
        if d_max is not None and sharded.halo_radius < 2 * d_max:
            raise ConfigurationError(
                f"halo radius {sharded.halo_radius} is too small for "
                f"d_max={d_max}: portal-spanning answers need "
                f"halo_radius >= 2*d_max = {2 * d_max}"
            )
        if generation is None:
            generation = "root-verify"
        self.sharded = sharded
        self.algorithm = algorithm
        self.scatter_workers = max(1, scatter_workers)
        self._evaluators: List[Tuple[Locale, HierarchicalEvaluator]] = [
            (
                locale,
                HierarchicalEvaluator(
                    locale.index,
                    algorithm,
                    beta=beta,
                    generation=generation,
                    use_spec_order=use_spec_order,
                    verify_mode=verify_mode,
                    allow_layer_zero=allow_layer_zero,
                    cache_size=cache_size,
                ),
            )
            for locale in sharded.locales
        ]

    # -- scatter helpers ----------------------------------------------
    def _check_query(self, query: KeywordQuery) -> None:
        graph = self.sharded.base_graph
        for keyword in query.keywords:
            if graph.label_support(keyword) == 0:
                raise QueryError(
                    f"keyword {keyword!r} does not occur in the graph"
                )

    def _active(
        self, query: KeywordQuery
    ) -> List[Tuple[Locale, HierarchicalEvaluator]]:
        """Locales holding every keyword (the others cannot answer)."""
        active = []
        for locale, evaluator in self._evaluators:
            graph = locale.index.base_graph
            if all(graph.label_support(kw) > 0 for kw in query.keywords):
                active.append((locale, evaluator))
        return active

    def _locale_layer(
        self, locale: Locale, layer: Optional[int]
    ) -> Optional[int]:
        """Clamp a forced layer to what the locale actually has.

        A forced layer is a per-locale *hint*: locales are built
        independently, so layer ``m``'s configurations differ between
        them and a layer that collides (or does not exist) in one
        locale falls back to that locale's own cost-optimal choice.
        """
        if layer is None:
            return None
        return min(layer, locale.index.num_layers)

    def _translate(self, locale: Locale, answer: Answer) -> Answer:
        ids = locale.global_ids
        return Answer.make(
            {kw: ids[v] for kw, v in answer.keyword_nodes},
            score=answer.score,
            root=ids[answer.root] if answer.root is not None else None,
            vertices=tuple(ids[v] for v in answer.vertices),
            edges=tuple((ids[u], ids[v]) for u, v in answer.edges),
        )

    @staticmethod
    def _merge_pool(pool: Dict[object, Answer], answers: Iterable[Answer]):
        for answer in answers:
            key = answer.root
            best = pool.get(key)
            if best is None or (answer.score, answer.signature()) < (
                best.score,
                best.signature(),
            ):
                pool[key] = answer

    def _canonicalize(self, pool: Dict[object, Answer], query: KeywordQuery):
        """Re-materialize each merged answer on the union graph.

        A locale reproduces the globally optimal *score* for its roots,
        but shortest-path trees (and equal-distance keyword nodes) can
        tie, and the locale's adjacency order may break those ties
        differently than the full graph's.  The monolithic root-verify
        pipeline emits ``best_answer_for_root`` over the base graph, so
        running the merged roots through the same function on the union
        graph makes the sharded output byte-identical, signatures and
        trees included.
        """
        graph = self.sharded.base_graph
        canonical: List[Answer] = []
        for answer in pool.values():
            best = (
                self.algorithm.best_answer_for_root(
                    graph, answer.root, query
                )
                if answer.root is not None
                else None
            )
            canonical.append(best if best is not None else answer)
        return canonical

    def _evaluate_locale(
        self,
        locale: Locale,
        evaluator: HierarchicalEvaluator,
        query: KeywordQuery,
        *,
        layer: Optional[int],
        k: Optional[int],
        max_generalized: Optional[int],
        budget: Optional[Budget],
        resilient: bool,
    ):
        """One locale's evaluation, with forced-layer fallback + timing."""
        start = monotonic_now()
        hint = self._locale_layer(locale, layer)
        try:
            if resilient:
                try:
                    result = evaluator.evaluate_resilient(
                        query,
                        budget=budget,
                        layer=hint,
                        k=k,
                        max_generalized=max_generalized,
                    )
                except QueryError:
                    if hint is None:
                        raise
                    result = evaluator.evaluate_resilient(
                        query,
                        budget=budget,
                        layer=None,
                        k=k,
                        max_generalized=max_generalized,
                    )
            else:
                try:
                    result = evaluator.evaluate(
                        query,
                        layer=hint,
                        k=k,
                        max_generalized=max_generalized,
                        budget=budget,
                    )
                except QueryError:
                    if hint is None:
                        raise
                    result = evaluator.evaluate(
                        query,
                        layer=None,
                        k=k,
                        max_generalized=max_generalized,
                        budget=budget,
                    )
            return result
        finally:
            if OBS.enabled:
                OBS.metrics.observe(
                    f"shard.scatter.{locale.name}.seconds",
                    monotonic_now() - start,
                )

    # -- the evaluator surface ----------------------------------------
    def evaluate(
        self,
        query: KeywordQuery,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> EvalResult:
        """Exact scatter-gather ``eval_Ont`` across all locales.

        Raises :class:`BudgetExceeded` on exhaustion like the monolithic
        evaluator; because unscanned locales may hold arbitrarily good
        answers, the exception carries *no* proven prefix (use
        :meth:`evaluate_resilient` for sound partial results).
        """
        self._check_query(query)
        if k is None:
            k = getattr(self.algorithm, "k", None)
        if OBS.enabled:
            OBS.metrics.inc("shard.queries")
        active = self._active(query)
        results: List[EvalResult] = []
        if budget is None and len(active) > 1 and self.scatter_workers > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.scatter_workers, len(active))
            ) as pool:
                futures = [
                    pool.submit(
                        self._evaluate_locale,
                        locale,
                        evaluator,
                        query,
                        layer=layer,
                        k=k,
                        max_generalized=max_generalized,
                        budget=None,
                        resilient=False,
                    )
                    for locale, evaluator in active
                ]
                results = [f.result() for f in futures]
        else:
            for locale, evaluator in active:
                try:
                    results.append(
                        self._evaluate_locale(
                            locale,
                            evaluator,
                            query,
                            layer=layer,
                            k=k,
                            max_generalized=max_generalized,
                            budget=budget,
                            resilient=False,
                        )
                    )
                except BudgetExceeded as exc:
                    # A partial scatter proves nothing globally.
                    exc.partial = []
                    exc.lower_bound = None
                    exc.unproven = []
                    exc.partial_result = None
                    raise
        pool_best: Dict[object, Answer] = {}
        for (locale, _evaluator), result in zip(active, results):
            self._merge_pool(
                pool_best,
                (self._translate(locale, a) for a in result.answers),
            )
        merged = top_k(self._canonicalize(pool_best, query), k)
        return EvalResult(
            answers=merged,
            layer=max((r.layer for r in results), default=0),
            breakdown=TimeBreakdown(),
            num_generalized=sum(r.num_generalized for r in results),
            num_candidates=sum(r.num_candidates for r in results),
            num_verified=sum(r.num_verified for r in results),
        )

    def evaluate_resilient(
        self,
        query: KeywordQuery,
        budget: Optional[Budget] = None,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        retry_coarser: bool = True,
    ):
        """Scatter-gather that degrades instead of raising on exhaustion.

        Budgeted scatter is sequential: locale ``i`` of ``n`` still
        pending gets ``budget.sub(1/(n-i))`` — an even split of the
        *remaining* ledger — and the final locale inherits the whole
        remainder, so an early locale finishing under budget donates its
        slack to later ones.
        """
        self._check_query(query)
        if k is None:
            k = getattr(self.algorithm, "k", None)
        if OBS.enabled:
            OBS.metrics.inc("shard.queries")
        active = self._active(query)
        outcomes: List[object] = []
        if budget is None and len(active) > 1 and self.scatter_workers > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.scatter_workers, len(active))
            ) as pool:
                futures = [
                    pool.submit(
                        self._evaluate_locale,
                        locale,
                        evaluator,
                        query,
                        layer=layer,
                        k=k,
                        max_generalized=max_generalized,
                        budget=None,
                        resilient=True,
                    )
                    for locale, evaluator in active
                ]
                outcomes = [f.result() for f in futures]
        else:
            for i, (locale, evaluator) in enumerate(active):
                if budget is None:
                    sub = None
                elif i == len(active) - 1:
                    sub = budget
                else:
                    sub = budget.sub(1.0 / (len(active) - i))
                outcomes.append(
                    self._evaluate_locale(
                        locale,
                        evaluator,
                        query,
                        layer=layer,
                        k=k,
                        max_generalized=max_generalized,
                        budget=sub,
                        resilient=True,
                    )
                )

        degraded = [
            (locale, outcome)
            for (locale, _e), outcome in zip(active, outcomes)
            if isinstance(outcome, DegradedResult)
        ]
        pool_best: Dict[object, Answer] = {}
        for (locale, _evaluator), outcome in zip(active, outcomes):
            self._merge_pool(
                pool_best,
                (self._translate(locale, a) for a in outcome.answers),
            )
            if isinstance(outcome, DegradedResult):
                self._merge_pool(
                    pool_best,
                    (self._translate(locale, a) for a in outcome.unranked),
                )
        merged = top_k(self._canonicalize(pool_best, query), k)
        layer_used = max((o.layer for o in outcomes), default=0)
        if not degraded:
            return EvalResult(
                answers=merged,
                layer=layer_used,
                breakdown=TimeBreakdown(),
                num_generalized=sum(o.num_generalized for o in outcomes),
                num_candidates=sum(o.num_candidates for o in outcomes),
                num_verified=sum(o.num_verified for o in outcomes),
            )

        if OBS.enabled:
            OBS.metrics.inc("shard.degraded")
        lower_bound = min(o.lower_bound for _l, o in degraded)
        proven = [a for a in merged if a.score < lower_bound]
        unranked = [a for a in merged if a.score >= lower_bound]
        attempts: List[DegradedAttempt] = []
        for locale, outcome in degraded:
            for attempt in outcome.attempts:
                attempts.append(
                    DegradedAttempt(
                        layer=attempt.layer,
                        reason=f"{locale.name}: {attempt.reason}",
                        expansions=attempt.expansions,
                        num_generalized=attempt.num_generalized,
                        num_candidates=attempt.num_candidates,
                        proven=attempt.proven,
                        unproven=attempt.unproven,
                    )
                )
        stats = None
        if budget is not None:
            stats = DegradationStats(
                expansions_consumed=budget.expansions,
                expansions_remaining=budget.remaining_expansions(),
                time_remaining_seconds=budget.remaining_time(),
                layers_attempted=sorted(
                    {a.layer for a in attempts}
                ),
            )
        first = degraded[0][1]
        return DegradedResult(
            answers=proven,
            layer=layer_used,
            reason=(
                f"{len(degraded)}/{len(active)} locale(s) degraded "
                f"({degraded[0][0].name}: {first.reason})"
            ),
            lower_bound=lower_bound,
            unranked=unranked,
            attempts=attempts,
            breakdown=TimeBreakdown(),
            stats=stats,
        )

    def evaluate_many(
        self,
        queries: Sequence[KeywordQuery],
        *,
        layer: Optional[int] = None,
        k: Optional[int] = None,
        max_generalized: Optional[int] = None,
        budget_factory: Optional[Callable[[], Optional[Budget]]] = None,
        workers: Optional[int] = None,
        resilient: bool = True,
        return_exceptions: bool = False,
    ) -> List[object]:
        """Batched scatter-gather; mirrors the monolithic signature."""

        def run_one(query: KeywordQuery) -> object:
            budget = budget_factory() if budget_factory is not None else None
            try:
                if resilient:
                    return self.evaluate_resilient(
                        query,
                        budget=budget,
                        layer=layer,
                        k=k,
                        max_generalized=max_generalized,
                    )
                return self.evaluate(
                    query,
                    layer=layer,
                    k=k,
                    max_generalized=max_generalized,
                    budget=budget,
                )
            except Exception as exc:  # noqa: BLE001 - mirrored contract
                if return_exceptions:
                    return exc
                raise

        if workers is not None and workers > 1 and len(queries) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(queries))
            ) as pool:
                return list(pool.map(run_one, queries))
        return [run_one(query) for query in queries]
