"""Plain-text table rendering for benchmark output.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Print a titled table (benchmarks route all output through this)."""
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def percent_reduction(baseline: float, improved: float) -> float:
    """``(baseline - improved) / baseline`` as a percentage.

    The paper's headline numbers ("BiG-index reduced the runtimes of
    Blinks by 50.5%") are this metric averaged over queries.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
