"""Fixtures and timing loops shared by the benchmark files.

Scale
-----
All benchmarks run on the shape-preserving dataset stand-ins at
``BENCH_SCALE`` (default 0.2, i.e. ~2,000-vertex graphs) so the full suite
finishes in minutes of pure Python.  Set the ``REPRO_BENCH_SCALE``
environment variable to grow them (e.g. ``REPRO_BENCH_SCALE=1.0`` for the
10k-vertex defaults).

Methodology
-----------
Mirrors Sec. 6: per-graph algorithm indexes (Blinks' bi-level index,
r-clique's neighbor lists) are built *offline* and excluded from query
times; each query is timed over ``repeats`` runs and averaged ("the
reported runtimes are the average of 10 runs"); direct evaluation and
BiG-index evaluation run the *same* algorithm implementation, so measured
differences isolate the index.
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.cost import CostParams
from repro.core.evaluator import EvalResult
from repro.core.index import BiGIndex
from repro.core.plugins import BoostedSearch, boost
from repro.datasets.knowledge import Dataset, dbpedia_like, imdb_like, yago_like
from repro.datasets.workloads import QuerySpec, benchmark_queries
from repro.search.base import KeywordSearchAlgorithm

#: Dataset scale factor for all benchmarks (env-overridable).  The
#: default of 1.0 gives ~10k-vertex graphs — small enough for pure Python,
#: large enough that the workload queries do measurable traversal work.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Default number of timed repetitions per query (paper: 10).
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

_DATASET_MAKERS: Dict[str, Callable[[float], Dataset]] = {
    "yago-like": lambda scale: yago_like(scale=scale),
    "dbpedia-like": lambda scale: dbpedia_like(scale=scale),
    "imdb-like": lambda scale: imdb_like(scale=scale),
}

_dataset_cache: Dict[Tuple[str, float], Dataset] = {}
_index_cache: Dict[Tuple[str, float, int], BiGIndex] = {}


def default_dataset(name: str, scale: Optional[float] = None) -> Dataset:
    """The named dataset at benchmark scale, cached across benchmarks."""
    scale = BENCH_SCALE if scale is None else scale
    key = (name, scale)
    if key not in _dataset_cache:
        _dataset_cache[key] = _DATASET_MAKERS[name](scale)
    return _dataset_cache[key]


def build_index(
    dataset: Dataset,
    num_layers: int = 3,
    num_samples: int = 25,
) -> BiGIndex:
    """A default BiG-index over a dataset, cached by (name, scale, layers).

    Uses the paper's default setting (large theta so every label
    generalizes once per layer) with a reduced cost-model sample count —
    candidate ranking, not estimate precision, is what the default build
    needs.
    """
    key = (dataset.name, dataset.graph.num_vertices, num_layers)
    if key not in _index_cache:
        _index_cache[key] = BiGIndex.build(
            dataset.graph,
            dataset.ontology,
            num_layers=num_layers,
            cost_params=CostParams(num_samples=num_samples),
        )
    return _index_cache[key]


@dataclass
class QueryComparison:
    """Direct vs BiG-index timings for one benchmark query."""

    qid: str
    keywords: Tuple[str, ...]
    direct_seconds: float
    boosted_seconds: float
    layer: int
    #: phase -> seconds from the boosted run (explore / specialize / generate).
    phases: Dict[str, float] = field(default_factory=dict)
    direct_answers: int = 0
    boosted_answers: int = 0

    @property
    def reduction_percent(self) -> float:
        """Runtime reduction of BiG-index over direct evaluation."""
        if self.direct_seconds <= 0:
            return 0.0
        return 100.0 * (self.direct_seconds - self.boosted_seconds) / (
            self.direct_seconds
        )


def compare_on_queries(
    dataset: Dataset,
    algorithm: KeywordSearchAlgorithm,
    index: BiGIndex,
    queries: Sequence[QuerySpec],
    layer: Optional[int] = None,
    repeats: int = BENCH_REPEATS,
    generation: Optional[str] = "path",
    verify_mode: str = "trust",
    max_generalized: Optional[int] = 60,
    beta: float = 0.5,
    allow_layer_zero: bool = True,
) -> List[QueryComparison]:
    """Time every query directly and through BiG-index.

    Defaults follow the paper's pipeline: path-based answer generation
    (Sec. 4.3.3) with qualification-trusted scores.  Queries whose
    keywords collide at the requested layer, or that raise for
    dataset-specific reasons, are skipped (mirroring the paper's practice
    of reporting only evaluable queries).
    """
    direct_searcher = algorithm.bind(dataset.graph)  # offline
    boosted = boost(
        algorithm,
        index,
        beta=beta,
        generation=generation,
        verify_mode=verify_mode,
        allow_layer_zero=allow_layer_zero,
    )
    boosted.warm()  # offline per-layer index builds

    comparisons: List[QueryComparison] = []
    for spec in queries:
        query = spec.query
        if layer is not None and layer > 0 and not index.query_distinct_at(
            query, layer
        ):
            continue
        direct_times: List[float] = []
        boosted_times: List[float] = []
        direct_answers = 0
        last_result: Optional[EvalResult] = None
        for _ in range(repeats):
            start = time.perf_counter()
            direct = direct_searcher.search(query)
            direct_times.append(time.perf_counter() - start)
            direct_answers = len(direct)

            start = time.perf_counter()
            last_result = boosted.evaluate(
                query, layer=layer, max_generalized=max_generalized
            )
            boosted_times.append(time.perf_counter() - start)
        assert last_result is not None
        comparisons.append(
            QueryComparison(
                qid=spec.qid,
                keywords=spec.keywords,
                direct_seconds=statistics.mean(direct_times),
                boosted_seconds=statistics.mean(boosted_times),
                layer=last_result.layer,
                phases=last_result.breakdown.as_dict(),
                direct_answers=direct_answers,
                boosted_answers=len(last_result.answers),
            )
        )
    return comparisons


def standard_workload(dataset: Dataset, seed: int = 7) -> List[QuerySpec]:
    """The Tab. 4-style Q1-Q8 workload for a dataset (deterministic).

    Mirrors the paper's query selection: keywords with substantial support
    (the paper's count > 3000 corresponds to ~0.1% of vertices; we use 1%
    at reproduction scale so queries do measurable traversal work) and
    answer-rich topics (>= 10 distinct-root answers at d_max = 5).
    """
    num_vertices = dataset.graph.num_vertices
    # Support ladder: start at 1% of vertices and relax until the full
    # arity mix is satisfiable on this dataset.
    for divisor in (100, 200, 400, 1000):
        min_support = max(5, num_vertices // divisor)
        try:
            return benchmark_queries(
                dataset.graph,
                seed=seed,
                min_support=min_support,
                min_answers=10,
                ontology=dataset.ontology,
            )
        except Exception:
            continue
    # Last resort: unfiltered workload.
    return benchmark_queries(dataset.graph, seed=seed)
