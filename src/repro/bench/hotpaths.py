"""Pinned hot-path micro-suite and benchmark-regression gate.

The three hot paths this PR optimized — partition refinement, CSR-backed
search, and parallel index construction — each get a fixed, seeded
workload here so their cost can be tracked as a number instead of a
vibe.  ``repro-bigindex bench`` runs the suite and prints it;
``repro-bigindex bench --check`` replays it against the committed
baseline (``BENCH_hotpaths.json``) and exits non-zero when a timing
regresses beyond the tolerance band, which is how CI catches an
accidental de-optimization of a path no functional test times.

Suite (full mode)
-----------------
* ``refine.<graph>`` — ``maximal_bisimulation`` on every graph of the
  differential-verification corpus plus ``synt-2k``; best of ``repeats``
  runs.  ``synt-deep-3k`` is the depth-stress case where the worklist
  algorithm's asymptotic advantage shows.
* ``search.<algo>`` — the four plugged searchers over the seeded probe
  queries on ``synt-1k``; best-of-``repeats`` wall-clock without a
  budget, plus a second budgeted pass recording the exact node-expansion
  count, which is machine-independent.
* ``build.synt-1k`` — a 2-layer ``BiGIndex.build``, serial and with a
  worker pool; best of two runs.
* ``shard.build.synt-100k`` — the sharded build over the
  community-structured 100k-vertex dataset: plan once, then build the 4
  shards + portal zone serially and with 4 worker processes.  Digests
  must match (worker count can never change the index) and the
  serial/parallel ratio is gated at ``SHARD_SPEEDUP_FLOOR`` on hosts
  with >= ``SHARD_SPEEDUP_MIN_CPUS`` cores.
* ``shard.query.synt-1k`` — scatter-gather top-k through
  ``ShardedEvaluator`` over a 4-shard synt-1k; every probe answer is
  byte-checked against the monolithic evaluator before timing.
* ``persist.save.*`` / ``persist.load.cold.*`` — round-trip the query
  index through both on-disk formats: v3 text files and the v4 mmap
  container.  Cold loads include full manifest verification (every
  section hashed), so the numbers are what a process restart actually
  pays.  ``persist.load.v3_vs_v4.speedup`` and the v4 load's
  resident-set delta are recorded as evidence, not gated (the speedup
  floor is an acceptance criterion checked at bless time; RSS is
  machine-bound).
* ``serve.coldstart`` — restart-to-first-answer: load the v4 index from
  disk, bind a boosted searcher, and answer the first probe query.  Its
  answer count is exact-gated.
* ``obs.serve.overhead`` — the serve.qps workload twice: once with all
  request observability off (no access log, no flight recorder, no SLO
  window) and once fully lit.  The on/off ratio is gated at
  ``OBS_OVERHEAD_LIMIT`` (2%) against the run's *own* pair, so the gate
  is machine-independent; answer totals are exact-gated.
* ``query.cold`` / ``query.warm`` / ``query.batch`` — the full boosted
  query path (``eval_Ont`` via ``boost-bkws``) over the probe queries on
  a 2-layer index: cold drops every cache (CSR, postings, ``Gen``/
  ``Spec`` memos, result cache) and rebinds the searchers per repeat;
  warm reuses a long-lived evaluator so repeats are served from the
  query-result cache; batch runs the workload (queries x 4) through
  ``evaluate_many``.  The answer totals are gated exactly — the caches
  must never change what a query returns.

Cross-machine gating
--------------------
Wall-clock baselines are machine-bound, so the gate normalizes: each run
also times a fixed pure-Python calibration kernel, and the comparison
scales the baseline's timings by the ratio of calibration times before
applying the tolerance.  A CI runner 2x slower than the machine that
blessed the baseline therefore gets a 2x allowance — the gate measures
*the code*, not the hardware.  Deterministic metrics (block counts,
expansion counts, layer sizes) must match exactly, unscaled.
"""

from __future__ import annotations

import json
import platform
import random
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.bisim.refinement import BisimDirection, maximal_bisimulation
from repro.core.cost import CostParams
from repro.core.index import BiGIndex
from repro.datasets.synthetic import (
    deep_dataset,
    synthetic_dataset,
    verification_corpus,
)
from repro.core.plugins import boost
from repro.obs.runtime import instrumented
from repro.search.banks import BackwardKeywordSearch
from repro.search.base import KeywordSearchAlgorithm
from repro.search.bidirectional import BidirectionalSearch
from repro.search.blinks import Blinks
from repro.search.rclique import RClique
from repro.serve.client import ServeClient
from repro.serve.lifecycle import EngineRuntime
from repro.serve.server import serve_in_thread
from repro.serve.service import QueryService
from repro.utils.budget import Budget
from repro.utils.timers import monotonic_now
from repro.verify.runner import probe_queries

#: Metric dictionary: flat ``"group.case.metric" -> value``.  Values are
#: floats (seconds), ints (counts), or lists of ints (layer sizes).
Metrics = Dict[str, object]

#: Absolute slack added on top of the relative tolerance so sub-millisecond
#: entries (toy graphs) don't trip the gate on scheduler noise.
ABS_SLACK_SECONDS = 0.005

#: Keys gated for exact equality (machine-independent determinism).
EXACT_SUFFIXES = (".blocks", ".expansions", ".layer_sizes", ".answers")

#: Ceiling on ``obs.serve.overhead.ratio`` — serving with full
#: observability on (access log, slow-query log, flight recorder, SLO
#: window) may cost at most 2% of throughput versus everything off.
OBS_OVERHEAD_LIMIT = 1.02

#: Per-request absolute noise floor for the overhead gate: when the
#: serve passes are so fast that 2% dips under per-request scheduler
#: jitter (single-CPU CI containers see tens of microseconds of it),
#: the gate requires the measured on-off delta to also exceed this
#: many seconds *per request* before failing.
OBS_SLACK_PER_REQUEST = 25e-6

#: Floor on ``shard.build.synt-100k.speedup`` — 4 per-shard build
#: processes must finish the sharded build at least this much faster
#: than the same builds run serially.
SHARD_SPEEDUP_FLOOR = 2.0

#: The speedup floor only binds on hosts with at least this many CPUs;
#: a 1-CPU container runs both arms at the same wall-clock no matter
#: how parallel the build is, so there the ratio is recorded, not gated.
SHARD_SPEEDUP_MIN_CPUS = 4


def machine_info() -> Dict[str, object]:
    """Where a measurement was taken (recorded, never compared)."""
    import os

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def peak_rss_kib() -> Optional[int]:
    """Peak resident set size of this process in KiB (None off-Linux)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def current_rss_kib() -> Optional[int]:
    """Resident set size *right now* in KiB (None off-Linux).

    Unlike :func:`peak_rss_kib` this can go down, so deltas across a
    single operation are meaningful — e.g. how much resident memory a
    cold index load actually faults in.
    """
    import os

    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
    except (OSError, ValueError, IndexError):  # pragma: no cover
        return None
    return pages * os.sysconf("SC_PAGESIZE") // 1024


def calibration_seconds(repeats: int = 3) -> float:
    """A fixed pure-Python kernel timing interpreter+machine speed.

    Deliberately *not* repro code (gating repro code against itself would
    hide uniform slowdowns): signature-shaped dict/tuple churn over fixed
    pseudo-random data, best of ``repeats``.
    """
    rng = random.Random(0)
    data = [
        [rng.randrange(200) for _ in range(8)] for _ in range(2000)
    ]
    best = None
    for _ in range(repeats):
        start = monotonic_now()
        acc: Dict[Tuple[int, ...], int] = {}
        for row in data:
            key = tuple(sorted(set(row)))
            acc[key] = acc.get(key, 0) + 1
        elapsed = monotonic_now() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _best_of(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """(best wall-clock, last result) over ``repeats`` calls."""
    best = None
    result: object = None
    for _ in range(repeats):
        start = monotonic_now()
        result = fn()
        elapsed = monotonic_now() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _refine_counters(graph) -> Dict[str, int]:
    """One metrics-only refinement pass: the telemetry counters.

    Runs outside the timed loop so counter collection can never pollute
    the wall-clock metric; the counts themselves are deterministic.
    """
    with instrumented(trace=False) as inst:
        maximal_bisimulation(graph, BisimDirection.SUCCESSORS)
    return inst.metrics.counters()


def _search_algorithms(d_max: int = 3, k: int = 10) -> Dict[str, KeywordSearchAlgorithm]:
    return {
        "bkws": BackwardKeywordSearch(d_max=d_max, k=k),
        "bdws": BidirectionalSearch(d_max=d_max, k=k),
        "blinks": Blinks(d_max=d_max, k=k),
        "r-clique": RClique(radius=2, k=k),
    }


def run_suite(
    quick: bool = False,
    seed: int = 0,
    workers: int = 4,
    repeats: int = 3,
) -> Metrics:
    """Run the pinned micro-suite and return its flat metric dict.

    ``quick`` restricts to the toy corpus and skips the index build —
    a smoke-sized subset for tests; its numbers are not comparable to a
    full-mode baseline (:func:`compare` refuses to mix modes).
    """
    metrics: Metrics = {"mode": "quick" if quick else "full"}
    metrics["calibration.seconds"] = calibration_seconds(repeats)

    # --- refinement over the verification corpus -----------------------
    for name, graph, _ontology in verification_corpus(quick=quick, seed=seed):
        elapsed, blocks = _best_of(
            lambda g=graph: maximal_bisimulation(g, BisimDirection.SUCCESSORS),
            repeats,
        )
        metrics[f"refine.{name}.seconds"] = elapsed
        metrics[f"refine.{name}.blocks"] = len(set(blocks))
        metrics[f"counters.refine.{name}"] = _refine_counters(graph)

    if not quick:
        extra = [("synt-2k", synthetic_dataset("synt-2k", seed=seed)[0])]
        # synt-deep-1k: the smaller depth-stress case (synt-deep-3k is
        # already in the verification corpus).
        extra.append(("synt-deep-1k", deep_dataset("synt-deep-1k", seed=seed)[0]))
        for name, extra_graph in extra:
            elapsed, blocks = _best_of(
                lambda g=extra_graph: maximal_bisimulation(
                    g, BisimDirection.SUCCESSORS
                ),
                repeats,
            )
            metrics[f"refine.{name}.seconds"] = elapsed
            metrics[f"refine.{name}.blocks"] = len(set(blocks))
            metrics[f"counters.refine.{name}"] = _refine_counters(extra_graph)

    # --- seed search: the four plugged algorithms ----------------------
    if quick:
        corpus = verification_corpus(quick=True, seed=seed)
        search_graph = corpus[0][1]
    else:
        search_graph, ontology = synthetic_dataset("synt-1k", seed=seed)
    queries = probe_queries(search_graph)
    for name, algorithm in _search_algorithms().items():
        searcher = algorithm.bind(search_graph)

        def run_queries(s=searcher):
            for query in queries:
                s.search(query)

        elapsed, _ = _best_of(run_queries, repeats)
        metrics[f"search.{name}.seconds"] = elapsed
        # Second, budgeted pass: exact expansion counts (deterministic
        # across machines; timed separately so charge overhead doesn't
        # pollute the wall-clock metric).  Running it under metrics-only
        # instrumentation doubles as the accounting cross-check: the
        # telemetry counter and the budget ledger observe the same
        # charge_expansions() increments, so any drift is a bug.
        budget = Budget()
        with instrumented(trace=False) as inst:
            for query in queries:
                searcher.search(query, budget=budget)
        metrics[f"search.{name}.expansions"] = budget.expansions
        counted = inst.metrics.counter("search.expansions")
        if counted != budget.expansions:
            raise AssertionError(
                f"expansion accounting drift for {name}: telemetry "
                f"counted {counted}, budget charged {budget.expansions}"
            )
        metrics[f"counters.search.{name}"] = inst.metrics.counters()

    # --- full index build ----------------------------------------------
    if not quick:
        build_repeats = min(2, repeats)
        elapsed, index = _best_of(
            lambda: BiGIndex.build(
                search_graph.copy(share_label_table=True),
                ontology,
                num_layers=2,
                cost_params=CostParams(num_samples=25),
            ),
            build_repeats,
        )
        metrics["build.synt-1k.serial.seconds"] = elapsed
        metrics["build.synt-1k.layer_sizes"] = index.layer_sizes()

        elapsed, parallel_index = _best_of(
            lambda: BiGIndex.build(
                search_graph.copy(share_label_table=True),
                ontology,
                num_layers=2,
                cost_params=CostParams(num_samples=25),
                workers=workers,
            ),
            build_repeats,
        )
        metrics["build.synt-1k.parallel.seconds"] = elapsed
        metrics["build.synt-1k.parallel.workers"] = workers
        if parallel_index.layer_sizes() != index.layer_sizes():
            raise AssertionError(
                "parallel build diverged from serial: "
                f"{parallel_index.layer_sizes()} != {index.layer_sizes()}"
            )

    # --- sharded build: per-shard processes vs serial --------------------
    # The headline sharding claim: K per-shard builds in separate
    # processes finish ~K/ (K/cpus) faster than the same K builds run
    # serially.  synt-100k is the community-structured locality dataset
    # grown for exactly this measurement (small cut => small portal
    # zone); it is planned once so both arms time pure construction.
    # Digest equality between the arms is the determinism gate — worker
    # count must never change the built index.  The >= 2x speedup floor
    # is enforced by compare(), but only when the measuring host has
    # >= SHARD_SPEEDUP_MIN_CPUS cores (a single-CPU box cannot show a
    # wall-clock win no matter how parallel the build is).
    if not quick:
        import os as _shard_os

        from repro.core.sharding import (
            ShardedEvaluator,
            build_sharded,
            plan_shards,
        )

        shard_graph, shard_ontology = synthetic_dataset(
            "synt-100k", seed=seed
        )
        shard_kwargs = dict(
            num_layers=2, cost_params=CostParams(num_samples=25)
        )
        plan_elapsed, shard_plan = _best_of(
            lambda: plan_shards(shard_graph, 4, halo_radius=6), 1
        )
        metrics["shard.build.synt-100k.plan.seconds"] = plan_elapsed
        metrics["shard.build.synt-100k.cut_edges"] = len(
            shard_plan.cut_edges
        )
        metrics["shard.build.synt-100k.zone_vertices"] = len(
            shard_plan.zone_vertices
        )
        serial_elapsed, serial_sharded = _best_of(
            lambda: build_sharded(
                shard_graph.copy(share_label_table=True),
                shard_ontology,
                4,
                halo_radius=6,
                plan=shard_plan,
                workers=1,
                **shard_kwargs,
            ),
            1,
        )
        shard_workers = max(workers, 4)
        par_elapsed, par_sharded = _best_of(
            lambda: build_sharded(
                shard_graph.copy(share_label_table=True),
                shard_ontology,
                4,
                halo_radius=6,
                plan=shard_plan,
                workers=shard_workers,
                **shard_kwargs,
            ),
            1,
        )
        if par_sharded.state_digest() != serial_sharded.state_digest():
            raise AssertionError(
                "sharded build is worker-count dependent: parallel and "
                "serial digests differ"
            )
        metrics["shard.build.synt-100k.serial.seconds"] = serial_elapsed
        metrics["shard.build.synt-100k.parallel.seconds"] = par_elapsed
        metrics["shard.build.synt-100k.parallel.workers"] = shard_workers
        metrics["shard.build.synt-100k.layer_sizes"] = (
            serial_sharded.layer_sizes()
        )
        metrics["shard.build.synt-100k.host_cpus"] = (
            _shard_os.cpu_count() or 1
        )
        if par_elapsed > 0:
            metrics["shard.build.synt-100k.speedup"] = round(
                serial_elapsed / par_elapsed, 2
            )

        # --- scatter-gather query path vs the monolithic evaluator ------
        # Same probe workload as query.* but through ShardedEvaluator
        # over a 4-shard synt-1k; every answer is byte-checked against
        # the monolithic hierarchy (the exactness claim the shard drill
        # gates in verify, re-asserted on the bench corpus).
        from repro.core.evaluator import HierarchicalEvaluator

        query_sharded = build_sharded(
            search_graph.copy(share_label_table=True),
            ontology,
            4,
            halo_radius=6,
            workers=1,
            **shard_kwargs,
        )
        shard_algorithm = BackwardKeywordSearch(d_max=3, k=10)
        shard_eval = ShardedEvaluator(query_sharded, shard_algorithm)
        mono_index = BiGIndex.build(
            search_graph.copy(share_label_table=True),
            ontology,
            **shard_kwargs,
        )
        mono_eval = HierarchicalEvaluator(
            mono_index, shard_algorithm, allow_layer_zero=True
        )
        for query in queries:
            ours = [
                (a.score, a.signature())
                for a in shard_eval.evaluate(query).answers
            ]
            theirs = [
                (a.score, a.signature())
                for a in mono_eval.evaluate(query).answers
            ]
            if ours != theirs:
                raise AssertionError(
                    f"scatter-gather diverged from monolithic on "
                    f"{list(query.keywords)}: {ours!r} != {theirs!r}"
                )

        def run_scatter() -> int:
            return sum(
                len(shard_eval.evaluate(query).answers)
                for query in queries
            )

        elapsed, scatter_answers = _best_of(run_scatter, repeats)
        metrics["shard.query.synt-1k.seconds"] = elapsed
        metrics["shard.query.synt-1k.answers"] = scatter_answers
        metrics["shard.query.synt-1k.shards"] = query_sharded.num_shards
        metrics["shard.query.synt-1k.cut_edges"] = (
            query_sharded.cut_edge_count()
        )

        # The synt-100k locales are millions of heap objects; if they
        # stay reachable, every gen-2 GC pass during the serve sections
        # below traverses them and the reader p99s measure garbage
        # collection instead of the server.
        import gc as _shard_gc

        del shard_graph, shard_ontology, shard_plan
        del serial_sharded, par_sharded
        del query_sharded, shard_eval, mono_index, mono_eval
        _shard_gc.collect()

    # --- query serving: cold vs warm vs batched -------------------------
    if quick:
        qindex = BiGIndex.build(
            search_graph.copy(share_label_table=True),
            corpus[0][2],
            num_layers=2,
            cost_params=CostParams(exact=True),
        )
    else:
        qindex = index  # reuse the serial build from the section above

    def _drop_query_caches() -> None:
        """Everything lazily derived: CSR views, postings, memos, results."""
        qindex.drop_caches()
        qindex.base_graph.drop_caches()
        for layer in qindex.layers:
            layer.graph.drop_caches()

    def _boosted():
        return boost(
            BackwardKeywordSearch(d_max=3, k=10),
            qindex,
            allow_layer_zero=True,
        )

    def run_cold() -> int:
        _drop_query_caches()
        boosted = _boosted()
        return sum(
            len(boosted.evaluate_resilient(query).answers)
            for query in queries
        )

    elapsed, cold_answers = _best_of(run_cold, repeats)
    metrics["query.cold.seconds"] = elapsed
    metrics["query.cold.answers"] = cold_answers

    warm_boosted = _boosted()

    def run_warm() -> int:
        return sum(
            len(warm_boosted.evaluate_resilient(query).answers)
            for query in queries
        )

    populate_answers = run_warm()  # fill the result cache, untimed
    elapsed, warm_answers = _best_of(run_warm, repeats)
    for label, answers in (("populate", populate_answers),
                           ("warm", warm_answers)):
        if answers != cold_answers:
            raise AssertionError(
                f"query caching changed the answers: {label} run returned "
                f"{answers}, cold returned {cold_answers}"
            )
    metrics["query.warm.seconds"] = elapsed
    metrics["query.warm.answers"] = warm_answers
    if elapsed > 0:
        metrics["query.warm_speedup_vs_cold"] = round(
            metrics["query.cold.seconds"] / elapsed, 2
        )

    workload = list(queries) * 4

    def run_batch() -> int:
        _drop_query_caches()
        results = _boosted().evaluate_many(workload)
        return sum(len(result.answers) for result in results)

    elapsed, batch_answers = _best_of(run_batch, min(2, repeats))
    if batch_answers != 4 * cold_answers:
        raise AssertionError(
            f"batched serving changed the answers: {batch_answers} != "
            f"4 x {cold_answers}"
        )
    metrics["query.batch.seconds"] = elapsed
    metrics["query.batch.queries"] = len(workload)
    metrics["query.batch.answers"] = batch_answers

    # --- sustained serving throughput over HTTP -------------------------
    # The full `repro-bigindex serve` path: real sockets, one handler
    # thread per persistent connection, admission, JSON encode/decode.
    # An untimed pass warms the snapshot evaluator (searchers, CSR,
    # result cache); the timed rounds then measure steady-state serving,
    # the number the ROADMAP's traffic story rides on.  The answer total
    # is exact-gated: concurrency must never change what a query returns.
    serve_threads = 4
    serve_rounds = 2 if quick else 6

    def serve_evaluator(idx: BiGIndex):
        return boost(
            BackwardKeywordSearch(d_max=3, k=10), idx, allow_layer_zero=True
        ).evaluator

    service = QueryService(EngineRuntime(qindex, serve_evaluator))
    with serve_in_thread(service) as server:
        port = server.port

        def client_pass(rounds: int) -> int:
            def worker(_worker_id: int) -> int:
                answers = 0
                with ServeClient("127.0.0.1", port) as client:
                    for _ in range(rounds):
                        for query in queries:
                            response = client.query(list(query.keywords))
                            if response.status != 200:
                                raise AssertionError(
                                    f"serve bench got HTTP "
                                    f"{response.status}: {response.payload}"
                                )
                            answers += len(response.payload["answers"])
                return answers

            with ThreadPoolExecutor(max_workers=serve_threads) as pool:
                return sum(pool.map(worker, range(serve_threads)))

        client_pass(1)  # warm the snapshot evaluator, untimed
        elapsed, served_answers = _best_of(
            lambda: client_pass(serve_rounds), min(2, repeats)
        )
    expected_answers = serve_threads * serve_rounds * cold_answers
    if served_answers != expected_answers:
        raise AssertionError(
            f"concurrent serving changed the answers: {served_answers} != "
            f"{serve_threads} threads x {serve_rounds} rounds x "
            f"{cold_answers}"
        )
    serve_requests = serve_threads * serve_rounds * len(queries)
    metrics["serve.qps.warm.seconds"] = elapsed
    metrics["serve.qps.warm.requests"] = serve_requests
    metrics["serve.qps.warm.threads"] = serve_threads
    metrics["serve.qps.warm.answers"] = served_answers
    if elapsed > 0:
        metrics["serve.qps.warm.qps"] = round(serve_requests / elapsed, 1)

    # --- non-blocking mutation stream -----------------------------------
    # Writer throughput through the copy-on-write runtime (clone, apply,
    # publish — no reader drain), plus reader p99 idle vs under the
    # stream.  Answer totals are deliberately *not* exact-gated here:
    # readers pin whichever snapshot is current when they arrive, so the
    # per-request answers legitimately vary with scheduling.
    mutate_runtime = EngineRuntime(qindex.cow_clone(), serve_evaluator)
    mutate_service = QueryService(mutate_runtime)
    stream_edges = sorted(qindex.base_graph.edges())[: 8 if quick else 24]
    stream_ops: List[Tuple[str, int, int]] = []
    for u, v in stream_edges:
        # Delete-then-reinsert pairs: real maintenance work on every op,
        # and the final snapshot returns to the baseline state.
        stream_ops.append(("delete", u, v))
        stream_ops.append(("insert", u, v))
    reader_rounds = 2 if quick else 4

    def _p99(samples: List[float]) -> float:
        ordered = sorted(samples)
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]

    def reader_pass(port: int) -> List[float]:
        def worker(_worker_id: int) -> List[float]:
            samples: List[float] = []
            with ServeClient("127.0.0.1", port, max_retries=0) as client:
                for _ in range(reader_rounds):
                    for query in queries:
                        start = monotonic_now()
                        response = client.query(list(query.keywords))
                        samples.append(monotonic_now() - start)
                        if response.status != 200:
                            raise AssertionError(
                                f"mutation-stream bench got HTTP "
                                f"{response.status}: {response.payload}"
                            )
            return samples

        with ThreadPoolExecutor(max_workers=serve_threads) as pool:
            return [
                sample
                for worker_samples in pool.map(
                    worker, range(serve_threads)
                )
                for sample in worker_samples
            ]

    def apply_stream_op(index: BiGIndex, op: Tuple[str, int, int]) -> None:
        kind, u, v = op
        if kind == "delete":
            index.delete_edge(u, v)
        else:
            index.insert_edge(u, v)

    mutate_elapsed = [0.0]

    def writer() -> None:
        start = monotonic_now()
        for op in stream_ops:
            mutate_runtime.mutate(
                lambda idx, op=op: apply_stream_op(idx, op)
            )
        mutate_elapsed[0] = monotonic_now() - start

    with serve_in_thread(mutate_service) as server:
        reader_pass(server.port)  # warm the snapshot evaluator, untimed
        idle_samples = reader_pass(server.port)
        writer_thread = threading.Thread(
            target=writer, name="bench-mutator"
        )
        writer_thread.start()
        under_samples = reader_pass(server.port)
        writer_thread.join()
    metrics["serve.mutate.ops"] = len(stream_ops)
    metrics["serve.mutate.seconds"] = mutate_elapsed[0]
    if mutate_elapsed[0] > 0:
        metrics["serve.mutate.qps"] = round(
            len(stream_ops) / mutate_elapsed[0], 1
        )
    metrics["serve.read.idle_p99.seconds"] = _p99(idle_samples)
    metrics["serve.read.mutate_p99.seconds"] = _p99(under_samples)

    # --- observability overhead over the serve hot path -----------------
    # Full-fidelity request observability — structured access log,
    # slow-query mirror, flight recorder, rolling SLO window — versus
    # everything off, over the same concurrent HTTP workload as
    # serve.qps.  The ratio is gated at OBS_OVERHEAD_LIMIT (<= 2%) in
    # compare(); answers are exact-gated because logging a request must
    # never change it.
    import os as _os
    import tempfile as _tempfile

    from repro.obs.reqlog import RequestLog
    from repro.serve.service import ServerConfig

    obs_rounds = 1 if quick else 3
    # The on-vs-off diff the gate inspects is a few milliseconds — the
    # same order as one bad scheduler draw on a small box — so this
    # section takes best-of more passes than the rest of the bench.
    obs_repeats = 2 if quick else 5

    def timed_serve_pass(service_obj: QueryService) -> Tuple[float, int]:
        with serve_in_thread(service_obj) as server:
            port = server.port

            def one_pass() -> int:
                def worker(_worker_id: int) -> int:
                    answers = 0
                    with ServeClient("127.0.0.1", port) as client:
                        for _ in range(obs_rounds):
                            for query in queries:
                                response = client.query(
                                    list(query.keywords)
                                )
                                if response.status != 200:
                                    raise AssertionError(
                                        f"obs overhead bench got HTTP "
                                        f"{response.status}: "
                                        f"{response.payload}"
                                    )
                                answers += len(
                                    response.payload["answers"]
                                )
                    return answers

                with ThreadPoolExecutor(
                    max_workers=serve_threads
                ) as pool:
                    return sum(pool.map(worker, range(serve_threads)))

            one_pass()  # warm the snapshot evaluator, untimed
            return _best_of(one_pass, obs_repeats)

    dark_service = QueryService(
        EngineRuntime(qindex, serve_evaluator),
        config=ServerConfig(flight_records=0, slo_window_seconds=0.0),
    )
    off_elapsed, off_answers = timed_serve_pass(dark_service)

    with _tempfile.TemporaryDirectory(prefix="bench-obs-") as obs_tmp:
        obs_access = RequestLog(_os.path.join(obs_tmp, "access.jsonl"))
        obs_slow = RequestLog(
            _os.path.join(obs_tmp, "access.jsonl.slow")
        )
        lit_service = QueryService(
            EngineRuntime(qindex, serve_evaluator),
            config=ServerConfig(slow_query_ms=250.0),
            access_log=obs_access,
            slow_log=obs_slow,
        )
        on_elapsed, on_answers = timed_serve_pass(lit_service)
        obs_access.close()
        obs_slow.close()

    obs_expected = serve_threads * obs_rounds * cold_answers
    for label, got in (("off", off_answers), ("on", on_answers)):
        if got != obs_expected:
            raise AssertionError(
                f"observability ({label}) changed the answers: "
                f"{got} != {obs_expected}"
            )
    metrics["obs.serve.overhead.off.seconds"] = off_elapsed
    metrics["obs.serve.overhead.on.seconds"] = on_elapsed
    metrics["obs.serve.overhead.answers"] = on_answers
    metrics["obs.serve.overhead.requests"] = (
        serve_threads * obs_rounds * len(queries)
    )
    if off_elapsed > 0:
        metrics["obs.serve.overhead.ratio"] = round(
            on_elapsed / off_elapsed, 4
        )

    # --- persistence: v3 text files vs the v4 mmap container -------------
    # Cold loads go through the full path a restart pays: manifest
    # verification (every binary section re-hashed), then format-specific
    # materialization — JSON/TSV parsing for v3, mmap + memoryview views
    # for v4.  Saves are timed too so the container format can't buy its
    # load speed with a pathological write path.
    import os
    import tempfile

    from repro.core.persistence import load_index, save_index

    qontology = corpus[0][2] if quick else ontology
    persist_repeats = min(2, repeats)
    with tempfile.TemporaryDirectory(prefix="bench-persist-") as tmp:
        v3_dir = os.path.join(tmp, "idx-v3")
        v4_dir = os.path.join(tmp, "idx-v4")
        elapsed, _ = _best_of(
            lambda: save_index(qindex, v3_dir, format=3), persist_repeats
        )
        metrics["persist.save.v3.seconds"] = elapsed
        elapsed, _ = _best_of(
            lambda: save_index(qindex, v4_dir, format=4), persist_repeats
        )
        metrics["persist.save.v4.seconds"] = elapsed

        elapsed, _ = _best_of(
            lambda: load_index(v3_dir, qontology), persist_repeats
        )
        metrics["persist.load.cold.v3.seconds"] = elapsed
        rss_before = current_rss_kib()
        elapsed, _ = _best_of(
            lambda: load_index(v4_dir, qontology), persist_repeats
        )
        rss_after = current_rss_kib()
        metrics["persist.load.cold.v4.seconds"] = elapsed
        if rss_before is not None and rss_after is not None:
            metrics["persist.load.cold.v4.rss_delta_kib"] = (
                rss_after - rss_before
            )
        if elapsed > 0:
            metrics["persist.load.v3_vs_v4.speedup"] = round(
                metrics["persist.load.cold.v3.seconds"] / elapsed, 2
            )

        # Restart-to-first-answer: what a freshly exec'd server pays
        # before it can serve its first query from the v4 container.
        first_query = queries[0]

        def coldstart() -> int:
            restarted = load_index(v4_dir, qontology)
            boosted = boost(
                BackwardKeywordSearch(d_max=3, k=10),
                restarted,
                allow_layer_zero=True,
            )
            return len(boosted.evaluate_resilient(first_query).answers)

        elapsed, coldstart_answers = _best_of(coldstart, persist_repeats)
        metrics["serve.coldstart.seconds"] = elapsed
        metrics["serve.coldstart.answers"] = coldstart_answers

    rss = peak_rss_kib()
    if rss is not None:
        metrics["peak_rss_kib"] = rss
    return metrics


# ----------------------------------------------------------------------
# Baseline documents and the regression gate
# ----------------------------------------------------------------------
def make_document(
    metrics: Metrics, before: Optional[Metrics] = None
) -> Dict[str, object]:
    """The JSON document shape committed as ``BENCH_hotpaths.json``."""
    document: Dict[str, object] = {
        "schema": 1,
        "machine": machine_info(),
        "current": metrics,
    }
    if before:
        document["before"] = before
        document["speedups"] = derive_speedups(before, metrics)
    return document


def derive_speedups(before: Metrics, current: Metrics) -> Dict[str, float]:
    """``before/current`` wall-clock ratios for every shared timing key."""
    speedups: Dict[str, float] = {}
    for key, old in before.items():
        if not key.endswith(".seconds"):
            continue
        new = current.get(key)
        if isinstance(old, (int, float)) and isinstance(new, (int, float)) and new > 0:
            speedups[key[: -len(".seconds")]] = round(old / new, 2)
    # The headline parallel-build claim compares against the *serial*
    # pre-change build — the knob didn't exist before this change.
    old_serial = before.get("build.synt-1k.serial.seconds")
    new_parallel = current.get("build.synt-1k.parallel.seconds")
    if isinstance(old_serial, (int, float)) and isinstance(new_parallel, (int, float)):
        if new_parallel > 0:
            speedups["build.synt-1k.parallel-vs-before-serial"] = round(
                old_serial / new_parallel, 2
            )
    return speedups


def load_document(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare(
    current: Metrics,
    baseline: Metrics,
    tolerance: float = 0.25,
) -> List[str]:
    """Regressions of ``current`` against ``baseline``, as messages.

    Timing keys fail when ``current > scaled_baseline * (1 + tolerance)
    + ABS_SLACK_SECONDS`` where ``scaled_baseline`` is the baseline
    timing multiplied by the machines' calibration ratio.  Deterministic
    keys (block/expansion counts, layer sizes) fail on any difference.
    An empty list means the gate passes.
    """
    failures: List[str] = []
    if current.get("mode") != baseline.get("mode"):
        return [
            f"mode mismatch: current={current.get('mode')!r} "
            f"baseline={baseline.get('mode')!r}; quick and full runs "
            f"are not comparable"
        ]

    base_cal = baseline.get("calibration.seconds")
    cur_cal = current.get("calibration.seconds")
    if isinstance(base_cal, (int, float)) and isinstance(cur_cal, (int, float)) \
            and base_cal > 0:
        scale = cur_cal / base_cal
    else:
        scale = 1.0

    for key, base_value in sorted(baseline.items()):
        cur_value = current.get(key)
        if key.endswith(".seconds") and key != "calibration.seconds":
            if not isinstance(cur_value, (int, float)):
                failures.append(f"{key}: missing from current run")
                continue
            allowed = base_value * scale * (1.0 + tolerance) + ABS_SLACK_SECONDS
            if cur_value > allowed:
                failures.append(
                    f"{key}: {cur_value:.6f}s exceeds allowance "
                    f"{allowed:.6f}s (baseline {base_value:.6f}s, "
                    f"machine scale {scale:.2f}, tolerance "
                    f"{tolerance:.0%})"
                )
        elif key.endswith(EXACT_SUFFIXES):
            if cur_value != base_value:
                failures.append(
                    f"{key}: {cur_value!r} != baseline {base_value!r} "
                    f"(deterministic metric; must match exactly)"
                )

    # Observability overhead is gated against the current run's own
    # on/off pair — a ratio is machine-independent, so no calibration
    # scaling applies.  The absolute slack (flat plus per-request)
    # absorbs scheduler jitter when both passes are fast enough that 2%
    # dips below measurement resolution.
    ratio = current.get("obs.serve.overhead.ratio")
    on_seconds = current.get("obs.serve.overhead.on.seconds")
    off_seconds = current.get("obs.serve.overhead.off.seconds")
    requests = current.get("obs.serve.overhead.requests")
    obs_slack = ABS_SLACK_SECONDS
    if isinstance(requests, int):
        obs_slack = max(obs_slack, requests * OBS_SLACK_PER_REQUEST)
    if (
        isinstance(ratio, (int, float))
        and isinstance(on_seconds, (int, float))
        and isinstance(off_seconds, (int, float))
        and ratio > OBS_OVERHEAD_LIMIT
        and on_seconds - off_seconds > obs_slack
    ):
        failures.append(
            f"obs.serve.overhead.ratio: {ratio:.4f} exceeds "
            f"{OBS_OVERHEAD_LIMIT:.2f} (observability on "
            f"{on_seconds:.6f}s vs off {off_seconds:.6f}s, slack "
            f"{obs_slack:.6f}s; the instrumented serve path may cost "
            f"at most 2%)"
        )

    # Sharded-build speedup is gated against the current run's own
    # serial/parallel pair (machine-independent ratio), and only when
    # the host has enough cores for parallelism to show at all.
    shard_speedup = current.get("shard.build.synt-100k.speedup")
    shard_cpus = current.get("shard.build.synt-100k.host_cpus")
    if (
        isinstance(shard_speedup, (int, float))
        and isinstance(shard_cpus, int)
        and shard_cpus >= SHARD_SPEEDUP_MIN_CPUS
        and shard_speedup < SHARD_SPEEDUP_FLOOR
    ):
        failures.append(
            f"shard.build.synt-100k.speedup: {shard_speedup:.2f}x is "
            f"below the {SHARD_SPEEDUP_FLOOR:.1f}x floor on a "
            f"{shard_cpus}-CPU host (4 per-shard build processes vs "
            f"serial)"
        )
    return failures


def format_metrics(
    metrics: Metrics, speedups: Optional[Dict[str, float]] = None
) -> str:
    """Human-readable metric table (timings in ms, counts verbatim)."""
    lines: List[str] = []
    for key in sorted(metrics):
        value = metrics[key]
        if key.endswith(".seconds"):
            line = f"  {key:<40s} {value * 1e3:10.3f} ms"
            if speedups:
                ratio = speedups.get(key[: -len(".seconds")])
                if ratio is not None:
                    line += f"   ({ratio:.2f}x vs before)"
            lines.append(line)
        else:
            lines.append(f"  {key:<40s} {value!r}")
    return "\n".join(lines)
