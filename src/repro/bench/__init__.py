"""Benchmark harness shared by the ``benchmarks/`` suite.

Each experiment of the paper's Sec. 6 maps to one file under
``benchmarks/`` (see DESIGN.md's per-experiment index); the pieces those
files share — dataset/index fixtures, direct-vs-boosted comparisons, and
paper-style table printing — live here so benchmark code stays declarative.
"""

from repro.bench.harness import (
    BENCH_SCALE,
    QueryComparison,
    build_index,
    compare_on_queries,
    default_dataset,
)
from repro.bench.reporting import format_table, percent_reduction, print_table

__all__ = [
    "BENCH_SCALE",
    "QueryComparison",
    "build_index",
    "compare_on_queries",
    "default_dataset",
    "format_table",
    "percent_reduction",
    "print_table",
]
