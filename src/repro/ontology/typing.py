"""Assigning ontology types to data-graph labels.

The paper's DBpedia experiment (Sec. 6.1.2) reuses YAGO3's ontology: 73.2%
of entities match a type in the ontology graph and "the rest can be simply
matched to the topmost type".  Appendix A.2 generalizes this to arbitrary
graphs — associate types to nodes using an existing ontology or external
typing tools (PEARL, Patty).

:class:`TypeAssigner` reproduces that pipeline: given an ontology and an
explicit label->type mapping (standing in for the typing tool), it reports
coverage and rewrites unmatched labels to a fallback type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.graph.digraph import Graph
from repro.ontology.ontology import OntologyGraph
from repro.utils.errors import OntologyError


@dataclass
class TypingReport:
    """Outcome of a typing pass over a graph."""

    #: labels found verbatim in the ontology.
    matched_directly: int
    #: labels mapped through the explicit mapping.
    matched_via_mapping: int
    #: labels assigned the fallback (topmost) type.
    fallback: int

    @property
    def total(self) -> int:
        """Total distinct labels processed."""
        return self.matched_directly + self.matched_via_mapping + self.fallback

    @property
    def coverage(self) -> float:
        """Fraction of labels matched without the fallback (DBpedia: ~0.732)."""
        if self.total == 0:
            return 0.0
        return (self.matched_directly + self.matched_via_mapping) / self.total


class TypeAssigner:
    """Rewrites data-graph labels so every label exists in the ontology.

    Parameters
    ----------
    ontology:
        The ontology whose types the graph must use.
    mapping:
        Optional explicit ``data-label -> ontology-type`` mapping,
        simulating an external typing tool.
    fallback_type:
        Type assigned to labels matched neither directly nor via the
        mapping.  Defaults to the lexicographically smallest root,
        mirroring "matched to the topmost type".
    """

    def __init__(
        self,
        ontology: OntologyGraph,
        mapping: Optional[Dict[str, str]] = None,
        fallback_type: Optional[str] = None,
    ) -> None:
        self.ontology = ontology
        self.mapping = dict(mapping or {})
        for source, target in self.mapping.items():
            if target not in ontology:
                raise OntologyError(
                    f"mapping target {target!r} (for {source!r}) not in ontology"
                )
        if fallback_type is None:
            roots = ontology.roots()
            if not roots:
                raise OntologyError("ontology has no root to use as fallback type")
            fallback_type = roots[0]
        elif fallback_type not in ontology:
            raise OntologyError(f"fallback type {fallback_type!r} not in ontology")
        self.fallback_type = fallback_type

    def resolve(self, label: str) -> str:
        """The ontology type for one data label."""
        if label in self.ontology:
            return label
        mapped = self.mapping.get(label)
        if mapped is not None:
            return mapped
        return self.fallback_type

    def apply(self, graph: Graph) -> TypingReport:
        """Rewrite every vertex label of ``graph`` in place to an ontology type.

        Original labels are preserved as vertex names when the vertex has no
        name yet, so examples can still display entity strings.
        """
        direct = 0
        via_mapping = 0
        fallback = 0
        seen: Set[str] = set()
        for v in graph.vertices():
            label = graph.label(v)
            if label not in seen:
                seen.add(label)
                if label in self.ontology:
                    direct += 1
                elif label in self.mapping:
                    via_mapping += 1
                else:
                    fallback += 1
            resolved = self.resolve(label)
            if resolved != label:
                if v not in graph.names:
                    graph.names[v] = label
                graph.relabel_vertex(v, resolved)
        return TypingReport(
            matched_directly=direct,
            matched_via_mapping=via_mapping,
            fallback=fallback,
        )
