"""Ontology substrate.

An ontology graph :math:`G_{Ont} = (V_{Ont}, E_{Ont})` is a directed acyclic
graph whose vertices are type labels and whose edges ``(l', l)`` mean ``l'``
is a direct supertype of ``l`` (SubClassOf / SubTypeOf).  BiG-index uses it
to pick label generalizations; the typing helper assigns ontology types to
untyped entities the way the paper handles DBpedia (Sec. 6.1.2).
"""

from repro.ontology.ontology import OntologyGraph, generate_ontology
from repro.ontology.typing import TypeAssigner

__all__ = ["OntologyGraph", "generate_ontology", "TypeAssigner"]
