"""Ontology graph: a DAG of type labels with supertype edges.

Model (Sec. 2 of the paper)
---------------------------
``G_Ont = (V_Ont, E_Ont)`` where each vertex is a label (type) and each edge
``(l', l)`` states that ``l'`` is a *direct supertype* of ``l``.  A label may
have several direct supertypes (the DAG is not a tree).  Generalization
configurations map labels to one of their direct supertypes; labels with no
supertype may only map to themselves.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.utils.errors import OntologyError


class OntologyGraph:
    """A DAG of type labels with ``supertype -> subtype`` navigation.

    Edges are stored by label string.  The class validates acyclicity on
    demand (:meth:`validate`) and exposes the queries BiG-index needs:
    direct supertypes/subtypes, transitive closure tests, roots, and height.

    Example
    -------
    >>> ont = OntologyGraph()
    >>> ont.add_subtype("Academics", "Person")
    >>> ont.direct_supertypes("Academics")
    ['Person']
    >>> ont.is_supertype("Person", "Academics")
    True
    """

    def __init__(self) -> None:
        self._supertypes: Dict[str, List[str]] = {}
        self._subtypes: Dict[str, List[str]] = {}
        self._types: Set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_type(self, label: str) -> None:
        """Register a type with no relationships yet (idempotent)."""
        if label not in self._types:
            self._types.add(label)
            self._supertypes.setdefault(label, [])
            self._subtypes.setdefault(label, [])

    def add_subtype(self, subtype: str, supertype: str) -> None:
        """Declare ``supertype`` as a direct supertype of ``subtype``.

        Mirrors an ontology edge ``(supertype, subtype)`` labeled
        SubClassOf/SubTypeOf.  Refuses self-loops and edges that would close
        a cycle.
        """
        if subtype == supertype:
            raise OntologyError(f"type {subtype!r} cannot be its own supertype")
        self.add_type(subtype)
        self.add_type(supertype)
        if supertype in self._supertypes[subtype]:
            return
        if self.is_supertype(subtype, supertype):
            raise OntologyError(
                f"adding {supertype!r} above {subtype!r} would create a cycle"
            )
        self._supertypes[subtype].append(supertype)
        self._subtypes[supertype].append(subtype)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, label: str) -> bool:
        return label in self._types

    def __len__(self) -> int:
        return len(self._types)

    @property
    def num_types(self) -> int:
        """``|V_Ont|``."""
        return len(self._types)

    @property
    def num_edges(self) -> int:
        """``|E_Ont|``."""
        return sum(len(parents) for parents in self._supertypes.values())

    def types(self) -> Set[str]:
        """All registered type labels."""
        return set(self._types)

    def direct_supertypes(self, label: str) -> List[str]:
        """Direct supertypes of ``label`` (empty for roots)."""
        self._check(label)
        return list(self._supertypes[label])

    def direct_subtypes(self, label: str) -> List[str]:
        """Direct subtypes of ``label`` (empty for leaves)."""
        self._check(label)
        return list(self._subtypes[label])

    def has_supertype(self, label: str) -> bool:
        """Whether ``label`` has at least one direct supertype."""
        self._check(label)
        return bool(self._supertypes[label])

    def ancestors(self, label: str) -> Set[str]:
        """All transitive supertypes of ``label`` (excluding itself)."""
        self._check(label)
        seen: Set[str] = set()
        queue: deque = deque(self._supertypes[label])
        while queue:
            t = queue.popleft()
            if t in seen:
                continue
            seen.add(t)
            queue.extend(self._supertypes[t])
        return seen

    def descendants(self, label: str) -> Set[str]:
        """All transitive subtypes of ``label`` (excluding itself)."""
        self._check(label)
        seen: Set[str] = set()
        queue: deque = deque(self._subtypes[label])
        while queue:
            t = queue.popleft()
            if t in seen:
                continue
            seen.add(t)
            queue.extend(self._subtypes[t])
        return seen

    def is_supertype(self, candidate: str, label: str) -> bool:
        """Whether ``candidate`` is a (transitive) supertype of ``label``.

        By convention a type is also considered a supertype of itself, which
        matches the candidate-filtering rule of Prop. 4.1 (a keyword node's
        specializations keep labels whose generalization chain hits the
        generalized keyword).
        """
        if candidate == label:
            return candidate in self._types
        if candidate not in self._types or label not in self._types:
            return False
        return candidate in self.ancestors(label)

    def roots(self) -> List[str]:
        """Types without supertypes, sorted for determinism."""
        return sorted(t for t in self._types if not self._supertypes[t])

    def leaves(self) -> List[str]:
        """Types without subtypes, sorted for determinism."""
        return sorted(t for t in self._types if not self._subtypes[t])

    def height(self) -> int:
        """Length (in edges) of the longest subtype chain in the DAG."""
        self.validate()
        memo: Dict[str, int] = {}

        order = self._topological_order()
        # Process from roots down: height of a node = 1 + max over parents.
        for label in order:
            parents = self._supertypes[label]
            memo[label] = 0 if not parents else 1 + max(memo[p] for p in parents)
        return max(memo.values(), default=0)

    def depth_of(self, label: str) -> int:
        """Shortest distance (in edges) from ``label`` up to any root."""
        self._check(label)
        depth = 0
        frontier = {label}
        seen = set(frontier)
        while frontier:
            if any(not self._supertypes[t] for t in frontier):
                return depth
            next_frontier: Set[str] = set()
            for t in frontier:
                for parent in self._supertypes[t]:
                    if parent not in seen:
                        seen.add(parent)
                        next_frontier.add(parent)
            frontier = next_frontier
            depth += 1
        raise OntologyError(f"no root reachable from {label!r}")  # pragma: no cover

    def topmost_type(self, label: str) -> str:
        """An arbitrary-but-deterministic root above ``label``.

        Used by the typing fallback: entities that cannot be matched to a
        specific type are assigned the topmost type (Sec. 6.1.2).
        """
        self._check(label)
        current = label
        while self._supertypes[current]:
            current = min(self._supertypes[current])
        return current

    def validate(self) -> None:
        """Raise :class:`OntologyError` if the ontology contains a cycle."""
        self._topological_order()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _topological_order(self) -> List[str]:
        """Kahn's algorithm from roots down; raises on cycles."""
        in_deg = {t: len(self._supertypes[t]) for t in self._types}
        queue: deque = deque(sorted(t for t, d in in_deg.items() if d == 0))
        order: List[str] = []
        while queue:
            t = queue.popleft()
            order.append(t)
            for child in sorted(self._subtypes[t]):
                in_deg[child] -= 1
                if in_deg[child] == 0:
                    queue.append(child)
        if len(order) != len(self._types):
            raise OntologyError("ontology graph contains a cycle")
        return order

    def _check(self, label: str) -> None:
        if label not in self._types:
            raise OntologyError(f"unknown type: {label!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OntologyGraph(|V|={self.num_types}, |E|={self.num_edges})"


def generate_ontology(
    num_types: int,
    avg_fanout: int = 5,
    height: int = 7,
    seed: int = 0,
    label_prefix: str = "T",
) -> OntologyGraph:
    """Generate a random ontology DAG with the paper's reported shape.

    The synthetic ontologies in Sec. 6.1.2 have an average degree of 5 and a
    height of 7, "consistent with the heights and average degrees of the
    real ontology graphs".  We build a layered DAG: layer 0 holds the roots
    and each subsequent layer's types attach to a random parent in the layer
    above (plus occasional second parents so the result is a genuine DAG,
    not a forest).

    Parameters
    ----------
    num_types:
        Total number of type labels.
    avg_fanout:
        Average number of direct subtypes per internal type.
    height:
        Number of layers below the roots.
    seed:
        RNG seed; generation is deterministic.
    label_prefix:
        Types are named ``f"{label_prefix}{layer}_{index}"``.

    Returns
    -------
    OntologyGraph
    """
    if num_types <= 0:
        raise OntologyError("num_types must be positive")
    if height < 1:
        raise OntologyError("height must be at least 1")
    rng = random.Random(seed)
    ontology = OntologyGraph()

    # Geometric layer sizes: layer k holds ~avg_fanout^k types, rescaled to
    # sum to num_types.
    raw = [float(avg_fanout) ** k for k in range(height + 1)]
    scale = num_types / sum(raw)
    layer_sizes = [max(1, round(x * scale)) for x in raw]
    # Adjust the last layer so the total matches exactly.
    drift = num_types - sum(layer_sizes)
    layer_sizes[-1] = max(1, layer_sizes[-1] + drift)

    layers: List[List[str]] = []
    for level, size in enumerate(layer_sizes):
        layer = [f"{label_prefix}{level}_{i}" for i in range(size)]
        for label in layer:
            ontology.add_type(label)
        layers.append(layer)

    for level in range(1, len(layers)):
        parents = layers[level - 1]
        for label in layers[level]:
            ontology.add_subtype(label, rng.choice(parents))
            # ~10% of types get a second parent to exercise DAG-ness.
            if len(parents) > 1 and rng.random() < 0.1:
                second = rng.choice(parents)
                if second not in ontology.direct_supertypes(label):
                    ontology.add_subtype(label, second)
    return ontology
