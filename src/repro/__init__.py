"""BiG-index: a generic ontology framework for indexing keyword search.

Reproduction of Jiang, Choi, Xu, Bhowmick — *A Generic Ontology Framework
for Indexing Keyword Search on Massive Graphs* (TKDE 2019; ICDE 2021
extended abstract).

Public surface
--------------
* graph substrate: :class:`Graph`, traversal and IO helpers.
* ontology: :class:`OntologyGraph`, :func:`generate_ontology`.
* bisimulation: :func:`summarize`, :class:`IncrementalBisimulation`.
* search algorithms: :class:`BackwardKeywordSearch`, :class:`Blinks`,
  :class:`RClique`.
* the BiG-index core: :class:`BiGIndex`, :class:`HierarchicalEvaluator`,
  :func:`boost` and the ``boost_*`` shortcuts.
* datasets & benchmarks: :mod:`repro.datasets`, :mod:`repro.bench`.

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

from repro.graph import Graph, LabelTable
from repro.ontology import OntologyGraph, generate_ontology, TypeAssigner
from repro.bisim import (
    BisimDirection,
    IncrementalBisimulation,
    SummaryGraph,
    summarize,
)
from repro.search import (
    Answer,
    BackwardKeywordSearch,
    BidirectionalSearch,
    Blinks,
    KeywordQuery,
    RClique,
)
from repro.core import (
    BiGIndex,
    Configuration,
    CostModel,
    CostParams,
    EvalResult,
    HierarchicalEvaluator,
    QueryCostModel,
    boost,
    greedy_configuration,
    load_index,
    optimal_query_layer,
    save_index,
)
from repro.core.plugins import BoostedSearch, boost_bkws, boost_dkws, boost_rkws
from repro.core.evaluator import DegradedResult
from repro.utils import (
    Budget,
    BudgetExceeded,
    CancellationToken,
    IndexCorruptedError,
    IndexVersionError,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "LabelTable",
    "OntologyGraph",
    "generate_ontology",
    "TypeAssigner",
    "BisimDirection",
    "IncrementalBisimulation",
    "SummaryGraph",
    "summarize",
    "Answer",
    "BackwardKeywordSearch",
    "BidirectionalSearch",
    "Blinks",
    "KeywordQuery",
    "RClique",
    "load_index",
    "save_index",
    "BiGIndex",
    "Configuration",
    "CostModel",
    "CostParams",
    "EvalResult",
    "HierarchicalEvaluator",
    "QueryCostModel",
    "boost",
    "BoostedSearch",
    "boost_bkws",
    "boost_dkws",
    "boost_rkws",
    "greedy_configuration",
    "optimal_query_layer",
    "Budget",
    "BudgetExceeded",
    "CancellationToken",
    "DegradedResult",
    "IndexCorruptedError",
    "IndexVersionError",
    "__version__",
]
