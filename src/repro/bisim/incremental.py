"""Incremental maintenance of a bisimulation partition under graph updates.

Sec. 3.2 of the paper maintains the summary-graph hierarchy under data-graph
updates using an incremental bisimulation maintenance algorithm (their
ref [7], Deng et al., TKDE 2013).  We reproduce the practically relevant
behaviour with a refine-from-current-partition scheme:

* On **edge insertion/deletion** the maintainer re-runs signature refinement
  *starting from the current partition* after splitting the blocks of the
  edge endpoints.  Any fixpoint of signature refinement is a valid
  bisimulation (same-block vertices share labels and neighbor-block sets),
  so queries on the refreshed summary stay correct.
* The refreshed partition refines the previous one, so it may be *finer*
  than the maximal bisimulation (updates can merge classes, which splitting
  cannot undo).  This matches the paper's guidance that the index stays
  correct under updates and "can be recomputed occasionally" to restore
  minimality — :meth:`IncrementalBisimulation.rebuild` does exactly that.
* On **vertex relabeling** the same scheme applies (the label partition is
  folded into the start partition).

The maintainer tracks how far the current partition may have drifted from
minimal (:attr:`drift`) so callers can trigger rebuilds on a budget.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bisim.refinement import (
    BisimDirection,
    is_bisimulation_partition,
    maximal_bisimulation,
)
from repro.bisim.summary import SummaryGraph, summarize
from repro.graph.digraph import Graph
from repro.obs.runtime import OBS
from repro.utils.errors import GraphError


class IncrementalBisimulation:
    """Maintains a bisimulation partition of a mutating graph.

    The class owns the graph mutations: call :meth:`insert_edge`,
    :meth:`delete_edge`, :meth:`add_vertex` or :meth:`relabel_vertex` instead
    of mutating the graph directly so the partition stays in sync.

    Example
    -------
    >>> from repro.graph import Graph
    >>> g = Graph()
    >>> a, b, c = (g.add_vertex(l) for l in ("A", "B", "B"))
    >>> maintainer = IncrementalBisimulation(g)
    >>> maintainer.num_blocks   # B-labeled leaves collapse
    2
    >>> maintainer.insert_edge(a, b)
    >>> maintainer.is_valid()
    True
    """

    def __init__(
        self,
        graph: Graph,
        direction: BisimDirection = BisimDirection.SUCCESSORS,
    ) -> None:
        self.graph = graph
        self.direction = direction
        self.blocks: List[int] = maximal_bisimulation(graph, direction=direction)
        #: number of updates applied since the last full rebuild.
        self.drift = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Insert edge ``(u, v)`` and restore a valid bisimulation partition."""
        if not self.graph.add_edge(u, v):
            return
        self._refresh_after_update((u, v))

    def delete_edge(self, u: int, v: int) -> None:
        """Delete edge ``(u, v)`` and restore a valid bisimulation partition."""
        self.graph.remove_edge(u, v)
        self._refresh_after_update((u, v))

    def add_vertex(self, label: str) -> int:
        """Add a fresh isolated vertex; it starts in its own block."""
        vid = self.graph.add_vertex(label)
        self.blocks.append(max(self.blocks, default=-1) + 1)
        self.drift += 1
        self._refine_from_current()
        return vid

    def relabel_vertex(self, v: int, new_label: str) -> None:
        """Change a vertex label and restore a valid partition."""
        self.graph.relabel_vertex(v, new_label)
        self._refresh_after_update((v, v))

    def rebuild(self) -> None:
        """Recompute the maximal bisimulation from scratch (restores minimality)."""
        self.blocks = maximal_bisimulation(self.graph, direction=self.direction)
        self.drift = 0
        if OBS.enabled:
            OBS.metrics.inc("incremental.rebuilds")
            OBS.metrics.gauge("incremental.drift", 0)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of equivalence classes in the current partition."""
        return len(set(self.blocks))

    def summary(self) -> SummaryGraph:
        """Summary graph for the current partition."""
        return summarize(self.graph, direction=self.direction, blocks=self.blocks)

    def is_valid(self) -> bool:
        """Whether the current partition satisfies the bisimulation conditions."""
        return is_bisimulation_partition(
            self.graph, self.blocks, direction=self.direction
        )

    def is_minimal(self) -> bool:
        """Whether the current partition equals the maximal bisimulation."""
        return self.blocks == maximal_bisimulation(
            self.graph, direction=self.direction
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refresh_after_update(self, touched: tuple) -> None:
        """Split the touched vertices out of their blocks, then refine.

        Splitting the endpoints into singleton blocks before refining keeps
        the result a *bisimulation* even when the update invalidated the old
        block membership of those exact vertices (refinement can only split,
        so a vertex whose signature changed must be evicted up front).
        """
        next_block = max(self.blocks, default=-1)
        for vertex in set(touched):
            next_block += 1
            self.blocks[vertex] = next_block
        self.drift += 1
        self._refine_from_current()

    def _refine_from_current(self) -> None:
        if OBS.enabled:
            OBS.metrics.inc("incremental.updates")
            OBS.metrics.gauge("incremental.drift", self.drift)
        self.blocks = maximal_bisimulation(
            self.graph, direction=self.direction, initial_blocks=self.blocks
        )
