"""Bisimulation substrate.

Implements the summarization formalism of Sec. 2: the maximal bisimulation
relation of a labeled directed graph via partition refinement, the summary
graph ``Bisim(G)`` with its hash-table reverse ``Bisim^{-1}``, and the
incremental maintenance used when the data graph is updated (Sec. 3.2).
"""

from repro.bisim.refinement import maximal_bisimulation, BisimDirection
from repro.bisim.summary import SummaryGraph, summarize
from repro.bisim.incremental import IncrementalBisimulation

__all__ = [
    "maximal_bisimulation",
    "BisimDirection",
    "SummaryGraph",
    "summarize",
    "IncrementalBisimulation",
]
