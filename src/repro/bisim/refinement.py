"""Maximal bisimulation via partition refinement.

Definition (Sec. 2 of the paper)
--------------------------------
A binary relation ``B`` over vertices is a bisimulation when for every pair
``(u_i, u_j) in B``:

* ``L(u_i) = L(u_j)``;
* every edge ``(u_i, v_i)`` is matched by an edge ``(u_j, v_j)`` with
  ``(v_i, v_j) in B``; and symmetrically
* every edge ``(u_j, v_j)`` is matched by an edge ``(u_i, v_i)`` with
  ``(v_i, v_j) in B``.

Every graph has a unique *maximal* bisimulation, which is an equivalence
relation.  The paper's running example (the 100 Person vertices of Fig. 1
collapsing because they share the one Univ. successor) shows the relation
matches on *successors*; the paper calls the formalism backward bisimulation
because it preserves the backward traversals keyword search performs.  We
expose the matching direction explicitly:

* ``BisimDirection.SUCCESSORS`` — vertices are equivalent when their labels
  agree and their successor blocks agree (the paper's definition; default).
* ``BisimDirection.PREDECESSORS`` — match on predecessor blocks.
* ``BisimDirection.BOTH`` — match on both sides (finer partition).

Algorithm
---------
Worklist-driven signature refinement.  The classical Kanellakis–Smolka
loop (kept as :func:`_reference_bisimulation` for differential testing)
re-signatures **all** ``n`` vertices every round and pays a full
confirmation round to detect stability; stable regions of the graph are
re-hashed again and again, which dominates construction cost at scale
(cf. Luo et al., *I/O-efficient localized bisimulation partition
construction*, and Rau et al., *Computing k-Bisimulations for Large
Graphs*).  The worklist variant instead tracks **dirty blocks**: after a
round splits some blocks, only the vertices with an edge into a *moved*
vertex can change signature, so only their blocks are re-examined in the
next round.  Signatures are sorted int tuples built from the graph's CSR
adjacency snapshot (no per-vertex frozensets), and a block's own id is
excluded from its members' signatures (it is constant within the block,
and the worklist never merges blocks).

Both implementations converge to the same fixpoint — the coarsest stable
refinement of the start partition is unique regardless of split order —
and both renumber blocks canonically (by smallest member vertex), so the
returned arrays are byte-identical.  The test-suite and the hierarchical
index rely on that determinism; ``tests/test_properties.py`` checks the
equivalence on randomized graphs across all three directions.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Sequence, Tuple

from repro.graph.digraph import Graph
from repro.obs.runtime import OBS


class BisimDirection(str, Enum):
    """Which neighbor sets the bisimulation matches on."""

    SUCCESSORS = "successors"
    PREDECESSORS = "predecessors"
    BOTH = "both"


def maximal_bisimulation(
    graph: Graph,
    direction: BisimDirection = BisimDirection.SUCCESSORS,
    initial_blocks: Sequence[int] | None = None,
) -> List[int]:
    """Compute the maximal bisimulation partition of ``graph``.

    Parameters
    ----------
    graph:
        The graph to partition.
    direction:
        Neighbor side(s) on which equivalent vertices must agree.
    initial_blocks:
        Optional starting partition (block id per vertex).  The result is
        the coarsest *stable* refinement of this partition that also refines
        the label partition.  Used by incremental maintenance; when omitted
        the label partition is the start, yielding the maximal bisimulation.

    Returns
    -------
    list[int]
        ``block[v]`` is the equivalence-class id of vertex ``v``.  Ids are
        dense ``0..k-1`` and canonical: blocks are numbered by their
        smallest member vertex.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    if initial_blocks is not None and len(initial_blocks) != n:
        raise ValueError("initial_blocks must cover every vertex")

    use_out = direction in (BisimDirection.SUCCESSORS, BisimDirection.BOTH)
    use_in = direction in (BisimDirection.PREDECESSORS, BisimDirection.BOTH)

    csr = graph.csr()
    # Offsets as plain lists: CPython caches small ints in lists, while
    # ``array('i').__getitem__`` boxes a fresh int every access, and the
    # offsets are read twice per vertex per round.
    out_off, out_tgt = csr.out_offsets.tolist(), csr.out_targets
    in_off, in_tgt = csr.in_offsets.tolist(), csr.in_targets

    labels = graph.labels
    if initial_blocks is None:
        block: List[int] = list(labels)
        # The start partition *is* the label partition: folding the label
        # into the first-round signature would be a no-op.
        first_round_labels = None
    else:
        block = list(initial_blocks)
        # Label refinement is fused into the first worklist round instead
        # of allocating a (initial_block, label)-keyed dict up front: the
        # first round groups every block's members by signature anyway, so
        # the label simply rides along as the signature's first component.
        first_round_labels = labels

    # Block bookkeeping: member lists per block id, worklist of dirty ids.
    members: Dict[int, List[int]] = {}
    for v in range(n):
        b = block[v]
        got = members.get(b)
        if got is None:
            members[b] = [v]
        else:
            got.append(v)

    next_id = max(members) + 1
    dirty = list(members)
    in_dirty = set(dirty)

    # Telemetry rides in plain local ints (free on the hot path) and is
    # flushed to the metrics registry once, after the fixpoint.
    rounds = 0
    blocks_split = 0
    vertices_moved = 0

    while dirty:
        rounds += 1
        moved: List[int] = []
        process, dirty = dirty, []
        in_dirty.clear()
        bg = block.__getitem__
        lbls = first_round_labels
        for b in process:
            mem = members[b]
            if len(mem) == 1:
                continue  # singletons cannot split
            # Group members by signature: sorted deduped neighbor-block
            # tuples (plus the vertex label in the fused first round).
            # The three direction cases are split into separate loops so
            # the dominant successor-only path pays for exactly one
            # signature and no wrapper tuple.
            groups: Dict[Tuple, List[int]] = {}
            for v in mem:
                if use_out:
                    ids = sorted(map(bg, out_tgt[out_off[v] : out_off[v + 1]]))
                    if ids:
                        last = ids[0]
                        sig = [last]
                        for x in ids:
                            if x != last:
                                sig.append(x)
                                last = x
                        succ = tuple(sig)
                    else:
                        succ = ()
                    if not use_in:
                        key = succ if lbls is None else (lbls[v], succ)
                        got = groups.get(key)
                        if got is None:
                            groups[key] = [v]
                        else:
                            got.append(v)
                        continue
                else:
                    succ = ()
                ids = sorted(map(bg, in_tgt[in_off[v] : in_off[v + 1]]))
                if ids:
                    last = ids[0]
                    sig = [last]
                    for x in ids:
                        if x != last:
                            sig.append(x)
                            last = x
                    pred = tuple(sig)
                else:
                    pred = ()
                if use_out:
                    key = (succ, pred) if lbls is None else (lbls[v], succ, pred)
                else:
                    key = pred if lbls is None else (lbls[v], pred)
                got = groups.get(key)
                if got is None:
                    groups[key] = [v]
                else:
                    got.append(v)
            if len(groups) == 1:
                continue
            # Split: the largest group keeps the old id (fewest moved
            # vertices => fewest dirty neighbors next round); every other
            # group gets a fresh id and its members are marked moved.
            ordered = sorted(groups.values(), key=len, reverse=True)
            members[b] = ordered[0]
            blocks_split += 1
            for group in ordered[1:]:
                fresh = next_id
                next_id += 1
                members[fresh] = group
                for v in group:
                    block[v] = fresh
                moved.extend(group)
        if not moved:
            break
        vertices_moved += len(moved)
        first_round_labels = None
        # A vertex's signature mentions block[w] for its out-neighbors w
        # (successor matching) and in-neighbors (predecessor matching);
        # only vertices with an edge *to* a moved vertex (resp. *from*)
        # can have changed signature — mark their blocks dirty.  block
        # ids are mapped at C speed; the set may pick up clean singleton
        # blocks, which the next round skips for free.
        bg = block.__getitem__
        for w in moved:
            if use_out:
                in_dirty.update(map(bg, in_tgt[in_off[w] : in_off[w + 1]]))
            if use_in:
                in_dirty.update(map(bg, out_tgt[out_off[w] : out_off[w + 1]]))
        dirty = list(in_dirty)

    if OBS.enabled:
        metrics = OBS.metrics
        metrics.inc("refine.calls")
        metrics.inc("refine.rounds", rounds)
        metrics.inc("refine.blocks_split", blocks_split)
        metrics.inc("refine.vertices_moved", vertices_moved)
        metrics.gauge("refine.blocks", len(members))
    return _canonicalize(block, n, len(members))


def _reference_bisimulation(
    graph: Graph,
    direction: BisimDirection = BisimDirection.SUCCESSORS,
    initial_blocks: Sequence[int] | None = None,
) -> List[int]:
    """The naive Kanellakis–Smolka loop, kept as the differential oracle.

    Re-signatures every vertex each round with frozenset signatures; the
    property tests assert :func:`maximal_bisimulation` matches it
    byte-for-byte on randomized graphs.  The live block count is threaded
    through the loop rather than recomputed with ``len(set(block))`` per
    round.
    """
    n = graph.num_vertices
    if n == 0:
        return []

    if initial_blocks is None:
        block = list(graph.labels)
    else:
        if len(initial_blocks) != n:
            raise ValueError("initial_blocks must cover every vertex")
        combined: Dict[Tuple[int, int], int] = {}
        block = []
        for v in range(n):
            key = (initial_blocks[v], graph.labels[v])
            block_id = combined.setdefault(key, len(combined))
            block.append(block_id)

    use_out = direction in (BisimDirection.SUCCESSORS, BisimDirection.BOTH)
    use_in = direction in (BisimDirection.PREDECESSORS, BisimDirection.BOTH)

    num_blocks = len(set(block))
    while True:
        signatures: Dict[Tuple, int] = {}
        new_block = [0] * n
        for v in range(n):
            succ_sig = frozenset(
                block[w] for w in graph.out_neighbors(v)
            ) if use_out else frozenset()
            pred_sig = frozenset(
                block[w] for w in graph.in_neighbors(v)
            ) if use_in else frozenset()
            key = (block[v], succ_sig, pred_sig)
            new_block[v] = signatures.setdefault(key, len(signatures))
        block = new_block
        if len(signatures) == num_blocks:
            break
        num_blocks = len(signatures)
    return _canonicalize(block, n)


def _canonicalize(
    block: List[int], n: int, num_blocks: int | None = None
) -> List[int]:
    """Renumber blocks by smallest member vertex for determinism.

    When the caller knows the block count, the discovery scan stops as
    soon as every id has been seen and the remap runs at C speed.
    """
    first_seen: Dict[int, int] = {}
    if num_blocks is None:
        num_blocks = len(set(block))
    seen = 0
    for old in block:
        if old not in first_seen:
            first_seen[old] = seen
            seen += 1
            if seen == num_blocks:
                break
    return list(map(first_seen.__getitem__, block))


def is_bisimulation_partition(
    graph: Graph,
    block: Sequence[int],
    direction: BisimDirection = BisimDirection.SUCCESSORS,
) -> bool:
    """Check the bisimulation conditions for a candidate partition.

    Used by tests and by incremental maintenance to validate results: a
    partition is a bisimulation iff same-block vertices share a label and
    the same *set* of neighbor blocks on the matched side(s).
    """
    n = graph.num_vertices
    if len(block) != n:
        return False
    use_out = direction in (BisimDirection.SUCCESSORS, BisimDirection.BOTH)
    use_in = direction in (BisimDirection.PREDECESSORS, BisimDirection.BOTH)
    csr = graph.csr()
    rep_signature: Dict[int, Tuple] = {}
    for v in range(n):
        succ = (
            frozenset(block[w] for w in csr.out_neighbors(v)) if use_out else None
        )
        pred = (
            frozenset(block[w] for w in csr.in_neighbors(v)) if use_in else None
        )
        sig = (graph.labels[v], succ, pred)
        existing = rep_signature.get(block[v])
        if existing is None:
            rep_signature[block[v]] = sig
        elif existing != sig:
            return False
    return True
