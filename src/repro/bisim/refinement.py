"""Maximal bisimulation via partition refinement.

Definition (Sec. 2 of the paper)
--------------------------------
A binary relation ``B`` over vertices is a bisimulation when for every pair
``(u_i, u_j) in B``:

* ``L(u_i) = L(u_j)``;
* every edge ``(u_i, v_i)`` is matched by an edge ``(u_j, v_j)`` with
  ``(v_i, v_j) in B``; and symmetrically
* every edge ``(u_j, v_j)`` is matched by an edge ``(u_i, v_i)`` with
  ``(v_i, v_j) in B``.

Every graph has a unique *maximal* bisimulation, which is an equivalence
relation.  The paper's running example (the 100 Person vertices of Fig. 1
collapsing because they share the one Univ. successor) shows the relation
matches on *successors*; the paper calls the formalism backward bisimulation
because it preserves the backward traversals keyword search performs.  We
expose the matching direction explicitly:

* ``BisimDirection.SUCCESSORS`` — vertices are equivalent when their labels
  agree and their successor blocks agree (the paper's definition; default).
* ``BisimDirection.PREDECESSORS`` — match on predecessor blocks.
* ``BisimDirection.BOTH`` — match on both sides (finer partition).

Algorithm
---------
Kanellakis–Smolka style signature refinement: start from the partition by
label; repeatedly split blocks by the *set* of neighbor blocks until stable.
Each round is ``O(|V| + |E|)``; the number of rounds is bounded by the
partition's refinement depth.  Block ids are renumbered canonically (by the
smallest member vertex) so results are deterministic and stable across runs,
which the test-suite and the hierarchical index rely on.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.graph.digraph import Graph


class BisimDirection(str, Enum):
    """Which neighbor sets the bisimulation matches on."""

    SUCCESSORS = "successors"
    PREDECESSORS = "predecessors"
    BOTH = "both"


def maximal_bisimulation(
    graph: Graph,
    direction: BisimDirection = BisimDirection.SUCCESSORS,
    initial_blocks: Sequence[int] | None = None,
) -> List[int]:
    """Compute the maximal bisimulation partition of ``graph``.

    Parameters
    ----------
    graph:
        The graph to partition.
    direction:
        Neighbor side(s) on which equivalent vertices must agree.
    initial_blocks:
        Optional starting partition (block id per vertex).  The result is
        the coarsest *stable* refinement of this partition that also refines
        the label partition.  Used by incremental maintenance; when omitted
        the label partition is the start, yielding the maximal bisimulation.

    Returns
    -------
    list[int]
        ``block[v]`` is the equivalence-class id of vertex ``v``.  Ids are
        dense ``0..k-1`` and canonical: blocks are numbered by their
        smallest member vertex.
    """
    n = graph.num_vertices
    if n == 0:
        return []

    if initial_blocks is None:
        block = list(graph.labels)
    else:
        if len(initial_blocks) != n:
            raise ValueError("initial_blocks must cover every vertex")
        # Refine the provided partition by label so the label condition of
        # bisimulation holds from the start.
        combined: Dict[Tuple[int, int], int] = {}
        block = []
        for v in range(n):
            key = (initial_blocks[v], graph.labels[v])
            block_id = combined.setdefault(key, len(combined))
            block.append(block_id)

    use_out = direction in (BisimDirection.SUCCESSORS, BisimDirection.BOTH)
    use_in = direction in (BisimDirection.PREDECESSORS, BisimDirection.BOTH)

    while True:
        signatures: Dict[Tuple, int] = {}
        new_block = [0] * n
        for v in range(n):
            succ_sig: FrozenSet[int] = frozenset(
                block[w] for w in graph.out_neighbors(v)
            ) if use_out else frozenset()
            pred_sig: FrozenSet[int] = frozenset(
                block[w] for w in graph.in_neighbors(v)
            ) if use_in else frozenset()
            key = (block[v], succ_sig, pred_sig)
            new_block[v] = signatures.setdefault(key, len(signatures))
        if len(signatures) == _num_blocks(block, n):
            block = new_block
            break
        block = new_block
    return _canonicalize(block, n)


def _num_blocks(block: List[int], n: int) -> int:
    return len(set(block[:n]))


def _canonicalize(block: List[int], n: int) -> List[int]:
    """Renumber blocks by smallest member vertex for determinism."""
    first_seen: Dict[int, int] = {}
    result = [0] * n
    for v in range(n):
        old = block[v]
        if old not in first_seen:
            first_seen[old] = len(first_seen)
        result[v] = first_seen[old]
    return result


def is_bisimulation_partition(
    graph: Graph,
    block: Sequence[int],
    direction: BisimDirection = BisimDirection.SUCCESSORS,
) -> bool:
    """Check the bisimulation conditions for a candidate partition.

    Used by tests and by incremental maintenance to validate results: a
    partition is a bisimulation iff same-block vertices share a label and
    the same *set* of neighbor blocks on the matched side(s).
    """
    n = graph.num_vertices
    if len(block) != n:
        return False
    use_out = direction in (BisimDirection.SUCCESSORS, BisimDirection.BOTH)
    use_in = direction in (BisimDirection.PREDECESSORS, BisimDirection.BOTH)
    rep_signature: Dict[int, Tuple] = {}
    for v in range(n):
        succ = frozenset(block[w] for w in graph.out_neighbors(v)) if use_out else None
        pred = frozenset(block[w] for w in graph.in_neighbors(v)) if use_in else None
        sig = (graph.labels[v], succ, pred)
        existing = rep_signature.get(block[v])
        if existing is None:
            rep_signature[block[v]] = sig
        elif existing != sig:
            return False
    return True
