"""Summary graphs: ``Bisim(G)`` and its reverse ``Bisim^{-1}``.

Sec. 2 of the paper defines the summary graph of ``G`` under the maximal
bisimulation ``B``:

* ``V' = { [v]_equiv | v in V }`` — one supernode per equivalence class;
* ``E' = { ([u]_equiv, [v]_equiv) | (u, v) in E }``;
* ``L'([v]_equiv) = L(v)`` — well defined because equivalent vertices share
  a label.

``Bisim^{-1}`` — mapping a supernode back to its member vertices — "is
implemented by hash tables" in the paper; here it is the ``extent`` dict.
The summary graph is deliberately *yet another* :class:`~repro.graph.Graph`
so every index and search algorithm applies to it unchanged, which is the
crux of the framework's genericity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.bisim.refinement import BisimDirection, maximal_bisimulation
from repro.graph.digraph import Graph
from repro.utils.errors import GraphError


@dataclass
class SummaryGraph:
    """A summary graph plus the two hash tables linking it to its base graph.

    Attributes
    ----------
    graph:
        The summary topology (a plain :class:`Graph` sharing the base
        graph's label table).
    supernode_of:
        ``supernode_of[v]`` is the supernode of base vertex ``v``
        (the paper's ``Bisim(v)``).
    extent:
        ``extent[s]`` lists the base vertices summarized by supernode ``s``
        (the paper's ``Bisim^{-1}``), sorted ascending.
    """

    graph: Graph
    supernode_of: List[int]
    extent: List[List[int]] = field(default_factory=list)

    def members(self, supernode: int) -> List[int]:
        """Base vertices of one supernode (``Bisim^{-1}``)."""
        try:
            return self.extent[supernode]
        except IndexError:
            raise GraphError(f"unknown supernode: {supernode}") from None

    def supernode(self, base_vertex: int) -> int:
        """Supernode of one base vertex (``Bisim``)."""
        try:
            return self.supernode_of[base_vertex]
        except IndexError:
            raise GraphError(f"unknown base vertex: {base_vertex}") from None

    @property
    def compression_ratio_vertices(self) -> float:
        """``|V'| / |V|``."""
        base = len(self.supernode_of)
        return self.graph.num_vertices / base if base else 1.0

    def size_ratio(self, base_graph: Graph) -> float:
        """``|Bisim(G)| / |G|`` with ``|G| = |V| + |E|`` (Tab. 3's metric)."""
        return self.graph.size / base_graph.size if base_graph.size else 1.0


def summarize(
    graph: Graph,
    direction: BisimDirection = BisimDirection.SUCCESSORS,
    blocks: Sequence[int] | None = None,
) -> SummaryGraph:
    """Summarize ``graph`` by (maximal) bisimulation.

    Parameters
    ----------
    graph:
        The graph to summarize.
    direction:
        Bisimulation matching direction (see
        :class:`~repro.bisim.refinement.BisimDirection`).
    blocks:
        Optional precomputed partition (block id per vertex); when omitted
        the maximal bisimulation is computed.  Supplying blocks lets the
        incremental maintainer rebuild summaries from its own partition.

    Returns
    -------
    SummaryGraph
    """
    if blocks is None:
        block_of = maximal_bisimulation(graph, direction=direction)
    else:
        if len(blocks) != graph.num_vertices:
            raise GraphError("blocks must assign an id to every vertex")
        block_of = list(blocks)

    num_blocks = (max(block_of) + 1) if block_of else 0
    summary = Graph(graph.label_table)
    extent: List[List[int]] = [[] for _ in range(num_blocks)]
    for v in graph.vertices():
        extent[block_of[v]].append(v)

    for block_id in range(num_blocks):
        members = extent[block_id]
        if not members:
            raise GraphError(f"partition block {block_id} is empty")
        # L'([v]) = L(v): all members share a label by the bisim invariant.
        summary.add_vertex_with_label_id(graph.labels[members[0]])

    seen_edges = set()
    for u, v in graph.edges():
        edge = (block_of[u], block_of[v])
        if edge not in seen_edges:
            seen_edges.add(edge)
            summary.add_edge(*edge)

    return SummaryGraph(graph=summary, supernode_of=block_of, extent=extent)
