#!/usr/bin/env python
"""CI smoke for the v4 mmap index container.

Round-trips a real index (synt-1k, 2 layers) through the v4 binary
format and holds it to the format's core promises:

* the mmap-backed reload has the same ``state_digest`` as the
  heap-built original (zero-copy views must be semantically invisible);
* every graph in the reload reports itself mmap-backed;
* the v4 -> v3 -> v4 conversion chain (``repro-bigindex persist``)
  preserves the digest end to end;
* the v4 cold load is faster than the v3 cold load (the headline
  acceptance criterion, asserted here only loosely — >= 2x — because CI
  machines are noisy; the committed BENCH_hotpaths.json pins the real
  ratio).

Writes a JSON report for the artifact upload and exits non-zero on any
violated contract.

Usage:
    PYTHONPATH=src python scripts/persist_smoke.py --out persist-report.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

from repro.core.cost import CostParams
from repro.core.index import BiGIndex
from repro.core.persistence import load_index, save_index
from repro.datasets.synthetic import synthetic_dataset


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="synt-1k")
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required v4-vs-v3 cold-load ratio (loose; "
                             "the bench baseline pins the real number)")
    parser.add_argument("--out", default="persist-report.json")
    args = parser.parse_args()

    graph, ontology = synthetic_dataset(args.dataset, seed=args.seed)
    built = BiGIndex.build(
        graph,
        ontology,
        num_layers=args.layers,
        cost_params=CostParams(num_samples=25),
    )
    want = built.state_digest()
    report = {
        "dataset": args.dataset,
        "layers": built.num_layers,
        "digest": want,
        "failures": [],
    }

    def fail(message: str) -> None:
        report["failures"].append(message)
        print(f"FAIL: {message}", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="persist-smoke-") as tmp:
        v4_dir = os.path.join(tmp, "idx-v4")
        v3_dir = os.path.join(tmp, "idx-v3")
        save_index(built, v4_dir, format=4)
        save_index(built, v3_dir, format=3)
        report["v4_bytes"] = sum(
            os.path.getsize(os.path.join(v4_dir, name))
            for name in os.listdir(v4_dir)
        )
        report["v3_bytes"] = sum(
            os.path.getsize(os.path.join(v3_dir, name))
            for name in os.listdir(v3_dir)
        )

        start = time.perf_counter()
        v4 = load_index(v4_dir, ontology)
        report["v4_load_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        load_index(v3_dir, ontology)
        report["v3_load_seconds"] = time.perf_counter() - start
        if report["v4_load_seconds"] > 0:
            report["load_speedup"] = round(
                report["v3_load_seconds"] / report["v4_load_seconds"], 2
            )

        got = v4.state_digest()
        if got != want:
            fail(f"v4 round trip changed the digest: {got} != {want}")
        graphs = [v4.layer_graph(m) for m in range(v4.num_layers + 1)]
        heap_resident = [
            m for m, g in enumerate(graphs) if not g.is_mmap_backed
        ]
        report["mmap_backed"] = not heap_resident
        if heap_resident:
            fail(f"graphs {heap_resident} are heap-resident after a v4 "
                 f"load; the container should serve them zero-copy")

        # Conversion chain: v4 -> v3 -> v4, digests stable throughout.
        down = os.path.join(tmp, "down-v3")
        up = os.path.join(tmp, "up-v4")
        save_index(v4, down, format=3)
        save_index(load_index(down, ontology), up, format=4)
        chained = load_index(up, ontology).state_digest()
        if chained != want:
            fail(f"v4 -> v3 -> v4 chain drifted: {chained} != {want}")

        speedup = report.get("load_speedup", 0.0)
        if speedup < args.min_speedup:
            fail(f"v4 cold load only {speedup}x faster than v3 "
                 f"(required >= {args.min_speedup}x)")

    report["ok"] = not report["failures"]
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"persist smoke: {'OK' if report['ok'] else 'FAIL'} "
        f"(digest {want[:12]}..., v4 load "
        f"{report['v4_load_seconds'] * 1e3:.1f} ms, "
        f"{report.get('load_speedup', 0.0)}x vs v3)"
    )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
