#!/usr/bin/env python
"""Mixed-workload smoke for a running ``repro-bigindex serve`` instance.

CI's ``serve-smoke`` job boots the server against a persisted index and
pushes a mixed workload through it with this script: single queries,
batches, deliberately budget-starved queries (exercising the 429
degraded path), and introspection reads, over persistent keep-alive
connections.  The run **fails on any 5xx** and writes a throughput
summary JSON for the artifact upload.

Usage:
    PYTHONPATH=src python scripts/serve_smoke.py \
        --url http://127.0.0.1:8180 --requests 200 --out serve-qps.json
"""

from __future__ import annotations

import argparse
import collections
import itertools
import json
import random
import sys
import time

from repro.serve.client import ServeClient


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", required=True)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--keywords",
        nargs="+",
        required=True,
        help="label pool; queries are 2-keyword combinations of these",
    )
    parser.add_argument("--out", default="serve-qps.json")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    queries = list(itertools.combinations(args.keywords, 2))
    if not queries:
        print("need at least two keywords", file=sys.stderr)
        return 2
    rng = random.Random(args.seed)
    statuses = collections.Counter()
    answers = 0
    degraded = 0
    retries = 0
    started = time.perf_counter()
    with ServeClient.for_url(args.url) as client:
        health = client.healthz()
        statuses[health.status] += 1
        if not health.ok:
            print(f"healthz answered {health.status}", file=sys.stderr)
            return 1
        for i in range(args.requests):
            keywords = list(queries[rng.randrange(len(queries))])
            roll = rng.random()
            if roll < 0.55:
                response = client.query(keywords)
            elif roll < 0.75:
                batch = [
                    list(queries[rng.randrange(len(queries))])
                    for _ in range(3)
                ]
                response = client.batch(batch)
            elif roll < 0.9:
                # Budget-starved: exercises the degraded/429 contract.
                response = client.query(keywords, expansion_budget=1)
            elif roll < 0.95:
                response = client.healthz()
            else:
                response = client.metrics()
            statuses[response.status] += 1
            retries += response.attempts - 1
            if response.degraded:
                degraded += 1
            payload = response.payload
            if isinstance(payload, dict):
                answers += len(payload.get("answers") or ())
                for entry in payload.get("results") or ():
                    answers += len(entry.get("answers") or ())
    elapsed = time.perf_counter() - started

    total = sum(statuses.values())
    faults = sum(count for code, count in statuses.items() if code >= 500)
    summary = {
        "url": args.url,
        "requests": total,
        "seconds": round(elapsed, 4),
        "qps": round(total / elapsed, 1) if elapsed else None,
        "statuses": {str(code): count for code, count in sorted(statuses.items())},
        "answers": answers,
        "degraded": degraded,
        "retries": retries,
        "faults": faults,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    print(json.dumps(summary, indent=2, sort_keys=True))
    if faults:
        breakdown = ", ".join(
            f"{code}: {count}" for code, count in sorted(statuses.items())
        )
        print(
            f"FAIL: {faults} 5xx response(s); per-status breakdown: "
            f"{breakdown}",
            file=sys.stderr,
        )
        return 1
    if statuses.get(200, 0) == 0:
        print("FAIL: no successful responses", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
