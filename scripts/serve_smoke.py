#!/usr/bin/env python
"""Mixed-workload smoke for a running ``repro-bigindex serve`` instance.

CI's ``serve-smoke`` job boots the server against a persisted index and
pushes a mixed workload through it with this script: single queries,
batches, deliberately budget-starved queries (exercising the 429
degraded path), and introspection reads, over persistent keep-alive
connections.  The run **fails on any 5xx** and writes a throughput
summary JSON for the artifact upload.

Observability checks ride along:

* ``--prom-out FILE`` scrapes ``GET /metrics`` with ``Accept:
  text/plain`` after the workload, validates the body with the strict
  Prometheus parser (:func:`repro.obs.promtext.parse_prometheus`),
  requires the bucketed ``serve_latency_seconds`` histogram family, and
  writes the exposition for the artifact upload.
* ``--access-log FILE`` (the same file the server was booted with)
  schema-validates every JSONL record and asserts that **every 429/5xx
  the workload observed is attributable to a logged request ID** — the
  client records each response's ``X-Request-Id`` and the log must
  contain it.

Usage:
    PYTHONPATH=src python scripts/serve_smoke.py \
        --url http://127.0.0.1:8180 --requests 200 --out serve-qps.json \
        --access-log access-log.jsonl --prom-out metrics.prom
"""

from __future__ import annotations

import argparse
import collections
import itertools
import json
import random
import sys
import time

from repro.obs.promtext import parse_prometheus
from repro.obs.schema import validate_access_record
from repro.serve.client import ServeClient


def check_prometheus(client: ServeClient, prom_out: str) -> int:
    """Scrape the text exposition, strict-parse it, write the artifact."""
    response = client.metrics(prometheus=True)
    if response.status != 200:
        print(
            f"FAIL: Prometheus /metrics answered {response.status}",
            file=sys.stderr,
        )
        return 1
    content_type = response.headers.get("Content-Type", "")
    if not content_type.startswith("text/plain"):
        print(
            f"FAIL: Prometheus /metrics Content-Type {content_type!r}",
            file=sys.stderr,
        )
        return 1
    try:
        families = parse_prometheus(response.text)
    except ValueError as exc:
        print(f"FAIL: invalid Prometheus exposition: {exc}", file=sys.stderr)
        return 1
    histograms = {
        name for name, family in families.items()
        if family.type == "histogram"
    }
    if "serve_latency_seconds" not in histograms:
        print(
            f"FAIL: no serve_latency_seconds histogram family in "
            f"/metrics (histograms: {sorted(histograms)})",
            file=sys.stderr,
        )
        return 1
    with open(prom_out, "w", encoding="utf-8") as handle:
        handle.write(response.text)
    print(
        f"prometheus: {len(families)} familie(s), "
        f"{len(histograms)} histogram(s), written to {prom_out}"
    )
    return 0


def check_access_log(path: str, unattributed: dict) -> int:
    """Schema-validate the access log; attribute every 429/5xx to it.

    ``unattributed`` maps request_id -> status for every degraded or
    faulted response the workload saw; each must appear in the log.
    """
    pending = dict(unattributed)
    records = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    print(
                        f"FAIL: {path}:{lineno}: not JSON: {exc}",
                        file=sys.stderr,
                    )
                    return 1
                problems = validate_access_record(record)
                if problems:
                    print(
                        f"FAIL: {path}:{lineno}: {'; '.join(problems)}",
                        file=sys.stderr,
                    )
                    return 1
                records += 1
                pending.pop(record.get("request_id"), None)
    except FileNotFoundError:
        print(f"FAIL: access log {path} not found", file=sys.stderr)
        return 1
    if not records:
        print(f"FAIL: access log {path} is empty", file=sys.stderr)
        return 1
    if pending:
        listed = ", ".join(
            f"{rid} (HTTP {status})"
            for rid, status in sorted(pending.items())
        )
        print(
            f"FAIL: {len(pending)} degraded/faulted response(s) have no "
            f"access-log line: {listed}",
            file=sys.stderr,
        )
        return 1
    print(
        f"access log: {records} schema-valid record(s); all "
        f"{len(unattributed)} degraded/faulted response(s) attributed"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", required=True)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--keywords",
        nargs="+",
        required=True,
        help="label pool; queries are 2-keyword combinations of these",
    )
    parser.add_argument("--out", default="serve-qps.json")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--access-log",
        default=None,
        help="server-side access log (JSONL) to schema-validate and "
             "attribute every 429/5xx response against",
    )
    parser.add_argument(
        "--prom-out",
        default=None,
        help="scrape GET /metrics in Prometheus text format after the "
             "workload, strict-parse it, and write it here",
    )
    args = parser.parse_args()

    queries = list(itertools.combinations(args.keywords, 2))
    if not queries:
        print("need at least two keywords", file=sys.stderr)
        return 2
    rng = random.Random(args.seed)
    statuses = collections.Counter()
    answers = 0
    degraded = 0
    retries = 0
    # request_id -> status of every degraded (429) or faulted (5xx)
    # response, for the access-log attribution check.
    unattributed = {}
    started = time.perf_counter()
    with ServeClient.for_url(args.url) as client:
        health = client.healthz()
        statuses[health.status] += 1
        if not health.ok:
            print(f"healthz answered {health.status}", file=sys.stderr)
            return 1
        for i in range(args.requests):
            keywords = list(queries[rng.randrange(len(queries))])
            roll = rng.random()
            if roll < 0.55:
                response = client.query(keywords)
            elif roll < 0.75:
                batch = [
                    list(queries[rng.randrange(len(queries))])
                    for _ in range(3)
                ]
                response = client.batch(batch)
            elif roll < 0.9:
                # Budget-starved: exercises the degraded/429 contract.
                response = client.query(keywords, expansion_budget=1)
            elif roll < 0.95:
                response = client.healthz()
            else:
                response = client.metrics()
            statuses[response.status] += 1
            retries += response.attempts - 1
            if response.degraded:
                degraded += 1
            if response.status == 429 or response.status >= 500:
                unattributed[response.request_id] = response.status
            payload = response.payload
            if isinstance(payload, dict):
                answers += len(payload.get("answers") or ())
                for entry in payload.get("results") or ():
                    answers += len(entry.get("answers") or ())
        elapsed = time.perf_counter() - started

        prom_rc = (
            check_prometheus(client, args.prom_out)
            if args.prom_out else 0
        )

    total = sum(statuses.values())
    faults = sum(count for code, count in statuses.items() if code >= 500)
    summary = {
        "url": args.url,
        "requests": total,
        "seconds": round(elapsed, 4),
        "qps": round(total / elapsed, 1) if elapsed else None,
        "statuses": {str(code): count for code, count in sorted(statuses.items())},
        "answers": answers,
        "degraded": degraded,
        "retries": retries,
        "faults": faults,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
    print(json.dumps(summary, indent=2, sort_keys=True))

    access_rc = (
        check_access_log(args.access_log, unattributed)
        if args.access_log else 0
    )

    if faults:
        breakdown = ", ".join(
            f"{code}: {count}" for code, count in sorted(statuses.items())
        )
        print(
            f"FAIL: {faults} 5xx response(s); per-status breakdown: "
            f"{breakdown}",
            file=sys.stderr,
        )
        return 1
    if statuses.get(200, 0) == 0:
        print("FAIL: no successful responses", file=sys.stderr)
        return 1
    return prom_rc or access_rc


if __name__ == "__main__":
    sys.exit(main())
