#!/usr/bin/env python
"""CI wrapper for the process-level crash-recovery chaos drill.

Runs :func:`repro.verify.chaoscheck.run_chaos_drill` — real
``repro-bigindex serve`` subprocesses, SIGKILLed mid-mutation-stream
(including simulated torn WAL tails), restarted, and compared against an
in-process oracle holding exactly the acked op prefix — then writes the
per-round event log (including the pre-kill flight-recorder timeline
captured from each doomed process and diffed against the recovered WAL
prefix) as a JSON report for the artifact upload and exits non-zero on
any violated durability contract.

Usage:
    PYTHONPATH=src python scripts/chaos_drill.py \
        --rounds 3 --ops-per-round 6 --seed 0 --out chaos-report.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.verify.chaoscheck import run_chaos_drill


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--ops-per-round", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--index-format", type=int, choices=(3, 4),
                        default=4,
                        help="on-disk format the server recovers from "
                             "(4 = mmap container, 3 = legacy text)")
    parser.add_argument("--out", default="chaos-report.json")
    args = parser.parse_args()

    report = run_chaos_drill(
        rounds=args.rounds,
        ops_per_round=args.ops_per_round,
        seed=args.seed,
        index_format=args.index_format,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
    print(report.format())
    if not report.ok:
        print(
            f"FAIL: {len(report.failures)} durability violation(s); "
            f"reproduce with --seed {args.seed}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
