#!/usr/bin/env python
"""Sharded-index smoke: parallel build + scatter-gather mixed workload.

CI's ``shard-smoke`` job runs this against the community-structured
``synt-100k`` dataset: plan the shards, build them with a process pool
(``--workers 4``), persist the sharded layout, reload it through
:func:`repro.core.sharding.load_any_index` (manifest verification and
WAL-tail replay included), and push a mixed 50-query workload through
the scatter-gather evaluator — plain top-k, budget-starved resilient
queries (the degraded path), and forced-layer queries.

The artifact JSON records the claims the PR rides on:

* ``build`` — total wall-clock plus **per-shard** build seconds (each
  locale times its own subprocess), cut-edge count and zone size;
* ``workload`` — qps, per-query mean, degraded/error counts;
* ``scatter`` — per-shard scatter timing histograms from the
  ``shard.scatter.<name>.seconds`` metrics recorded under
  :func:`repro.obs.runtime.instrumented`.

Any query error (other than the deliberate budget degradations) fails
the run.

Usage:
    PYTHONPATH=src python scripts/shard_smoke.py \
        --dataset synt-100k --shards 4 --workers 4 --queries 50 \
        --out shard-qps.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
import tempfile
import time

from repro.core.cost import CostParams
from repro.core.sharding import (
    ShardedEvaluator,
    build_sharded,
    load_any_index,
)
from repro.datasets.synthetic import synthetic_dataset
from repro.obs.runtime import instrumented
from repro.search.banks import BackwardKeywordSearch
from repro.search.base import KeywordQuery
from repro.utils.budget import Budget
from repro.utils.errors import BigIndexError, BudgetExceeded


def probe_pool(graph, count: int = 12):
    """2- and 3-keyword combinations of the most frequent labels."""
    histogram = graph.label_histogram()
    labels = sorted(histogram, key=lambda l: (-histogram[l], l))[:6]
    pool = [list(pair) for pair in itertools.combinations(labels, 2)]
    pool.extend(list(t) for t in itertools.combinations(labels, 3))
    return pool[:count]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="synt-100k")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--halo", type=int, default=6)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--samples", type=int, default=25,
                        help="cost-model sample count")
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="shard-qps.json")
    parser.add_argument("--index-dir", default=None,
                        help="where to persist the sharded index "
                             "(default: a temporary directory)")
    args = parser.parse_args()

    graph, ontology = synthetic_dataset(args.dataset, seed=args.seed)
    print(
        f"{args.dataset}: |V|={graph.num_vertices} |E|={graph.num_edges}"
    )

    index_dir = args.index_dir or tempfile.mkdtemp(prefix="shard-smoke-")
    started = time.perf_counter()
    sharded = build_sharded(
        graph,
        ontology,
        num_shards=args.shards,
        halo_radius=args.halo,
        directory=index_dir,
        workers=args.workers,
        num_layers=args.layers,
        cost_params=CostParams(num_samples=args.samples),
    )
    build_seconds = time.perf_counter() - started
    per_shard = {
        locale.name: round(locale.build_seconds, 3)
        for locale in sharded.locales
    }
    print(
        f"built {sharded.num_shards} shard(s) + zone in "
        f"{build_seconds:.1f}s with {args.workers} worker(s); "
        f"per-shard {per_shard}"
    )

    started = time.perf_counter()
    reloaded = load_any_index(index_dir, ontology)
    reload_seconds = time.perf_counter() - started
    if reloaded.state_digest() != sharded.state_digest():
        print("FAIL: reloaded digest differs from the built index",
              file=sys.stderr)
        return 1
    print(f"reloaded + verified manifests in {reload_seconds:.2f}s")

    evaluator = ShardedEvaluator(
        reloaded, BackwardKeywordSearch(d_max=args.halo // 2, k=10)
    )
    pool = probe_pool(graph)
    rng = random.Random(args.seed)
    answers = degraded = errors = 0
    latencies = []
    with instrumented(trace=False) as inst:
        for _ in range(args.queries):
            keywords = pool[rng.randrange(len(pool))]
            query = KeywordQuery(keywords)
            roll = rng.random()
            t0 = time.perf_counter()
            try:
                if roll < 0.7:
                    result = evaluator.evaluate(query)
                elif roll < 0.9:
                    # Budget-starved: must degrade, never drop silently.
                    result = evaluator.evaluate_resilient(
                        query, budget=Budget(max_expansions=50)
                    )
                    if result.degraded:
                        degraded += 1
                else:
                    result = evaluator.evaluate(query, layer=0)
                answers += len(result.answers)
            except BudgetExceeded:
                degraded += 1
            except BigIndexError as exc:
                errors += 1
                print(f"FAIL: {keywords}: {exc}", file=sys.stderr)
            latencies.append(time.perf_counter() - t0)
        scatter = {
            name: stats
            for name, stats in inst.metrics.histograms().items()
            if name.startswith("shard.scatter.")
        }

    total_seconds = sum(latencies)
    summary = {
        "dataset": args.dataset,
        "graph": {"vertices": graph.num_vertices, "edges": graph.num_edges},
        "build": {
            "shards": sharded.num_shards,
            "workers": args.workers,
            "seconds": round(build_seconds, 3),
            "per_shard_seconds": per_shard,
            "cut_edges": sharded.cut_edge_count(),
            "zone_vertices": (
                len(sharded.zone.global_ids)
                if sharded.zone is not None else 0
            ),
            "reload_seconds": round(reload_seconds, 3),
        },
        "workload": {
            "queries": args.queries,
            "seconds": round(total_seconds, 3),
            "qps": round(args.queries / total_seconds, 1)
            if total_seconds else None,
            "mean_ms": round(total_seconds / args.queries * 1e3, 2),
            "answers": answers,
            "degraded": degraded,
            "errors": errors,
        },
        "scatter": scatter,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(summary["workload"], indent=2, sort_keys=True))
    print(f"wrote {args.out}")

    if errors:
        return 1
    if answers == 0:
        print("FAIL: the workload produced no answers", file=sys.stderr)
        return 1
    if not scatter:
        print("FAIL: no shard.scatter.* timings were recorded",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
