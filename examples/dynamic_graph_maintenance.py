#!/usr/bin/env python
"""Maintaining a BiG-index under data-graph and ontology updates.

Knowledge graphs change: facts are added and retracted, and taxonomies
evolve.  Sec. 3.2 of the paper describes incremental maintenance of the
summary-graph hierarchy (via incremental bisimulation) and the two
ontology-update cases.  This example shows all three on a live index:

1. edge insertions/deletions keep every layer a valid bisimulation
   summary and keep query answers exact;
2. the index drifts away from minimality under updates, and ``rebuild()``
   restores it ("recomputed occasionally to maintain its efficiency");
3. removing an ontology edge drops the affected generalizations.

Run:  python examples/dynamic_graph_maintenance.py
"""

import random

from repro import BiGIndex, CostParams, KeywordQuery, BackwardKeywordSearch, boost
from repro.datasets import yago_like
from repro.datasets.workloads import generate_queries


def main() -> None:
    dataset = yago_like(scale=0.2)
    graph, ontology = dataset.graph, dataset.ontology
    print(f"{dataset.name}: {dataset.stats}")

    index = BiGIndex.build(
        graph, ontology, num_layers=2, cost_params=CostParams(num_samples=20)
    )
    print(f"initial layer sizes: {index.layer_sizes()}")

    (spec,) = generate_queries(
        graph, [2], seed=3, min_answers=3, ontology=ontology
    )
    query = spec.query
    algorithm = BackwardKeywordSearch(d_max=3, k=None)

    def check_equivalence(tag: str) -> None:
        direct = {(a.root, a.score) for a in algorithm.bind(graph).search(query)}
        boosted = boost(algorithm, index)
        got = {(a.root, a.score) for a in boosted.search(query, layer=1)}
        status = "ok" if direct == got else "MISMATCH"
        print(f"  [{tag}] {len(direct)} answers, eval == eval_Ont: {status}")
        assert direct == got

    check_equivalence("before updates")

    # 1. Apply a burst of random edge updates through the index.
    rng = random.Random(42)
    n = graph.num_vertices
    applied = 0
    while applied < 15:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        if graph.has_edge(u, v):
            index.delete_edge(u, v)
        else:
            index.insert_edge(u, v)
        applied += 1
    print(f"\nafter {applied} edge updates: layer sizes {index.layer_sizes()} "
          f"(drift counter {index.drift})")
    check_equivalence("after edge updates")

    # 2. Rebuild restores minimal summaries.
    before = index.total_index_size()
    index.rebuild()
    after = index.total_index_size()
    print(f"\nrebuild(): index size {before} -> {after} (drift reset to "
          f"{index.drift})")
    check_equivalence("after rebuild")

    # 3. Ontology update: retract a subtype edge used by layer 1.
    config = index.layers[0].config
    if config:
        source, target = next(iter(config))
        print(f"\nretracting ontology edge {source!r} -> {target!r}")
        index.remove_ontology_edge(source, target)
        assert source not in index.layers[0].config
        print(f"layer sizes after ontology retraction: {index.layer_sizes()}")
        check_equivalence("after ontology retraction")

    print("\nmaintenance demo complete: all equivalence checks passed")


if __name__ == "__main__":
    main()
