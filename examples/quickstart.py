#!/usr/bin/env python
"""Quickstart: build a BiG-index over the paper's Fig. 1 example and query it.

Walks the full pipeline on a small knowledge graph:

1. build the data graph and its ontology (Figs. 1-2 of the paper);
2. construct the hierarchical BiG-index (generalize + summarize);
3. run a keyword query directly and through the index;
4. show they agree, and what the index saved.

Run:  python examples/quickstart.py
"""

from repro import (
    BiGIndex,
    CostParams,
    Graph,
    KeywordQuery,
    OntologyGraph,
    BackwardKeywordSearch,
    boost,
)


def build_ontology() -> OntologyGraph:
    """The Fig. 2 ontology: types and their supertypes."""
    ontology = OntologyGraph()
    for subtype, supertype in [
        ("Academics", "Person"),
        ("Investor", "Person"),
        ("Student", "Person"),
        ("Harvard Univ.", "Univ."),
        ("Cornell Univ.", "Univ."),
        ("Columbia Univ.", "Univ."),
        ("UC Berkeley", "Univ."),
        ("Univ.", "Organization"),
        ("Ivy League", "Organization"),
        ("Startup", "Organization"),
        ("Massachusetts", "Eastern"),
        ("New York", "Eastern"),
        ("California", "Western"),
        ("Eastern", "State"),
        ("Western", "State"),
    ]:
        ontology.add_subtype(subtype, supertype)
    return ontology


def build_graph() -> Graph:
    """A small version of Fig. 1's data graph."""
    g = Graph()
    graham = g.add_vertex("Academics", name="P. Graham")
    idreos = g.add_vertex("Academics", name="S. Idreos")
    harvard = g.add_vertex("Harvard Univ.")
    cornell = g.add_vertex("Cornell Univ.")
    columbia = g.add_vertex("Columbia Univ.")
    berkeley = g.add_vertex("UC Berkeley")
    ivy = g.add_vertex("Ivy League")
    mass = g.add_vertex("Massachusetts")
    ny = g.add_vertex("New York")
    cal = g.add_vertex("California")

    for u, v in [
        (graham, harvard), (graham, cornell), (idreos, harvard),
        (harvard, ivy), (cornell, ivy), (columbia, ivy),
        (harvard, mass), (cornell, ny), (columbia, ny),
        (berkeley, cal),
    ]:
        g.add_edge(u, v)

    # "The 100 Persons" of Fig. 1 (S. Russell, ..., A. Rodger): students
    # who all point at UC Berkeley, which bisimulation will collapse into
    # a single supernode after one generalization step.
    for i in range(100):
        student = g.add_vertex("Student", name=f"student-{i}")
        g.add_edge(student, berkeley)
    return g


def main() -> None:
    ontology = build_ontology()
    graph = build_graph()
    print(f"data graph: |V|={graph.num_vertices} |E|={graph.num_edges}")

    # 1. Build the index: each layer generalizes labels one ontology step
    #    (the paper's default) and summarizes by backward bisimulation.
    index = BiGIndex.build(
        graph, ontology, num_layers=2, cost_params=CostParams(exact=True)
    )
    for m in range(1, index.num_layers + 1):
        layer = index.layer_graph(m)
        print(
            f"layer {m}: |V|={layer.num_vertices} |E|={layer.num_edges} "
            f"(size ratio {index.size_ratio(m):.3f})"
        )

    # 2. The query of Example 1.1: {Massachusetts, Ivy League} with
    #    d_max = 3 (the Fig. 1 answer tree roots at P. Graham).
    query = KeywordQuery(["Massachusetts", "Ivy League"])
    algorithm = BackwardKeywordSearch(d_max=3, k=None)

    direct = algorithm.bind(graph).search(query)
    print(f"\ndirect eval: {len(direct)} answers")

    boosted = boost(algorithm, index)
    result = boosted.evaluate(query)
    print(
        f"eval_Ont:    {len(result.answers)} answers "
        f"(layer {result.layer}, {result.num_generalized} generalized answers, "
        f"{result.num_candidates} candidates verified)"
    )

    assert {(a.root, a.score) for a in direct} == {
        (a.root, a.score) for a in result.answers
    }, "Theorem 4.2: eval == eval_Ont"
    print("eval(G, Q, f) == eval_Ont(G, Q, f)  [Theorem 4.2 holds]")

    best = result.answers[0]
    print(
        f"\nbest answer: root={graph.name(best.root)} "
        f"score={best.score} keywords="
        + ", ".join(f"{kw}->{graph.name(v)}" for kw, v in best.keyword_nodes)
    )


if __name__ == "__main__":
    main()
