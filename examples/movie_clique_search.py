#!/usr/bin/env python
"""r-clique search on a movie graph (IMDB-like) — and its memory wall.

Two things from the paper's evaluation, demonstrated end to end:

1. r-clique finds sets of entities pairwise within R hops ("an actor, a
   film and a studio that are all closely related") and BiG-index
   accelerates it by running the search-space decomposition on a summary
   layer (Sec. 5.2's boost-dkws).
2. r-clique's O(mn) neighbor list explodes on dense movie graphs — the
   paper estimates 16 TB on IMDB.  We reproduce the blow-up with a memory
   budget on the IMDB-like stand-in, then show the same query succeeding
   on the YAGO-like graph.

Run:  python examples/movie_clique_search.py
"""

import time

from repro import BiGIndex, CostParams, KeywordQuery, RClique, boost
from repro.datasets import imdb_like, yago_like
from repro.datasets.workloads import generate_queries
from repro.search.rclique import NeighborIndexTooLarge

RADIUS = 4  # the paper's R


def demonstrate_imdb_blowup() -> None:
    dataset = imdb_like(scale=0.3)
    print(f"{dataset.name}: {dataset.stats}")
    budget = 150 * dataset.graph.num_vertices
    print(
        f"building the R={RADIUS} neighbor list with a budget of "
        f"{budget:,} entries..."
    )
    try:
        RClique(radius=RADIUS, max_index_entries=budget).bind(dataset.graph)
        print("unexpectedly fit — try a denser graph")
    except NeighborIndexTooLarge as exc:
        print(f"infeasible, as the paper found on IMDB: {exc}")


def demonstrate_boosted_cliques() -> None:
    dataset = yago_like(scale=0.4)
    print(f"\n{dataset.name}: {dataset.stats}")
    index = BiGIndex.build(
        dataset.graph,
        dataset.ontology,
        num_layers=2,
        cost_params=CostParams(num_samples=20),
    )
    queries = generate_queries(
        dataset.graph,
        [2, 3],
        seed=5,
        min_support=max(5, dataset.graph.num_vertices // 200),
        min_answers=3,
        ontology=dataset.ontology,
    )
    algorithm = RClique(radius=RADIUS, k=5)
    direct_searcher = algorithm.bind(dataset.graph)
    # Exact configuration: generated cliques are re-verified against the
    # data graph's neighbor index (cached from the direct binding).
    boosted = boost(algorithm, index, generation="vertex")
    boosted.warm()

    for spec in queries:
        query = spec.query
        start = time.perf_counter()
        direct = direct_searcher.search(query)
        direct_ms = (time.perf_counter() - start) * 1e3
        start = time.perf_counter()
        result = boosted.evaluate(query, layer=1)
        boosted_ms = (time.perf_counter() - start) * 1e3
        print(
            f"{spec.qid} keywords={spec.keywords}: "
            f"direct {direct_ms:.1f}ms ({len(direct)} cliques), "
            f"boost-dkws {boosted_ms:.1f}ms ({len(result.answers)} cliques)"
        )
        if direct and result.answers:
            print(
                f"   best direct weight {direct[0].score}, "
                f"best boosted weight {result.answers[0].score}"
            )


def main() -> None:
    demonstrate_imdb_blowup()
    demonstrate_boosted_cliques()


if __name__ == "__main__":
    main()
