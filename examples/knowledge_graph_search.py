#!/usr/bin/env python
"""Knowledge-graph keyword search at benchmark scale (YAGO-like).

The scenario from the paper's introduction: a user without schema
knowledge queries a large knowledge graph with a handful of keywords
("the player who works in an England club") and gets ranked subtree
answers.  This example:

1. generates the YAGO3-like benchmark dataset;
2. builds a 3-layer BiG-index and prints its compression profile;
3. runs a Tab. 4-style workload through Blinks directly and through
   BiG-index, with the paper's per-phase time breakdown;
4. demonstrates the generalized-query capability of Example 1.1's Q3:
   querying with *type* keywords that never appear in the data directly.

Run:  python examples/knowledge_graph_search.py
"""

import time

from repro import BiGIndex, CostParams, KeywordQuery, Blinks, boost
from repro.datasets import yago_like
from repro.datasets.workloads import generate_queries

SCALE = 0.5  # ~5,000 vertices; raise for a heavier demonstration


def main() -> None:
    dataset = yago_like(scale=SCALE)
    print(f"{dataset.name}: {dataset.stats}  ({dataset.note})")

    start = time.perf_counter()
    index = BiGIndex.build(
        dataset.graph,
        dataset.ontology,
        num_layers=3,
        cost_params=CostParams(num_samples=25),
    )
    print(
        f"index built in {time.perf_counter() - start:.1f}s; "
        f"layer sizes {index.layer_sizes()} "
        f"(layer-1 ratio {index.size_ratio(1):.3f})"
    )

    # A Tab. 4-style workload: semantically related, answer-rich keywords.
    queries = generate_queries(
        dataset.graph,
        [2, 3, 3],
        seed=11,
        min_support=max(5, dataset.graph.num_vertices // 200),
        min_answers=5,
        ontology=dataset.ontology,
    )

    algorithm = Blinks(d_max=5, k=10, block_size=1000)
    direct_searcher = algorithm.bind(dataset.graph)
    # Exact configuration: candidate roots from the summary answers are
    # re-verified on the data graph (slower than the trust-mode pipeline
    # the benchmarks use, but answers match direct evaluation exactly).
    boosted = boost(algorithm, index, generation="root-verify")
    boosted.warm()

    print("\nquery          direct    BiG-index   layer  breakdown")
    for spec in queries:
        query = spec.query
        start = time.perf_counter()
        direct = direct_searcher.search(query)
        direct_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        result = boosted.evaluate(query, layer=1)
        boosted_ms = (time.perf_counter() - start) * 1e3

        phases = ", ".join(
            f"{name} {seconds * 1e3:.1f}ms"
            for name, seconds in sorted(result.breakdown.totals.items())
            if name != "layer-selection"
        )
        print(
            f"{spec.qid} ({len(spec.keywords)} kw)   "
            f"{direct_ms:7.1f}ms {boosted_ms:8.1f}ms   "
            f"{result.layer}      {phases}"
        )
        print(
            f"   direct answers: {len(direct)}, "
            f"BiG answers: {len(result.answers)}"
        )

    # Generalized keywords: Example 1.1's Q3 uses *types* as keywords.
    # Pick an internal ontology type; the raw algorithm finds nothing
    # (no vertex carries that label), but specializing the keyword through
    # the ontology turns it into a meaningful query family.
    internal_types = [
        t for t in sorted(dataset.ontology.types())
        if dataset.graph.label_support(t) == 0
        and any(
            dataset.graph.label_support(sub) > 0
            for sub in dataset.ontology.direct_subtypes(t)
        )
    ]
    if internal_types:
        general_type = internal_types[0]
        concrete = [
            sub for sub in dataset.ontology.direct_subtypes(general_type)
            if dataset.graph.label_support(sub) > 0
        ]
        print(
            f"\ngeneralized keyword {general_type!r}: no vertex carries it "
            f"(raw search returns nothing), but it covers concrete types "
            f"{concrete[:4]}... via the ontology — the index's layers are "
            "exactly the structure that answers it (Example 1.1, Q3)."
        )


if __name__ == "__main__":
    main()
