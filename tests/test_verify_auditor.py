"""Auditor tests: a clean index passes; each corruption class is caught."""

import pytest

from repro.core.cost import CostParams
from repro.core.index import BiGIndex
from repro.verify import audit_index

EXACT = CostParams(exact=True)


@pytest.fixture
def index(small_ontology, random_graph_factory):
    graph = random_graph_factory(seed=2)
    return BiGIndex.build(graph, small_ontology, num_layers=2, cost_params=EXACT)


class TestCleanIndex:
    def test_fresh_build_passes_with_minimality(self, index):
        report = audit_index(index, expect_minimal=True)
        assert report.ok, report.format()
        assert report.checks_run > 0
        assert "OK" in report.format()

    def test_fig1_index_passes(self, fig1_graph, fig2_ontology):
        index = BiGIndex.build(
            fig1_graph, fig2_ontology, num_layers=2, cost_params=EXACT
        )
        report = audit_index(index, expect_minimal=True)
        assert report.ok, report.format()


class TestCorruptionDetection:
    def test_parent_of_out_of_range(self, index):
        index.layers[0].parent_of[0] = 10_000
        report = audit_index(index)
        assert not report.ok
        assert any(v.check == "partition" for v in report.violations)

    def test_extent_parent_mismatch(self, index):
        extent = index.layers[0].extent
        # Move a vertex between blocks without updating parent_of.
        moved = extent[0].pop() if len(extent[0]) > 1 else extent[0][0]
        extent[-1].append(moved)
        report = audit_index(index)
        assert not report.ok
        assert any(v.check == "partition" for v in report.violations)

    def test_merged_blocks_break_bisimulation(self, index):
        # Force two different-label blocks together: violates both the
        # partition<->extent pairing and the bisimulation conditions once
        # parent_of and extent are rewritten consistently.
        layer = index.layers[0]
        labels = layer.graph.labels
        victim = next(
            s for s in range(1, layer.graph.num_vertices) if labels[s] != labels[0]
        )
        for v in list(layer.extent[victim]):
            layer.parent_of[v] = 0
            layer.extent[0].append(v)
        layer.extent[victim] = []
        report = audit_index(index)
        assert not report.ok

    def test_spurious_summary_edge(self, index):
        layer = index.layers[0]
        graph = layer.graph
        for u in graph.vertices():
            for v in graph.vertices():
                if u != v and not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    report = audit_index(index)
                    assert not report.ok
                    assert any(
                        v_.check == "paths" for v_ in report.violations
                    ), report.format()
                    return
        pytest.skip("summary graph is complete; no spurious edge to add")

    def test_corrupted_summary_label(self, index):
        layer = index.layers[0]
        other = layer.graph.label(1)
        if layer.graph.label(0) == other:
            other = "Zz-corrupt"
        layer.graph.relabel_vertex(0, other)
        report = audit_index(index)
        assert not report.ok
        assert any(v.check in ("labels", "bisimulation") for v in report.violations)

    def test_size_bookkeeping_mismatch(self, index):
        index.layers[0].graph._num_edges += 1
        report = audit_index(index)
        assert not report.ok
        assert any(v.check == "sizes" for v in report.violations)

    def test_non_minimal_partition_flagged_only_when_asked(self, index):
        # Split one block artificially: still a valid bisimulation
        # refinement candidate? No — splitting without summary rewrite
        # breaks partition consistency, so instead exercise the flag via
        # maintenance drift: insert + delete an edge leaves the partition
        # valid but possibly finer than minimal.
        u, v = next(iter(index.base_graph.edges()))
        index.delete_edge(u, v)
        index.insert_edge(u, v)
        report = audit_index(index, expect_minimal=False)
        assert report.ok, report.format()
        # With minimality demanded, the audit either passes (no drift) or
        # reports *only* minimality violations — never invariant breaks.
        strict = audit_index(index, expect_minimal=True)
        assert all(v.check == "minimality" for v in strict.violations), (
            strict.format()
        )
