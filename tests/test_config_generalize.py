"""Unit tests for configurations and Gen/Spec (Sec. 2-3)."""

import pytest

from repro.core.config import Configuration
from repro.core.generalize import (
    generalize_graph,
    generalize_label,
    generalize_query,
    specialize_label,
)
from repro.graph.digraph import Graph, validate_same_topology
from repro.search.base import KeywordQuery
from repro.utils.errors import ConfigurationError


class TestConfiguration:
    def test_mappings_normalize_identity_away(self):
        c = Configuration({"a": "a", "b": "B"})
        assert c.mappings == {"b": "B"}
        assert len(c) == 1

    def test_target_of_defaults_to_identity(self):
        c = Configuration({"a": "A"})
        assert c.target_of("a") == "A"
        assert c.target_of("z") == "z"

    def test_domain_and_image(self):
        c = Configuration({"a": "X", "b": "X", "c": "Y"})
        assert c.domain == {"a", "b", "c"}
        assert c.image == {"X", "Y"}

    def test_sources_of(self):
        c = Configuration({"a": "X", "b": "X", "c": "Y"})
        assert c.sources_of("X") == {"a", "b"}
        assert c.sources_of("Z") == set()

    def test_validation_against_ontology(self, fig2_ontology):
        Configuration({"Academics": "Person"}, ontology=fig2_ontology)
        with pytest.raises(ConfigurationError):
            # Agent is a transitive supertype, not a direct one.
            Configuration({"Academics": "Agent"}, ontology=fig2_ontology)
        with pytest.raises(ConfigurationError):
            Configuration({"NotAType": "Person"}, ontology=fig2_ontology)

    def test_merged_with(self):
        c = Configuration({"a": "X"})
        c2 = c.merged_with("b", "X")
        assert "b" in c2 and "b" not in c

    def test_merged_with_conflicting_source_raises(self):
        c = Configuration({"a": "X"})
        with pytest.raises(ConfigurationError):
            c.merged_with("a", "Y")

    def test_merged_with_same_target_ok(self):
        c = Configuration({"a": "X"})
        assert len(c.merged_with("a", "X")) == 1

    def test_conflicts_with(self):
        c = Configuration({"a": "X"})
        assert c.conflicts_with("a", "Y")
        assert not c.conflicts_with("a", "X")
        assert not c.conflicts_with("b", "Y")

    def test_equality_and_hash(self):
        assert Configuration({"a": "X"}) == Configuration({"a": "X"})
        assert hash(Configuration({"a": "X"})) == hash(Configuration({"a": "X"}))
        assert Configuration({"a": "X"}) != Configuration({})

    def test_empty_and_bool(self):
        assert not Configuration.empty()
        assert Configuration({"a": "X"})

    def test_iteration_sorted(self):
        c = Configuration({"b": "Y", "a": "X"})
        assert list(c) == [("a", "X"), ("b", "Y")]


class TestGeneralizeGraph:
    def test_labels_rewritten_topology_untouched(self, fig1_graph, fig2_ontology):
        config = Configuration(
            {"Student": "Person", "UC Berkeley": "Univ."}, ontology=fig2_ontology
        )
        result = generalize_graph(fig1_graph, config)
        assert validate_same_topology(fig1_graph, result)
        assert result.vertices_with_label("Student") == set()
        assert len(result.vertices_with_label("Person")) == 10

    def test_original_graph_unchanged(self, fig1_graph):
        config = Configuration({"Student": "Person"})
        generalize_graph(fig1_graph, config)
        assert len(fig1_graph.vertices_with_label("Student")) == 10

    def test_empty_config_is_copy(self, fig1_graph):
        result = generalize_graph(fig1_graph, Configuration.empty())
        assert validate_same_topology(fig1_graph, result)
        assert result.label_histogram() == fig1_graph.label_histogram()

    def test_label_preserving_property(self, fig1_graph):
        """Def. 2.2: each vertex either follows its mapping or is unchanged."""
        config = Configuration({"Student": "Person", "Academics": "Person"})
        result = generalize_graph(fig1_graph, config)
        for v in fig1_graph.vertices():
            before, after = fig1_graph.label(v), result.label(v)
            assert after == config.target_of(before)

    def test_mapping_source_absent_from_graph_is_harmless(self, fig1_graph):
        config = Configuration({"Ghost": "Person"})
        result = generalize_graph(fig1_graph, config)
        assert result.label_histogram() == fig1_graph.label_histogram()


class TestLabelChains:
    def test_generalize_label_threads_configs(self):
        c1 = Configuration({"a": "A"})
        c2 = Configuration({"A": "TOP"})
        assert generalize_label("a", [c1, c2]) == "TOP"
        assert generalize_label("a", [c1]) == "A"
        assert generalize_label("other", [c1, c2]) == "other"

    def test_generalize_query_reports_collisions(self):
        c1 = Configuration({"a": "X", "b": "X"})
        result = generalize_query(KeywordQuery(["a", "b"]), [c1])
        assert result == ["X", "X"]

    def test_specialize_label_single_layer(self):
        c1 = Configuration({"a": "X", "b": "X"})
        # a and b generalize to X; an X-labeled vertex also stays X.
        assert specialize_label("X", [c1]) == {"a", "b", "X"}

    def test_specialize_label_includes_self_when_unmapped(self):
        c1 = Configuration({"a": "X"})
        # X itself passes through Gen unchanged, so it is its own preimage.
        assert specialize_label("X", [c1]) == {"a", "X"}

    def test_specialize_label_excludes_mapped_self(self):
        c1 = Configuration({"X": "Y", "a": "X"})
        # X is mapped by the config, so no layer-above vertex is labeled X
        # because of pass-through; only 'a' generalizes to X.
        assert specialize_label("X", [c1]) == {"a"}

    def test_specialize_label_multi_layer(self):
        c1 = Configuration({"a": "A", "b": "A"})
        c2 = Configuration({"A": "TOP"})
        assert specialize_label("TOP", [c1, c2]) >= {"a", "b", "TOP"}

    def test_spec_is_right_inverse_of_gen(self):
        c1 = Configuration({"a": "A", "b": "A"})
        c2 = Configuration({"A": "TOP", "c": "TOP"})
        configs = [c1, c2]
        for base in ("a", "b", "c", "z"):
            generalized = generalize_label(base, configs)
            assert base in specialize_label(generalized, configs)
