"""Unit tests for the BiG-index hierarchy (Def. 3.1) and maintenance."""

import pytest

from repro.bisim.refinement import is_bisimulation_partition
from repro.core.config import Configuration
from repro.core.cost import CostParams
from repro.core.generalize import generalize_graph
from repro.core.index import BiGIndex
from repro.search.base import KeywordQuery
from repro.utils.errors import BigIndexError

EXACT = CostParams(exact=True)


@pytest.fixture
def index(fig1_graph, fig2_ontology) -> BiGIndex:
    return BiGIndex.build(
        fig1_graph, fig2_ontology, num_layers=3, cost_params=EXACT
    )


class TestBuild:
    def test_layers_built(self, index):
        assert 1 <= index.num_layers <= 3

    def test_layer_sizes_decrease_weakly(self, index):
        sizes = index.layer_sizes()
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_layer_graph_access(self, index, fig1_graph):
        assert index.layer_graph(0) is fig1_graph
        assert index.layer_graph(1).num_vertices < fig1_graph.num_vertices
        with pytest.raises(BigIndexError):
            index.layer_graph(index.num_layers + 1)

    def test_definition_3_1_recurrence(self, index, fig1_graph):
        """G^i must equal Bisim(Gen(G^{i-1}, C^i)) vertex-for-vertex."""
        from repro.bisim.summary import summarize

        current = fig1_graph
        for layer in index.layers:
            generalized = generalize_graph(current, layer.config)
            expected = summarize(generalized, direction=index.direction)
            assert expected.graph.num_vertices == layer.graph.num_vertices
            assert expected.graph.num_edges == layer.graph.num_edges
            assert expected.supernode_of == layer.parent_of
            current = layer.graph

    def test_report_populated(self, index):
        assert len(index.report.layer_sizes) == index.num_layers
        assert index.report.total_seconds > 0

    def test_size_ratio_and_total(self, index, fig1_graph):
        assert index.size_ratio(1) == pytest.approx(
            index.layer_graph(1).size / fig1_graph.size
        )
        assert index.total_index_size() == sum(
            layer.graph.size for layer in index.layers
        )

    def test_num_layers_limit_respected(self, fig1_graph, fig2_ontology):
        idx = BiGIndex.build(
            fig1_graph, fig2_ontology, num_layers=1, cost_params=EXACT
        )
        assert idx.num_layers == 1

    def test_unbounded_build_terminates(self, fig1_graph, fig2_ontology):
        idx = BiGIndex.build(
            fig1_graph, fig2_ontology, num_layers=None, cost_params=EXACT
        )
        assert idx.num_layers >= 1


class TestNavigation:
    def test_chi_and_spec_are_inverse(self, index, fig1_graph):
        for m in range(1, index.num_layers + 1):
            for v in fig1_graph.vertices():
                supernode = index.chi(v, m)
                assert v in index.spec_to_base(supernode, m)

    def test_spec_to_base_partitions_vertices(self, index, fig1_graph):
        for m in range(1, index.num_layers + 1):
            layer_graph = index.layer_graph(m)
            all_members = []
            for s in layer_graph.vertices():
                all_members.extend(index.spec_to_base(s, m))
            assert sorted(all_members) == list(fig1_graph.vertices())

    def test_spec_vertex_single_step(self, index):
        layer = index.layers[0]
        for s, members in enumerate(layer.extent):
            assert index.spec_vertex(s, 1) == members

    def test_spec_vertex_rejects_bad_layer(self, index):
        with pytest.raises(BigIndexError):
            index.spec_vertex(0, 0)

    def test_chi_label_consistency(self, index, fig1_graph):
        """chi^m(v)'s label is Gen^m of v's label."""
        from repro.core.generalize import generalize_label

        for m in range(1, index.num_layers + 1):
            configs = index.configs_up_to(m)
            for v in fig1_graph.vertices():
                expected = generalize_label(fig1_graph.label(v), configs)
                assert index.layer_graph(m).label(index.chi(v, m)) == expected


class TestQueryGeneralization:
    def test_keyword_threads_configs(self, index):
        gen1 = index.generalize_keyword("Student", 1)
        assert gen1 == "Person"

    def test_query_distinct_detection(self, index):
        q = KeywordQuery(["Student", "Academics"])
        # Both generalize to Person at layer 1 -> collision.
        assert not index.query_distinct_at(q, 1)
        q2 = KeywordQuery(["Student", "UC Berkeley"])
        assert index.query_distinct_at(q2, 1)

    def test_generalize_query_list(self, index):
        result = index.generalize_query(KeywordQuery(["Student", "Academics"]), 1)
        assert result == ["Person", "Person"]


class TestEdgeMaintenance:
    def test_insert_edge_keeps_layers_valid(self, index, fig1_graph):
        index.insert_edge(0, 9)  # P. Graham -> California
        self._assert_hierarchy_valid(index, fig1_graph)

    def test_delete_edge_keeps_layers_valid(self, index, fig1_graph):
        index.delete_edge(0, 2)  # P. Graham -> Harvard
        self._assert_hierarchy_valid(index, fig1_graph)

    def test_insert_then_rebuild_restores_minimality(self, index, fig1_graph):
        sizes_before = index.layer_sizes()
        index.insert_edge(0, 9)
        index.delete_edge(0, 9)
        index.rebuild()
        assert index.drift == 0
        assert index.layer_sizes() == sizes_before

    def test_duplicate_insert_is_noop(self, index):
        drift = index.drift
        index.insert_edge(0, 2)  # edge already exists
        assert index.drift == drift

    def test_maintenance_preserves_query_answers(self, fig1_graph, fig2_ontology):
        from repro.core.plugins import boost_bkws
        from repro.search.banks import BackwardKeywordSearch

        idx = BiGIndex.build(
            fig1_graph, fig2_ontology, num_layers=2, cost_params=EXACT
        )
        idx.insert_edge(1, 3)  # S. Idreos -> Cornell
        algo = BackwardKeywordSearch(d_max=3, k=None)
        query = KeywordQuery(["Ivy League", "Massachusetts"])
        direct = {(a.root, a.score) for a in algo.bind(fig1_graph).search(query)}
        boosted = boost_bkws(idx, d_max=3, k=None)
        got = {(a.root, a.score) for a in boosted.search(query, layer=1)}
        assert direct == got

    @staticmethod
    def _assert_hierarchy_valid(index: BiGIndex, base_graph) -> None:
        current = base_graph
        for layer in index.layers:
            generalized = generalize_graph(current, layer.config)
            assert is_bisimulation_partition(
                generalized, layer.parent_of, direction=index.direction
            )
            # extent/parent consistency
            for s, members in enumerate(layer.extent):
                assert members
                for v in members:
                    assert layer.parent_of[v] == s
            current = layer.graph


class TestOntologyMaintenance:
    def test_addition_is_noop(self, index):
        sizes = index.layer_sizes()
        index.note_ontology_addition()
        assert index.layer_sizes() == sizes
        assert index.drift == 1

    def test_remove_unused_edge_is_noop(self, index):
        sizes = index.layer_sizes()
        index.remove_ontology_edge("Startup", "Organization")
        # Startup does not label any vertex, so no config used the edge...
        # unless the heuristic mapped it; either way layers stay consistent.
        assert index.num_layers == len(index.layer_sizes()) - 1

    def test_remove_used_edge_drops_mapping_everywhere(
        self, fig1_graph, fig2_ontology
    ):
        idx = BiGIndex.build(
            fig1_graph, fig2_ontology, num_layers=2, cost_params=EXACT
        )
        assert "Student" in idx.layers[0].config
        idx.remove_ontology_edge("Student", "Person")
        for layer in idx.layers:
            assert layer.config.mappings.get("Student") != "Person"

    def test_remove_used_edge_keeps_hierarchy_consistent(
        self, fig1_graph, fig2_ontology
    ):
        idx = BiGIndex.build(
            fig1_graph, fig2_ontology, num_layers=2, cost_params=EXACT
        )
        idx.remove_ontology_edge("Student", "Person")
        TestEdgeMaintenance._assert_hierarchy_valid(idx, fig1_graph)

    def test_removed_label_no_longer_generalized(self, fig1_graph, fig2_ontology):
        idx = BiGIndex.build(
            fig1_graph, fig2_ontology, num_layers=1, cost_params=EXACT
        )
        idx.remove_ontology_edge("Student", "Person")
        assert idx.generalize_keyword("Student", 1) == "Student"
